"""Multi-core SoC decompressor sharing (the Section 4 SoC experiment).

The paper synthesises one decompressor for a hypothetical SoC containing all
five ISCAS'89 cores: the LFSR, State Skip circuit, phase shifter and counters
are implemented once and shared, while the (small) Mode Select unit is
re-implemented per core.  This example reproduces that experiment on scaled
calibrated test sets with the paper's L=200, S=10, k=10 setting and reports
the shared vs per-core gate-equivalent breakdown.

Run with (takes a few minutes in pure Python)::

    python examples/soc_multicore.py

Pass ``--quick`` to use smaller windows and test sets for a fast smoke run.
"""

import argparse

from repro import CompressionConfig
from repro.decompressor.hardware import soc_decompressor_cost
from repro.pipeline import compress_profile
from repro.reporting import format_table
from repro.testdata.profiles import get_profile, profile_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use small windows/test sets for a fast smoke run",
    )
    parser.add_argument(
        "--circuits",
        nargs="*",
        default=["s9234", "s13207", "s15850"],
        choices=profile_names(),
        help="which cores to place on the SoC",
    )
    args = parser.parse_args()

    if args.quick:
        config = CompressionConfig(
            window_length=30, segment_size=5, speedup=10, num_scan_chains=32
        )
        scale = 0.05
    else:
        config = CompressionConfig.paper_soc()
        scale = 0.15

    reports = {}
    rows = []
    for name in args.circuits:
        profile = get_profile(name)
        report = compress_profile(profile, config, scale=scale, seed=1)
        reports[name] = report
        rows.append(
            {
                "core": name,
                "seeds": report.num_seeds,
                "tdv_bits": report.test_data_volume,
                "state_skip_tsl": report.state_skip_tsl,
                "improvement_pct": round(report.improvement_percent, 1),
                "mode_select_ge": round(report.hardware.mode_select, 1),
            }
        )
    print(format_table(rows, title="Per-core results (scaled calibrated test sets)"))

    soc = soc_decompressor_cost({name: r.hardware for name, r in reports.items()})
    lo, hi = soc.mode_select_range()
    print("SoC decompressor (shared datapath, per-core Mode Select):")
    print(f"  shared LFSR/State-Skip/phase-shifter/counters: {soc.shared:.1f} GE")
    print(f"  Mode Select units: {lo:.1f} .. {hi:.1f} GE per core")
    print(f"  total: {soc.total:.1f} GE")
    savings = 1.0 - soc.total / sum(r.hardware.total for r in reports.values())
    print(f"  area saved by sharing vs per-core decompressors: {savings * 100:.1f}%")


if __name__ == "__main__":
    main()
