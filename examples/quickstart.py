"""Quickstart: compress a test set with State Skip LFSR test set embedding.

The script builds a small synthetic IP-core test set, runs the complete flow
(window-based reseeding, State Skip sequence reduction, hardware costing,
clock-level decompressor verification) and prints the figures of merit the
paper reports: test data volume, test sequence length before/after State
Skip, and the gate-equivalent overhead.

Run with::

    python examples/quickstart.py
"""

from repro import CompressionConfig, compress
from repro.reporting import format_table
from repro.testdata.profiles import custom_profile
from repro.testdata.synthetic import generate_test_set


def main() -> None:
    # An IP core of unknown structure is just a pre-computed test set: here a
    # calibrated synthetic one (300 scan cells, 120 cubes, s_max = 18).
    profile = custom_profile(
        "demo_core",
        scan_cells=300,
        num_cubes=120,
        max_specified=18,
        mean_specified=7.0,
        scan_chains=16,
        lfsr_size=26,
    )
    test_set = generate_test_set(profile, seed=7)
    print(f"Test set: {test_set.stats()}")

    config = CompressionConfig(
        window_length=60,       # L: vectors per seed window
        segment_size=6,         # S: segment granularity of the reduction
        speedup=12,             # k: State Skip speedup factor
        num_scan_chains=16,
        lfsr_size=profile.lfsr_size,
    )
    report = compress(test_set, config, verify=True, simulate=True)

    rows = [
        {"metric": "LFSR size (bits)", "value": report.encoding.lfsr_size},
        {"metric": "seeds", "value": report.num_seeds},
        {"metric": "test data volume (bits)", "value": report.test_data_volume},
        {"metric": "window-based TSL (vectors)", "value": report.window_tsl},
        {"metric": "State Skip TSL (vectors)", "value": report.state_skip_tsl},
        {"metric": "TSL improvement (%)", "value": round(report.improvement_percent, 1)},
        {"metric": "decompressor area (GE)", "value": round(report.hardware_total_ge, 1)},
        {"metric": "State Skip circuit (GE)", "value": round(report.hardware.state_skip, 1)},
        {"metric": "Mode Select unit (GE)", "value": round(report.hardware.mode_select, 1)},
    ]
    print(format_table(rows, title="\nState Skip LFSR compression summary"))

    assert report.simulation is not None and report.simulation.covers(test_set)
    print(
        "Decompressor simulation applied "
        f"{report.simulation.vectors_applied} vectors over "
        f"{report.simulation.lfsr_clocks} clocks and delivered every test cube."
    )


if __name__ == "__main__":
    main()
