"""From gate-level netlist to State Skip test set embedding.

The paper assumes the test set is handed over by the core vendor; this
example shows the full tool chain when the circuit structure *is* available:

1. generate a combinational benchmark circuit (a few hundred gates),
2. run the built-in PODEM ATPG with fault dropping to obtain an uncompacted
   stuck-at test set (partially specified cubes),
3. compress/embed that test set with the State Skip LFSR flow,
4. replay the decompressor and fault-simulate the *applied* vectors to show
   that the on-chip sequence really achieves the ATPG fault coverage.

Run with::

    python examples/atpg_to_embedding.py
"""

from repro import CompressionConfig, compress
from repro.circuits.atpg import generate_test_set_for_netlist
from repro.circuits.fault_sim import FaultSimulator
from repro.circuits.faults import collapse_faults
from repro.circuits.generator import random_netlist
from repro.reporting import format_table


def main() -> None:
    # 1. A reproducible random circuit standing in for an in-house core.
    netlist = random_netlist(
        "core_x", num_inputs=48, num_gates=260, num_outputs=16, seed=11
    )
    print(f"Circuit: {netlist.stats()}")

    # 2. ATPG: collapsed stuck-at faults, PODEM, fault dropping.
    atpg = generate_test_set_for_netlist(netlist, fill_seed=3)
    test_set = atpg.test_set
    stats = test_set.stats()
    print(
        f"ATPG produced {stats.num_cubes} cubes "
        f"(s_max={stats.max_specified}, mean specified={stats.mean_specified:.1f}), "
        f"fault coverage {atpg.effective_coverage_percent:.1f}% "
        f"({len(atpg.redundant)} redundant, {len(atpg.aborted)} aborted)"
    )

    # 3. State Skip LFSR embedding of the ATPG cubes.
    config = CompressionConfig(
        window_length=40,
        segment_size=5,
        speedup=10,
        num_scan_chains=8,
        lfsr_size=test_set.max_specified() + 8,
    )
    report = compress(test_set, config, verify=True, simulate=True)
    print(
        format_table(
            [report.summary()],
            columns=[
                "circuit",
                "lfsr_size",
                "num_seeds",
                "tdv_bits",
                "window_tsl",
                "state_skip_tsl",
                "improvement_pct",
            ],
            title="\nEmbedding results",
        )
    )

    # 4. Close the loop: fault-simulate the vectors the decompressor applied.
    simulator = FaultSimulator(netlist, collapse_faults(netlist))
    simulator.simulate_vectors(report.simulation.useful_vectors)
    print(
        f"Fault coverage of the on-chip sequence: "
        f"{simulator.coverage_percent:.1f}% "
        f"(ATPG reference: {atpg.coverage_percent:.1f}%)"
    )


if __name__ == "__main__":
    main()
