"""Design-space sweep: how k, S and L shape the test sequence length.

This is the Fig. 4 study of the paper in miniature, run on the campaign
subsystem: the (S, k) grid for one core is expanded into jobs, executed on
a multiprocessing worker pool, and every result lands in a content-addressed
store -- so re-running the script (or widening the grid) only computes the
points it has not seen before.

Run with::

    python examples/sweep_study.py                      # default: scaled s13207
    python examples/sweep_study.py --circuit s9234 --scale 0.1 --jobs 4
    python examples/sweep_study.py --store /tmp/sweep   # persistent resume
"""

import argparse
import tempfile

from repro.campaign.report import best_config_table, improvement_grids
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec, TestSource
from repro.campaign.store import ResultStore
from repro.config import CompressionConfig
from repro.reporting import improvement_table
from repro.testdata.profiles import profile_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuit", default="s13207", choices=profile_names())
    parser.add_argument("--scale", type=float, default=0.12)
    parser.add_argument("--window", type=int, default=100)
    parser.add_argument("--speedups", type=int, nargs="*", default=[3, 6, 12, 24])
    parser.add_argument("--segments", type=int, nargs="*", default=[4, 10, 20])
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--store", default=None,
                        help="result-store directory (default: throwaway)")
    args = parser.parse_args()

    spec = CampaignSpec(
        name="sweep-study",
        sources=(TestSource(profile=args.circuit, scale=args.scale),),
        base=CompressionConfig(window_length=args.window),
        axes={"speedup": args.speedups, "segment_size": args.segments},
        filter="segment_size <= window_length",
    )
    jobs = spec.jobs()
    print(
        f"{args.circuit}: sweeping {len(jobs)} (k, S) points at L={args.window} "
        f"on {args.jobs} worker(s)"
    )

    store_dir = args.store or tempfile.mkdtemp(prefix="repro-sweep-")
    store = ResultStore(store_dir)
    result = CampaignRunner(spec, store, jobs=args.jobs).run(
        progress=lambda outcome: print(
            f"  [{outcome.status:>7}] {outcome.job.job_id}"
        )
    )
    print(
        f"\n{result.num_computed} computed, {result.num_cached} cached "
        f"(store: {store.path})\n"
    )

    grids = improvement_grids(result.rows())
    for circuit, grid in grids.items():
        print(improvement_table(circuit, grid))
    print(best_config_table(result.rows()))
    print(
        "Reading the grid: improvement grows with the speedup factor k and "
        "with finer segmentation (smaller S), exactly the Fig. 4 trend."
    )


if __name__ == "__main__":
    main()
