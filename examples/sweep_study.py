"""Design-space sweep: how k, S and L shape the test sequence length.

This is the Fig. 4 study of the paper in miniature: for one core the script
encodes the test set once per window size and then sweeps the State Skip
speedup ``k`` and the segment size ``S`` of the reduction, printing the TSL
improvement grid.  Because the reduction is a cheap post-processing step, the
whole sweep re-uses each encoding.

Run with::

    python examples/sweep_study.py            # default: scaled s13207
    python examples/sweep_study.py --circuit s9234 --scale 0.1
"""

import argparse

from repro.config import CompressionConfig
from repro.encoding.encoder import ReseedingEncoder
from repro.reporting import improvement_table
from repro.skip.reduction import reduce_sequence
from repro.testdata.literature import tsl_improvement
from repro.testdata.profiles import get_profile, profile_names
from repro.testdata.synthetic import generate_test_set


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuit", default="s13207", choices=profile_names())
    parser.add_argument("--scale", type=float, default=0.12)
    parser.add_argument("--window", type=int, default=100)
    parser.add_argument("--speedups", type=int, nargs="*", default=[3, 6, 12, 24])
    parser.add_argument("--segments", type=int, nargs="*", default=[4, 10, 20])
    args = parser.parse_args()

    profile = get_profile(args.circuit)
    test_set = generate_test_set(profile, seed=1, scale=args.scale)
    print(
        f"{args.circuit}: {len(test_set)} cubes (scaled x{args.scale}), "
        f"LFSR {profile.lfsr_size}, window L={args.window}"
    )

    encoder = ReseedingEncoder(
        num_cells=profile.scan_cells,
        num_scan_chains=profile.scan_chains,
        lfsr_size=profile.lfsr_size,
        window_length=args.window,
    )
    encoding = encoder.encode(test_set)
    print(
        f"encoded into {encoding.num_seeds} seeds "
        f"(TDV {encoding.test_data_volume} bits, "
        f"window TSL {encoding.test_sequence_length} vectors)\n"
    )

    sweep = {}
    for k in args.speedups:
        sweep[k] = {}
        for segment_size in args.segments:
            reduction = reduce_sequence(
                encoding, test_set, encoder.equations, segment_size, k
            )
            sweep[k][segment_size] = round(
                tsl_improvement(
                    reduction.test_sequence_length, encoding.test_sequence_length
                ),
                1,
            )
    print(improvement_table(args.circuit, sweep))
    print(
        "Reading the grid: improvement grows with the speedup factor k and "
        "with finer segmentation (smaller S), exactly the Fig. 4 trend."
    )


if __name__ == "__main__":
    main()
