"""Table 1 -- Classical vs window-based LFSR reseeding.

For every circuit the benchmark encodes the calibrated test set with classical
reseeding (L=1) and with window-based reseeding (L=50, 200 and, with
``REPRO_BENCH_FULL=1``, 500), reporting LFSR size, test data volume and test
sequence length next to the paper's published numbers.

Expected shape (the paper's trend, reproduced on scaled test sets): as the
window grows, the number of seeds -- and with it the TDV -- drops, while the
test sequence length grows roughly linearly with L.
"""

import pytest

from repro.reporting import format_table
from repro.testdata import literature
from repro.testdata.profiles import profile_names

from conftest import full_runs_enabled, publish

WINDOWS = [50, 200]


def _rows_for_circuit(workbench, circuit):
    published = literature.TABLE1[circuit]
    rows = []
    classical = workbench.classical(circuit)
    rows.append(
        {
            "circuit": circuit,
            "L": 1,
            "lfsr": classical.lfsr_size,
            "tdv": classical.test_data_volume,
            "tsl": classical.test_sequence_length,
            "tdv_paper": published[1]["tdv"],
            "tsl_paper": published[1]["tsl"],
        }
    )
    windows = WINDOWS + ([500] if full_runs_enabled() else [])
    for window in windows:
        _, encoding = workbench.encoding(circuit, window)
        rows.append(
            {
                "circuit": circuit,
                "L": window,
                "lfsr": encoding.lfsr_size,
                "tdv": encoding.test_data_volume,
                "tsl": encoding.test_sequence_length,
                "tdv_paper": published[window]["tdv"],
                "tsl_paper": published[window]["tsl"],
            }
        )
    return rows


@pytest.mark.parametrize("circuit", profile_names())
def test_table1_classical_vs_window(benchmark, workbench, circuit):
    rows = benchmark.pedantic(
        _rows_for_circuit, args=(workbench, circuit), rounds=1, iterations=1
    )
    publish(
        f"table1_{circuit}",
        format_table(
            rows,
            columns=["circuit", "L", "lfsr", "tdv", "tsl", "tdv_paper", "tsl_paper"],
            title=f"Table 1 ({circuit}): classical vs window-based reseeding "
            f"(measured on scaled calibrated test sets vs published)",
        ),
    )
    # Shape checks: the window-based encodings beat classical reseeding on
    # TDV and pay for it with longer test sequences, exactly as in the paper.
    classical_row = rows[0]
    for row in rows[1:]:
        assert row["tdv"] <= classical_row["tdv"]
        assert row["tsl"] >= classical_row["tsl"]
    # TDV decreases (weakly) as the window grows.
    tdvs = [row["tdv"] for row in rows[1:]]
    assert tdvs == sorted(tdvs, reverse=True)
