"""Fig. 4 -- TSL improvement vs speedup factor k, segment size S and window L.

Two sweeps on s13207, exactly as in the figure:

* **bars**: L = 300 fixed, segment sizes S in {4, 10, 12, 20}, k swept;
* **curves**: S = 5 fixed, window sizes L in {50, 100, 300}, k swept
  (L = 500 is added with ``REPRO_BENCH_FULL=1``).

Expected shape: the improvement increases with k and with L, and decreases
with S; the paper reports 69-78% at k=3 rising to 80-93% at k=24 for the
full-size test set (scaled test sets shift the absolute level but keep the
ordering).
"""

import pytest

from repro.reporting import improvement_table
from repro.testdata.literature import tsl_improvement

from conftest import full_runs_enabled, publish

CIRCUIT = "s13207"
SPEEDUPS = [3, 6, 12, 24]
BAR_SEGMENTS = [4, 10, 12, 20]
CURVE_WINDOWS = [50, 100, 300]


def _bars(workbench):
    sweep = {}
    for k in SPEEDUPS:
        sweep[k] = {}
        for segment_size in BAR_SEGMENTS:
            reduction = workbench.reduce(CIRCUIT, 300, segment_size, k)
            sweep[k][segment_size] = round(reduction.improvement_percent, 1)
    return sweep


def _curves(workbench):
    windows = CURVE_WINDOWS + ([500] if full_runs_enabled() else [])
    sweep = {}
    for k in SPEEDUPS:
        sweep[k] = {}
        for window in windows:
            reduction = workbench.reduce(CIRCUIT, window, 5, k)
            sweep[k][window] = round(reduction.improvement_percent, 1)
    return sweep


def test_fig4_bars_segment_size_sweep(benchmark, workbench):
    sweep = benchmark.pedantic(_bars, args=(workbench,), rounds=1, iterations=1)
    publish(
        "fig4_bars",
        improvement_table(
            f"{CIRCUIT} (L=300, bars of Fig. 4)", sweep, row_label="k", column_label="S"
        ),
    )
    for k in SPEEDUPS:
        # Finer segmentation never hurts (S=4 at least as good as S=20).
        assert sweep[k][4] >= sweep[k][20]
    for segment_size in BAR_SEGMENTS:
        # Higher speedup never hurts.
        assert sweep[24][segment_size] >= sweep[3][segment_size]
    # Meaningful reductions at the largest k.
    assert sweep[24][4] > 50.0


def test_fig4_curves_window_sweep(benchmark, workbench):
    sweep = benchmark.pedantic(_curves, args=(workbench,), rounds=1, iterations=1)
    publish(
        "fig4_curves",
        improvement_table(
            f"{CIRCUIT} (S=5, curves of Fig. 4)", sweep, row_label="k",
            column_label="L",
        ),
    )
    for k in SPEEDUPS:
        # Larger windows give larger improvements (more useless segments to skip).
        assert sweep[k][300] >= sweep[k][50]
    for window in CURVE_WINDOWS:
        assert sweep[24][window] >= sweep[3][window]
