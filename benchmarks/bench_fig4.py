"""Fig. 4 -- TSL improvement vs speedup factor k, segment size S and window L.

Two sweeps on s13207, exactly as in the figure:

* **bars**: L = 300 fixed, segment sizes S in {4, 10, 12, 20}, k swept;
* **curves**: S = 5 fixed, window sizes L in {50, 100, 300}, k swept
  (L = 500 is added with ``REPRO_BENCH_FULL=1``).

Expected shape: the improvement increases with k and with L, and decreases
with S; the paper reports 69-78% at k=3 rising to 80-93% at k=24 for the
full-size test set (scaled test sets shift the absolute level but keep the
ordering).

Both sweeps run on the campaign subsystem (:mod:`repro.campaign`): every
(L, S, k) point is one job on a multiprocessing worker pool, and results
persist in a content-addressed store under ``results/campaign/`` -- so a
repeated benchmark run resumes from the store instead of recomputing.
``REPRO_CAMPAIGN_JOBS`` overrides the pool size (default 2).
"""

import os

import pytest

from repro.campaign.report import improvement_grids
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec, TestSource
from repro.campaign.store import ResultStore
from repro.config import CompressionConfig
from repro.reporting import improvement_table

from conftest import RESULTS_DIR, bench_scale, full_runs_enabled, publish

CIRCUIT = "s13207"
SPEEDUPS = [3, 6, 12, 24]
BAR_SEGMENTS = [4, 10, 12, 20]
CURVE_WINDOWS = [50, 100, 300]


def _campaign_jobs() -> int:
    return max(1, int(os.environ.get("REPRO_CAMPAIGN_JOBS", "2")))


def _run_campaign(name: str, base: CompressionConfig, axes):
    """Run one Fig. 4 sweep as a campaign and return its improvement grid."""
    spec = CampaignSpec(
        name=name,
        sources=(TestSource(profile=CIRCUIT, scale=bench_scale(CIRCUIT)),),
        base=base,
        axes=axes,
        verify=False,  # the workbench path never re-verified either
    )
    store = ResultStore(RESULTS_DIR / "campaign" / name)
    result = CampaignRunner(spec, store, jobs=_campaign_jobs()).run()
    assert result.num_failed == 0, [
        (outcome.job.job_id, outcome.error) for outcome in result.failures()
    ]
    row_axis, col_axis = list(axes)
    grids = improvement_grids(result.rows(), row_axis=row_axis, col_axis=col_axis)
    (grid,) = grids.values()
    return grid


def _bars():
    return _run_campaign(
        "fig4-bars",
        base=CompressionConfig(window_length=300),
        axes={"speedup": SPEEDUPS, "segment_size": BAR_SEGMENTS},
    )


def _curves():
    windows = CURVE_WINDOWS + ([500] if full_runs_enabled() else [])
    return _run_campaign(
        "fig4-curves",
        base=CompressionConfig(segment_size=5),
        axes={"speedup": SPEEDUPS, "window_length": windows},
    )


def test_fig4_bars_segment_size_sweep(benchmark):
    sweep = benchmark.pedantic(_bars, rounds=1, iterations=1)
    publish(
        "fig4_bars",
        improvement_table(
            f"{CIRCUIT} (L=300, bars of Fig. 4)", sweep, row_label="k", column_label="S"
        ),
    )
    for k in SPEEDUPS:
        # Finer segmentation never hurts (S=4 at least as good as S=20).
        assert sweep[k][4] >= sweep[k][20]
    for segment_size in BAR_SEGMENTS:
        # Higher speedup never hurts.
        assert sweep[24][segment_size] >= sweep[3][segment_size]
    # Meaningful reductions at the largest k.
    assert sweep[24][4] > 50.0


def test_fig4_curves_window_sweep(benchmark):
    sweep = benchmark.pedantic(_curves, rounds=1, iterations=1)
    publish(
        "fig4_curves",
        improvement_table(
            f"{CIRCUIT} (S=5, curves of Fig. 4)", sweep, row_label="k",
            column_label="L",
        ),
    )
    for k in SPEEDUPS:
        # Larger windows give larger improvements (more useless segments to skip).
        assert sweep[k][300] >= sweep[k][50]
    for window in CURVE_WINDOWS:
        assert sweep[24][window] >= sweep[3][window]
