"""Table 2 -- Test-sequence-length improvement of the proposed method.

For every circuit and window size the original window-based TSL is compared
with the TSL after State Skip reduction; as in the paper, the best result
over segment sizes S in {2, 5, 10} and speedup factors k <= 24 is reported.

Expected shape: large reductions (the paper reports 60%-96%), growing with
the window length L.
"""

import pytest

from repro.reporting import format_table
from repro.testdata import literature
from repro.testdata.profiles import profile_names

from conftest import full_runs_enabled, publish

SEGMENT_SIZES = [2, 5, 10]
SPEEDUPS = [8, 16, 24]


def _rows_for_circuit(workbench, circuit):
    windows = [50, 200] + ([500] if full_runs_enabled() else [])
    rows = []
    for window in windows:
        _, encoding = workbench.encoding(circuit, window)
        best = workbench.best_reduction(circuit, window, SEGMENT_SIZES, SPEEDUPS)
        published = literature.TABLE2[circuit][window]
        rows.append(
            {
                "circuit": circuit,
                "L": window,
                "orig_tsl": encoding.test_sequence_length,
                "prop_tsl": best.test_sequence_length,
                "impr_pct": round(best.improvement_percent, 1),
                "impr_paper_pct": published["impr"],
            }
        )
    return rows


@pytest.mark.parametrize("circuit", profile_names())
def test_table2_tsl_improvement(benchmark, workbench, circuit):
    rows = benchmark.pedantic(
        _rows_for_circuit, args=(workbench, circuit), rounds=1, iterations=1
    )
    publish(
        f"table2_{circuit}",
        format_table(
            rows,
            title=f"Table 2 ({circuit}): TSL of the window-based baseline vs the "
            f"State Skip method (best over S={SEGMENT_SIZES}, k={SPEEDUPS})",
        ),
    )
    for row in rows:
        # The reduction must be substantial for every configuration...
        assert row["prop_tsl"] < row["orig_tsl"]
        assert row["impr_pct"] > 30.0
    # ...and (as in the paper) improve as the window grows (small tolerance
    # for the noise of the scaled test sets).
    improvements = [row["impr_pct"] for row in rows]
    assert improvements[-1] >= improvements[0] - 1.0
