"""Table 4 -- Comparison against test data compression methods.

The two regenerated columns are the ones our implementation produces:
classical LFSR reseeding (L = 1) and the proposed method at L = 200 (S = 10,
k = 24).  The eight published test-data-compression columns are literature
constants stored in :mod:`repro.testdata.literature`.

Expected shape: the proposed method's TDV beats classical reseeding (and, in
the paper, all but one competitor), while its TSL sits above the compression
methods but within a small factor -- the "bridging the gap" message of the
paper.
"""

import pytest

from repro.reporting import format_table
from repro.testdata import literature
from repro.testdata.profiles import profile_names

from conftest import publish

WINDOW = 200
SEGMENT_SIZE = 10
SPEEDUP = 24


def _row(workbench, circuit):
    classical = workbench.classical(circuit)
    reduction = workbench.reduce(circuit, WINDOW, SEGMENT_SIZE, SPEEDUP)
    published = literature.TABLE4[circuit]
    row = {
        "circuit": circuit,
        "classical_tsl": classical.test_sequence_length,
        "classical_tdv": classical.test_data_volume,
        "prop_tsl": reduction.test_sequence_length,
        "prop_tdv": reduction.test_data_volume,
        "classical_tsl_paper": published["classical"][0],
        "classical_tdv_paper": published["classical"][1],
        "prop_tsl_paper": published["prop"][0],
        "prop_tdv_paper": published["prop"][1],
    }
    return row


def _literature_rows(circuit):
    rows = []
    for method, (tsl, tdv) in literature.TABLE4[circuit].items():
        if method in ("classical", "prop"):
            continue
        rows.append({"circuit": circuit, "method": method, "tsl": tsl, "tdv": tdv})
    return rows


@pytest.mark.parametrize("circuit", profile_names())
def test_table4_vs_test_data_compression(benchmark, workbench, circuit):
    row = benchmark.pedantic(_row, args=(workbench, circuit), rounds=1, iterations=1)
    text = format_table(
        [row],
        title=f"Table 4 ({circuit}): classical reseeding and proposed method "
        f"(measured vs published)",
    )
    text += "\n" + format_table(
        _literature_rows(circuit),
        title=f"Published test data compression references for {circuit}",
    )
    publish(f"table4_{circuit}", text)
    # The proposed method never needs more test data than classical reseeding.
    assert row["prop_tdv"] <= row["classical_tdv"]
    # Its sequences are longer than classical reseeding's (the price of test
    # set embedding), but only by a bounded factor thanks to State Skip.
    assert row["prop_tsl"] >= row["classical_tsl"]
    assert row["prop_tsl"] <= WINDOW * row["classical_tsl"]
