"""Hot-kernel throughput benchmarks (the ``repro bench`` kernels as pytest).

Runs the encoding-scan and fault-simulation kernel benchmarks of
:mod:`repro.perf` -- the same measurements ``repro bench`` makes -- and
publishes the throughput/speedup table to ``results/perf_kernels.txt``.
``REPRO_BENCH_FULL=1`` switches from the quick to the full configurations.

Each kernel verifies itself while it measures: the optimized encoder must
produce a bit-identical :class:`~repro.encoding.results.EncodingResult` to
the reference scan, and the cone-based fault simulator must report the
identical detected-fault set as the dense 64-bit reference -- so a benchmark
run that passes is also an equivalence proof on the measured workloads.
"""

from repro.perf import run_benchmarks

from conftest import full_runs_enabled, publish


def _format(reports) -> str:
    lines = [
        f"{'kernel':<10} {'case':<14} {'wall_s':>8} {'throughput':>16} "
        f"{'unit':<18} {'vs_ref':>7}",
        "-" * 78,
    ]
    for report in reports:
        for case in report.cases:
            lines.append(
                f"{report.kernel:<10} {case.name:<14} {case.wall_s:>8.3f} "
                f"{case.throughput:>16,.0f} {case.unit:<18} "
                f"{case.speedup:>6.2f}x"
            )
    return "\n".join(lines) + "\n"


def test_perf_kernels():
    reports = run_benchmarks(quick=not full_runs_enabled())
    for report in reports:
        for case in report.cases:
            # Bit-identity with the reference is the contract; the speedup
            # figures are published for inspection but not asserted (tiny
            # quick-mode walls make a hard threshold flaky on busy hosts).
            assert case.verified, (
                f"{report.kernel}/{case.name}: optimized kernel diverged "
                f"from the reference implementation"
            )
    publish("perf_kernels", _format(reports))
