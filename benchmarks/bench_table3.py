"""Table 3 -- Comparison against test set embedding methods (L = 300).

The proposed method at L = 300 is compared with the two published test set
embedding baselines the paper uses: the window-based scheme of Kaseridis et
al. (ETS 2005, reference [11], whose TSL is essentially ``seeds x L`` -- our
"Orig." baseline) and the reconfigurable-interconnect scheme of Li &
Chakrabarty (TCAD 2004, reference [22]).  Competitor numbers are literature
constants; the measured columns come from our scaled calibrated test sets.

Expected shape: the proposed TSL is a small fraction of the window-based
baseline's TSL (the paper reports 74-92% improvement vs [11] and >97% vs
[22]) while the TDV stays in the same range as [11].
"""

import pytest

from repro.reporting import format_table
from repro.testdata import literature
from repro.testdata.literature import tsl_improvement
from repro.testdata.profiles import profile_names

from conftest import publish

WINDOW = 300
SEGMENT_SIZE = 10
SPEEDUP = 24


def _row(workbench, circuit):
    _, encoding = workbench.encoding(circuit, WINDOW)
    reduction = workbench.reduce(circuit, WINDOW, SEGMENT_SIZE, SPEEDUP)
    published = literature.TABLE3[circuit]
    return {
        "circuit": circuit,
        "tdv": reduction.test_data_volume,
        "tsl_orig[11]": encoding.test_sequence_length,
        "tsl_prop": reduction.test_sequence_length,
        "impr_vs_orig_pct": round(
            tsl_improvement(
                reduction.test_sequence_length, encoding.test_sequence_length
            ),
            1,
        ),
        "tdv_paper": published["prop"]["tdv"],
        "tsl_paper": published["prop"]["tsl"],
        "tsl_[11]_paper": published["kaseridis05"]["tsl"],
        "tsl_[22]_paper": published["li_chakrabarty04"]["tsl"],
    }


@pytest.mark.parametrize("circuit", profile_names())
def test_table3_vs_test_set_embedding(benchmark, workbench, circuit):
    row = benchmark.pedantic(_row, args=(workbench, circuit), rounds=1, iterations=1)
    publish(
        f"table3_{circuit}",
        format_table(
            [row],
            title=f"Table 3 ({circuit}): proposed (L={WINDOW}, S={SEGMENT_SIZE}, "
            f"k={SPEEDUP}) vs published test set embedding methods",
        ),
    )
    # The State Skip sequence must be drastically shorter than the
    # window-based embedding baseline it is built on.
    assert row["impr_vs_orig_pct"] > 50.0
    # And orders of magnitude shorter than the published TSL of [22]
    # (even though our test sets are scaled down).
    assert row["tsl_prop"] < row["tsl_[22]_paper"]
