"""Shared infrastructure of the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on the
calibrated synthetic test sets.  Because the expensive step (window-based
seed computation) is shared between many experiments -- Table 2, Table 4 and
Fig. 4 all reuse the encodings of Table 1 -- a session-scoped
:class:`Workbench` caches one encoding per (circuit, window length) and the
individual benchmarks only pay for the part they actually measure.

Scaling
-------
The paper's C implementation runs in minutes on the full Atalanta test sets;
this pure-Python reproduction uses *scaled* calibrated test sets by default
so the whole harness finishes in a few minutes.  Two environment variables
control the size:

``REPRO_BENCH_SCALE``
    Multiplier on the per-circuit default scales (default 1.0; e.g. 3.0 runs
    three times more cubes).
``REPRO_BENCH_FULL``
    Set to ``1`` to also run the largest window (L=500) configurations.

Every benchmark writes its measured-vs-published table to
``results/<name>.txt`` and prints it, so the regenerated tables are easy to
diff against the paper.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from repro.encoding.classical import encode_classical
from repro.encoding.encoder import ReseedingEncoder
from repro.encoding.results import EncodingResult
from repro.encoding.window import EncodingError
from repro.skip.reduction import ReductionResult, reduce_sequence
from repro.testdata.profiles import get_profile
from repro.testdata.synthetic import generate_test_set
from repro.testdata.test_set import TestSet

#: Default fraction of the calibrated cube count used per circuit.  The big
#: circuits get smaller fractions so the harness stays within minutes.
DEFAULT_SCALES: Dict[str, float] = {
    "s9234": 0.20,
    "s13207": 0.20,
    "s15850": 0.18,
    "s38417": 0.04,
    "s38584": 0.10,
}

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def bench_scale(circuit: str) -> float:
    multiplier = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return min(1.0, DEFAULT_SCALES[circuit] * multiplier)


def full_runs_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


class Workbench:
    """Session-wide cache of test sets, encoders and encodings."""

    def __init__(self):
        self._test_sets: Dict[str, TestSet] = {}
        self._encodings: Dict[Tuple[str, int], Tuple[ReseedingEncoder, EncodingResult]] = {}
        self._classical: Dict[str, EncodingResult] = {}

    # ------------------------------------------------------------------
    # Test sets
    # ------------------------------------------------------------------
    def test_set(self, circuit: str) -> TestSet:
        if circuit not in self._test_sets:
            profile = get_profile(circuit)
            self._test_sets[circuit] = generate_test_set(
                profile, seed=1, scale=bench_scale(circuit)
            )
        return self._test_sets[circuit]

    # ------------------------------------------------------------------
    # Encodings
    # ------------------------------------------------------------------
    def encoding(self, circuit: str, window_length: int):
        """The (encoder, encoding) pair for a circuit and window size."""
        key = (circuit, window_length)
        if key not in self._encodings:
            profile = get_profile(circuit)
            test_set = self.test_set(circuit)
            last_error = None
            for attempt in range(5):
                encoder = ReseedingEncoder(
                    num_cells=profile.scan_cells,
                    num_scan_chains=profile.scan_chains,
                    lfsr_size=profile.lfsr_size,
                    window_length=window_length,
                    phase_seed=2008 + attempt,
                )
                try:
                    self._encodings[key] = (encoder, encoder.encode(test_set))
                    break
                except EncodingError as error:
                    last_error = error
            else:
                raise last_error
        return self._encodings[key]

    def classical(self, circuit: str) -> EncodingResult:
        if circuit not in self._classical:
            profile = get_profile(circuit)
            self._classical[circuit] = encode_classical(
                self.test_set(circuit),
                num_scan_chains=profile.scan_chains,
                lfsr_size=profile.lfsr_size,
            )
        return self._classical[circuit]

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def reduce(
        self,
        circuit: str,
        window_length: int,
        segment_size: int,
        speedup: int,
        **kwargs,
    ) -> ReductionResult:
        encoder, encoding = self.encoding(circuit, window_length)
        return reduce_sequence(
            encoding,
            self.test_set(circuit),
            encoder.equations,
            segment_size,
            speedup,
            **kwargs,
        )

    def best_reduction(
        self,
        circuit: str,
        window_length: int,
        segment_sizes: List[int],
        speedups: List[int],
    ) -> ReductionResult:
        """The (S, k) combination with the shortest test sequence (Table 2)."""
        best = None
        for segment_size in segment_sizes:
            for speedup in speedups:
                candidate = self.reduce(circuit, window_length, segment_size, speedup)
                if best is None or (
                    candidate.test_sequence_length < best.test_sequence_length
                ):
                    best = candidate
        return best


@pytest.fixture(scope="session")
def workbench() -> Workbench:
    return Workbench()


def publish(name: str, text: str) -> None:
    """Print a regenerated table and persist it under ``results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n{text}")
