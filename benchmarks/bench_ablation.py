"""Ablations on the design choices called out in DESIGN.md.

These experiments are not in the paper; they quantify the design decisions
the reproduction had to pin down:

* **first-segment constraint** -- the decompression architecture assumes the
  first segment of every seed is useful; how much TSL does that constraint
  cost compared to the unconstrained minimum cover?
* **alignment model** -- the paper's first-order ``ceil(S/k)`` accounting vs
  the exact skip-plus-remainder clocking a real State Skip LFSR needs.
* **fortuitous embedding** -- how much of the cube coverage comes for free
  from pseudo-random matching rather than from deterministic encoding
  (the effect Section 3.2 exploits).
"""

import pytest

from repro.reporting import format_table

from conftest import publish

CIRCUIT = "s13207"
WINDOW = 200
SEGMENT_SIZE = 10
SPEEDUP = 16


def test_first_segment_constraint(benchmark, workbench):
    def run():
        forced = workbench.reduce(
            CIRCUIT, WINDOW, SEGMENT_SIZE, SPEEDUP, force_first_segment_useful=True
        )
        free = workbench.reduce(
            CIRCUIT, WINDOW, SEGMENT_SIZE, SPEEDUP, force_first_segment_useful=False
        )
        return forced, free

    forced, free = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "variant": "first segment forced useful (paper architecture)",
            "useful_segments": forced.num_useful_segments,
            "tsl": forced.test_sequence_length,
        },
        {
            "variant": "unconstrained minimum cover",
            "useful_segments": free.num_useful_segments,
            "tsl": free.test_sequence_length,
        },
    ]
    publish("ablation_first_segment", format_table(rows, title="First-segment constraint"))
    assert free.num_useful_segments <= forced.num_useful_segments
    assert free.test_sequence_length <= forced.test_sequence_length


def test_alignment_model(benchmark, workbench):
    def run():
        exact = workbench.reduce(CIRCUIT, WINDOW, 7, 24, alignment="exact")
        ideal = workbench.reduce(CIRCUIT, WINDOW, 7, 24, alignment="ideal")
        return exact, ideal

    exact, ideal = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"model": "exact (hardware clocking)", "tsl": exact.test_sequence_length},
        {"model": "ideal ceil(S/k) (paper's first-order model)", "tsl": ideal.test_sequence_length},
    ]
    publish("ablation_alignment", format_table(rows, title="Useless-segment accounting"))
    assert ideal.test_sequence_length <= exact.test_sequence_length
    # The two models agree to within one vector per useless segment.
    num_useless = sum(
        sum(1 for plan in schedule.segments if not plan.useful)
        for schedule in exact.schedules
    )
    assert exact.test_sequence_length - ideal.test_sequence_length <= num_useless


def test_fortuitous_embedding_share(benchmark, workbench):
    def run():
        reduction = workbench.reduce(CIRCUIT, WINDOW, SEGMENT_SIZE, SPEEDUP)
        _, encoding = workbench.encoding(CIRCUIT, WINDOW)
        return reduction, encoding

    reduction, encoding = benchmark.pedantic(run, rounds=1, iterations=1)
    assignment = encoding.cube_assignment()
    segmentation = reduction.selection.segmentation
    fortuitous = 0
    for cube, segment in reduction.selection.covering_segment.items():
        deterministic = assignment[cube]
        home = (encoding.seed_of_cube(cube), segmentation.segment_of(deterministic.position))
        if segment != home:
            fortuitous += 1
    total = len(reduction.selection.covering_segment)
    rows = [
        {
            "covered_cubes": total,
            "covered_fortuitously": fortuitous,
            "fortuitous_pct": round(100.0 * fortuitous / total, 1),
            "embedding_sites_per_cube": round(
                sum(len(s) for s in reduction.embedding.cube_segments.values()) / total, 1
            ),
        }
    ]
    publish(
        "ablation_fortuitous",
        format_table(rows, title="Share of cubes covered by fortuitous embedding"),
    )
    assert total == encoding.num_cubes
    # Fortuitous embedding must contribute (it is what makes the greedy
    # useful-segment selection effective).
    assert fortuitous >= 0
