"""Section 4 hardware-overhead experiments (gate-equivalent costs).

Three experiments mirror the hardware paragraphs of the evaluation:

* the State Skip circuit cost of s13207's 24-bit LFSR as the speedup factor
  grows from 12 to 32 (paper: 52 -> 119 GE);
* the cost of the rest of the decompressor (LFSR, phase shifter, counters,
  control) and of the Mode Select unit over a (L, S) sweep (paper: ~320 GE
  and 44-262 GE respectively);
* the multi-core SoC experiment at L=200, S=10, k=10 where everything but
  the Mode Select units is shared (paper: Mode Select 107-373 GE per core).

Absolute GE values depend on the cell library weights; the assertions check
the paper's *trends* and that the magnitudes stay in the same few-hundred-GE
regime.
"""

import pytest

from repro.decompressor.hardware import (
    GateCostModel,
    decompressor_cost,
    soc_decompressor_cost,
)
from repro.lfsr.lfsr import LFSR
from repro.lfsr.state_skip import skip_cost_sweep
from repro.reporting import format_table
from repro.testdata import literature
from repro.testdata.profiles import get_profile

from conftest import publish

SOC_CIRCUITS = ["s9234", "s13207", "s15850"]


def _state_skip_sweep():
    lfsr = LFSR.of_size(get_profile("s13207").lfsr_size)
    ks = [12, 16, 20, 24, 28, 32]
    costs = skip_cost_sweep(lfsr.transition, ks)
    return [
        {"k": k, "xor_gates": cost.xor_gates, "ge": round(cost.gate_equivalents, 1)}
        for k, cost in zip(ks, costs)
    ]


def test_state_skip_circuit_cost_vs_k(benchmark):
    rows = benchmark.pedantic(_state_skip_sweep, rounds=1, iterations=1)
    published = literature.HARDWARE["state_skip_s13207"]
    text = format_table(
        rows,
        title="State Skip circuit cost for s13207's 24-bit LFSR "
        f"(paper: {published[12]} GE at k=12, {published[32]} GE at k=32)",
    )
    publish("hardware_state_skip", text)
    by_k = {row["k"]: row["ge"] for row in rows}
    # Published trend: cost grows with k (the paper reports a 2.3x increase
    # from k=12 to k=32) and stays within a few hundred GE.  The absolute
    # level depends on the feedback polynomial and cell-library weights, so
    # only the order of magnitude is checked.
    assert by_k[32] > by_k[12]
    assert by_k[32] / by_k[12] < 5.0
    assert 20.0 <= by_k[12] <= 500.0
    assert 50.0 <= by_k[32] <= 1000.0


def _decompressor_report(workbench, circuit, window, segment_size, speedup):
    encoder, _ = workbench.encoding(circuit, window)
    reduction = workbench.reduce(circuit, window, segment_size, speedup)
    return decompressor_cost(
        transition=encoder.lfsr.transition,
        speedup=speedup,
        phase_shifter=encoder.phase_shifter,
        chain_length=encoder.architecture.chain_length,
        segment_size=segment_size,
        segments_per_window=reduction.num_segments_per_window,
        useful_segments_per_seed=[s.useful_segments for s in reduction.schedules],
    )


def test_decompressor_and_mode_select_cost(benchmark, workbench):
    def sweep():
        rows = []
        for window, segment_size in [(50, 2), (50, 10), (200, 10), (200, 25)]:
            report = _decompressor_report(workbench, "s13207", window, segment_size, 10)
            rows.append(
                {
                    "L": window,
                    "S": segment_size,
                    "rest_of_decompressor_ge": round(report.shared, 1),
                    "mode_select_ge": round(report.mode_select, 1),
                    "total_ge": round(report.total, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lo, hi = literature.HARDWARE["mode_select_range"]
    publish(
        "hardware_decompressor",
        format_table(
            rows,
            title="s13207 decompressor cost over (L, S) "
            f"(paper: rest ~{literature.HARDWARE['decompressor_rest_s13207']} GE, "
            f"Mode Select {lo}-{hi} GE)",
        ),
    )
    for row in rows:
        # Same order of magnitude as the paper's figures.
        assert 100.0 <= row["rest_of_decompressor_ge"] <= 1500.0
        assert row["mode_select_ge"] <= 600.0


def test_soc_sharing(benchmark, workbench):
    def build():
        reports = {}
        for circuit in SOC_CIRCUITS:
            reports[circuit] = _decompressor_report(workbench, circuit, 200, 10, 10)
        return reports

    reports = benchmark.pedantic(build, rounds=1, iterations=1)
    soc = soc_decompressor_cost(reports)
    rows = [
        {
            "core": name,
            "mode_select_ge": round(report.mode_select, 1),
            "standalone_total_ge": round(report.total, 1),
        }
        for name, report in reports.items()
    ]
    rows.append(
        {
            "core": "SoC (shared)",
            "mode_select_ge": round(sum(r.mode_select for r in reports.values()), 1),
            "standalone_total_ge": round(soc.total, 1),
        }
    )
    publish(
        "hardware_soc",
        format_table(
            rows,
            title="Multi-core SoC decompressor (L=200, S=10, k=10): shared datapath, "
            "per-core Mode Select",
        ),
    )
    # Sharing must be a clear win over one decompressor per core.
    assert soc.total < 0.8 * sum(report.total for report in reports.values())
