"""Tests of the staged pipeline and the shared CompressionContext.

The contract pinned here is the one that made the staged refactor safe:
:func:`repro.pipeline.compress` produces **bit-identical** reports whether
the context cache is warm, cold or disabled, and the individual stages
(`encode` / `reduce` / `hardware` / `simulate`) compose to exactly the
monolithic result.  On top of that, the campaign runner's substrate
sharing (one encode per (source, lfsr, L) group) and the honest
``elapsed_s`` carry-through on warm stores are exercised end to end.
"""

import pytest

from repro import pipeline
from repro.campaign.runner import (
    CampaignRunner,
    _execute_group_payload,
    _split_for_parallelism,
)
from repro.campaign.spec import CampaignSpec, TestSource
from repro.campaign.store import ResultStore
from repro.config import CompressionConfig
from repro.context import CompressionContext, ContextStats, SubstrateKey
from repro.encoding.encoder import ReseedingEncoder
from repro.encoding.substrate import EncoderSubstrate
from repro.pipeline import compress
from repro.testdata.profiles import custom_profile
from repro.testdata.synthetic import generate_test_set


@pytest.fixture(scope="module")
def test_set():
    profile = custom_profile(
        "ctx_unit",
        scan_cells=72,
        num_cubes=36,
        max_specified=9,
        mean_specified=4.0,
        scan_chains=8,
        lfsr_size=16,
    )
    return generate_test_set(profile, seed=5)


def _config(window=20, segment=4, speedup=6):
    return CompressionConfig(
        window_length=window,
        segment_size=segment,
        speedup=speedup,
        num_scan_chains=8,
        lfsr_size=16,
    )


#: A small circuit x (L, S, k) grid (the acceptance-criteria golden grid).
GRID = [
    (16, 4, 3),
    (16, 4, 8),
    (16, 8, 8),
    (24, 4, 6),
    (24, 6, 12),
]


# ----------------------------------------------------------------------
# Golden equivalence: cache on vs cache off vs no context
# ----------------------------------------------------------------------
class TestGoldenEquivalence:
    def test_grid_reports_bit_identical_with_and_without_cache(self, test_set):
        warm = CompressionContext()
        for window, segment, speedup in GRID:
            config = _config(window, segment, speedup)
            cached = compress(test_set, config, verify=True, context=warm)
            uncached = compress(
                test_set, config, verify=True,
                context=CompressionContext(caching=False),
            )
            plain = compress(test_set, config, verify=True)
            assert cached.to_dict() == uncached.to_dict()
            assert cached.to_dict() == plain.to_dict()
        # The warm context really did share: one encoding per distinct L.
        counters = warm.stats.counters
        num_windows = len({window for window, _, _ in GRID})
        assert counters["encoding_misses"] == num_windows
        assert counters["encoding_hits"] == len(GRID) - num_windows
        assert counters["substrate_misses"] == num_windows

    def test_simulation_identical_with_warm_context(self, test_set):
        config = _config()
        warm = CompressionContext()
        first = compress(test_set, config, verify=True, simulate=True, context=warm)
        second = compress(test_set, config, verify=True, simulate=True, context=warm)
        cold = compress(test_set, config, verify=True, simulate=True)
        assert first.to_dict() == cold.to_dict()
        assert second.to_dict() == cold.to_dict()
        assert second.simulation.covers(test_set)


# ----------------------------------------------------------------------
# Staged API
# ----------------------------------------------------------------------
class TestStagedPipeline:
    def test_stages_compose_to_the_monolith(self, test_set):
        config = _config()
        context = CompressionContext()
        encoded = pipeline.encode(test_set, config, context=context, verify=True)
        reduction = pipeline.reduce(encoded)
        hardware = pipeline.hardware(encoded, reduction)
        simulation = pipeline.simulate(encoded, reduction)
        monolith = compress(test_set, config, verify=True, simulate=True)
        assert encoded.encoding.to_dict() == monolith.encoding.to_dict()
        assert reduction.to_dict() == monolith.reduction.to_dict()
        assert hardware.to_dict() == monolith.hardware.to_dict()
        assert simulation.vectors_applied == monolith.simulation.vectors_applied
        assert simulation.group_sizes == monolith.simulation.group_sizes

    def test_encode_once_sweep_many(self, test_set):
        """One encode serves every (S, k) reduction bit-identically."""
        context = CompressionContext()
        base = _config()
        encoded = pipeline.encode(test_set, base, context=context)
        assert context.stats.counters["encoding_misses"] == 1
        for segment, speedup in ((4, 3), (4, 12), (10, 6)):
            swept = base.with_updates(segment_size=segment, speedup=speedup)
            reduction = pipeline.reduce(encoded, swept)
            reference = compress(test_set, swept, verify=True)
            assert reduction.to_dict() == reference.reduction.to_dict()
        # the sweep never re-encoded and never re-expanded the windows: the
        # packed expansion ran once (for verify's integer view) and every
        # reduce hit it
        assert context.stats.counters["encoding_misses"] == 1
        assert context.stats.counters["packed_window_misses"] == 1
        assert context.stats.counters["packed_window_hits"] >= 3

    def test_stage_timings_are_recorded(self, test_set):
        context = CompressionContext()
        compress(test_set, _config(), verify=True, context=context)
        timings = context.stats.timings
        for stage in ("encode", "reduce", "hardware"):
            assert timings[stage] >= 0.0
        snapshot = context.stats.snapshot()
        assert "encode_s" in snapshot and "encoding_misses" in snapshot

    def test_verification_runs_once_per_cached_encoding(self, test_set):
        context = CompressionContext()
        config = _config()
        first = pipeline.encode(test_set, config, context=context, verify=True)
        assert first.verified
        again = pipeline.encode(test_set, config, context=context, verify=True)
        assert again.verified
        # window expansion happened once (verify) and was reused
        assert context.stats.counters["window_misses"] == 1

    def test_stats_delta(self):
        before = {"encoding_hits": 1, "encode_s": 0.5}
        after = {"encoding_hits": 3, "encode_s": 0.75, "window_hits": 2}
        delta = ContextStats.delta(before, after)
        assert delta == {"encoding_hits": 2, "encode_s": 0.25, "window_hits": 2}


# ----------------------------------------------------------------------
# Context caches and the substrate
# ----------------------------------------------------------------------
class TestContextCaches:
    def test_substrate_cache_is_bounded_lru(self, test_set):
        context = CompressionContext(max_substrates=2)
        keys = [
            SubstrateKey(test_set.num_cells, 8, 16, window)
            for window in (8, 10, 12)
        ]
        for key in keys:
            context.substrate(key)
        assert context.stats.counters["substrate_misses"] == 3
        context.substrate(keys[0])  # evicted by the LRU bound
        assert context.stats.counters["substrate_misses"] == 4
        context.substrate(keys[2])  # still resident
        assert context.stats.counters["substrate_hits"] == 1

    def test_disabled_caching_recomputes(self, test_set):
        context = CompressionContext(caching=False)
        key = SubstrateKey(test_set.num_cells, 8, 16, 10)
        first = context.substrate(key)
        second = context.substrate(key)
        assert first is not second
        assert context.stats.counters["substrate_misses"] == 2

    def test_encoder_accepts_matching_substrate_only(self, test_set):
        key = SubstrateKey(test_set.num_cells, 8, 16, 10)
        substrate = EncoderSubstrate(key)
        encoder = ReseedingEncoder(
            num_cells=test_set.num_cells, num_scan_chains=8,
            lfsr_size=16, window_length=10, substrate=substrate,
        )
        assert encoder.equations is substrate.equations
        with pytest.raises(ValueError, match="substrate key"):
            ReseedingEncoder(
                num_cells=test_set.num_cells, num_scan_chains=8,
                lfsr_size=16, window_length=12, substrate=substrate,
            )

    def test_encode_cache_key_ignores_reduction_knobs(self):
        base = _config()
        assert (
            base.with_updates(speedup=24, segment_size=8).encode_cache_key()
            == base.encode_cache_key()
        )
        assert (
            base.with_updates(alignment="ideal").encode_cache_key()
            == base.encode_cache_key()
        )
        assert (
            base.with_updates(window_length=30).encode_cache_key()
            != base.encode_cache_key()
        )
        assert (
            base.with_updates(fill_seed=7).encode_cache_key()
            != base.encode_cache_key()
        )
        # the full cache key still separates reduction points
        assert base.with_updates(speedup=24).cache_key() != base.cache_key()


# ----------------------------------------------------------------------
# Campaign substrate sharing and warm-store timing honesty
# ----------------------------------------------------------------------
def _grid_spec(cube_file):
    return CampaignSpec(
        name="ctx-grid",
        sources=(TestSource(tests=str(cube_file)),),
        base=CompressionConfig(window_length=20, num_scan_chains=8, lfsr_size=16),
        axes={"segment_size": [4, 10], "speedup": [3, 6]},
    )


@pytest.fixture()
def cube_file(tmp_path, test_set):
    path = tmp_path / "ctx_unit.tests"
    path.write_text(test_set.to_text())
    return path


class TestCampaignSubstrateSharing:
    def test_grid_neighbours_share_one_encoding(self, tmp_path, cube_file):
        store = ResultStore(tmp_path / "store")
        result = CampaignRunner(_grid_spec(cube_file), store, jobs=1).run()
        assert result.num_computed == 4
        cache = result.cache_stat_totals()
        # 4 (S, k) jobs, one encode group: 1 encoding miss, 3 hits
        assert cache["encoding_misses"] == 1
        assert cache["encoding_hits"] == 3
        assert cache["substrate_misses"] == 1
        # every computed outcome carries its per-stage timings
        for outcome in result.outcomes:
            assert outcome.stage_timings is not None
            assert "reduce" in outcome.stage_timings
        # only the group's first job paid for the encode stage
        encoders = [
            outcome for outcome in result.outcomes
            if outcome.cache_stats and outcome.cache_stats.get("encoding_misses")
        ]
        assert len(encoders) == 1

    def test_grouped_results_match_ungrouped_runs(self, tmp_path, cube_file, test_set):
        """Substrate sharing must not change any job's figures of merit."""
        store = ResultStore(tmp_path / "store")
        result = CampaignRunner(_grid_spec(cube_file), store, jobs=1).run()
        for outcome in result.outcomes:
            config = CompressionConfig.from_dict(
                dict(outcome.job.config.to_dict(), lfsr_size=16)
            )
            reference = compress(test_set, config, verify=True)
            expected = dict(reference.summary())
            got = dict(outcome.summary)
            # the cube-file round trip renames the circuit; ignore it
            expected.pop("circuit"), got.pop("circuit")
            assert got == expected

    def test_resume_carries_elapsed_and_timings(self, tmp_path, cube_file):
        store = ResultStore(tmp_path / "store")
        spec = _grid_spec(cube_file)
        first = CampaignRunner(spec, store, jobs=1).run()
        by_key = {outcome.key: outcome for outcome in first.outcomes}

        resumed = CampaignRunner(spec, store, jobs=1).run()
        assert resumed.all_cached
        for outcome in resumed.outcomes:
            original = by_key[outcome.key]
            # the honest elapsed_s fix: cached outcomes report the stored
            # record's original compute time, not 0.0
            assert outcome.elapsed_s == original.elapsed_s
            assert outcome.elapsed_s > 0.0
            assert outcome.stage_timings == original.stage_timings
            assert outcome.cache_stats == original.cache_stats
        assert resumed.total_elapsed_s == pytest.approx(first.total_elapsed_s)

    def test_multiprocess_grouping_matches_inline(self, tmp_path, cube_file):
        inline_store = ResultStore(tmp_path / "inline")
        pooled_store = ResultStore(tmp_path / "pooled")
        spec = _grid_spec(cube_file)
        inline = CampaignRunner(spec, inline_store, jobs=1).run()
        pooled = CampaignRunner(spec, pooled_store, jobs=2).run()
        assert pooled.num_computed == inline.num_computed == 4
        assert pooled.rows() == inline.rows()

    def test_split_for_parallelism_fills_idle_workers(self):
        group = {"circuit": "c", "jobs": [{"index": i} for i in range(4)]}
        two = _split_for_parallelism([dict(group)], 2)
        assert [[j["index"] for j in chunk["jobs"]] for chunk in two] == [
            [0, 1], [2, 3],
        ]
        many = _split_for_parallelism([dict(group)], 8)
        assert len(many) == 4  # cannot split below one job per chunk
        assert [j["index"] for chunk in many for j in chunk["jobs"]] == [
            0, 1, 2, 3,
        ]
        # enough groups already: untouched
        untouched = _split_for_parallelism([dict(group), dict(group)], 2)
        assert len(untouched) == 2

    def test_group_budget_keeps_completed_results(self, test_set):
        """A spent group budget skips the remaining jobs instead of
        discarding the finished ones (the pre-grouping per-job guarantee)."""
        base = _config()
        payload = {
            "circuit": test_set.name,
            "test_text": test_set.to_text(),
            "fingerprint": test_set.fingerprint(),
            "verify": True,
            "timeout": 0.001,  # budget spent after the first real job
            "jobs": [
                {
                    "index": i,
                    "job_id": f"j{i}",
                    "config": base.with_updates(speedup=k).to_dict(),
                }
                for i, k in enumerate((3, 6, 12))
            ],
        }
        results = _execute_group_payload(payload)
        statuses = [result["status"] for result in results]
        assert statuses[0] == "ok"  # completed work is returned...
        assert set(statuses[1:]) == {"timeout"}  # ...the rest is retried
        assert "not started" in results[1]["error"]

    def test_equation_cube_caches_are_bounded(self, test_set):
        substrate = EncoderSubstrate(
            SubstrateKey(test_set.num_cells, 8, 16, 10)
        )
        equations = substrate.equations
        equations._words_cache.bound = 5
        equations._cube_cache.bound = 5
        for cube in test_set.cubes:
            equations.cube_position_words(cube)
            equations.cube_equations(cube)
        assert len(equations._words_cache) <= 5
        assert len(equations._cube_cache) <= 5
        # an encoding run reserves capacity for its whole working set, so a
        # test set larger than the current bound never thrashes
        equations.precompute_cube_words(test_set.cubes)
        distinct = len(
            {(c.num_cells, c.care_mask, c.care_value) for c in test_set.cubes}
        )
        assert len(equations._words_cache) == distinct
        assert equations._words_cache.bound >= 2 * len(test_set.cubes)

    def test_distinct_windows_form_distinct_groups(self, tmp_path, cube_file):
        spec = CampaignSpec(
            name="two-groups",
            sources=(TestSource(tests=str(cube_file)),),
            base=CompressionConfig(
                window_length=20, num_scan_chains=8, lfsr_size=16
            ),
            axes={"window_length": [16, 20], "speedup": [3, 6]},
        )
        store = ResultStore(tmp_path / "store")
        result = CampaignRunner(spec, store, jobs=1).run()
        assert result.num_computed == 4
        cache = result.cache_stat_totals()
        assert cache["encoding_misses"] == 2  # one encode per window length
        assert cache["encoding_hits"] == 2
