"""Tests for test cubes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.testdata.cube import TestCube


class TestConstruction:
    def test_from_string(self):
        cube = TestCube.from_string("1X0-x1")
        assert cube.num_cells == 6
        assert cube.specified_count() == 3
        assert cube.bit(0) == 1
        assert cube.bit(1) is None
        assert cube.bit(2) == 0
        assert cube.bit(5) == 1

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            TestCube.from_string("10Z")
        with pytest.raises(ValueError):
            TestCube.from_string("")

    def test_from_assignments(self):
        cube = TestCube.from_assignments(8, {0: 1, 7: 0})
        assert cube.specified_cells() == [0, 7]
        assert cube.assignments() == {0: 1, 7: 0}

    def test_from_assignments_validation(self):
        with pytest.raises(IndexError):
            TestCube.from_assignments(4, {4: 1})
        with pytest.raises(ValueError):
            TestCube.from_assignments(4, {0: 2})

    def test_fully_specified(self):
        cube = TestCube.fully_specified([1, 0, 1])
        assert cube.specified_count() == 3
        assert cube.to_string() == "101"

    def test_to_string_roundtrip(self):
        text = "1XX01X10"
        assert TestCube.from_string(text).to_string() == text

    def test_value_outside_mask_is_dropped(self):
        cube = TestCube(4, care_mask=0b0011, care_value=0b1111)
        assert cube.care_value == 0b0011

    def test_num_cells_validation(self):
        with pytest.raises(ValueError):
            TestCube(0)


class TestRelations:
    def test_compatible_and_merge(self):
        a = TestCube.from_string("1X0X")
        b = TestCube.from_string("XX01")
        assert a.compatible(b)
        merged = a.merge(b)
        assert merged.to_string() == "1X01"

    def test_incompatible(self):
        a = TestCube.from_string("1X")
        b = TestCube.from_string("0X")
        assert not a.compatible(b)
        assert a.conflicts(b) == [0]
        with pytest.raises(ValueError):
            a.merge(b)

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            TestCube.from_string("1X").compatible(TestCube.from_string("1XX"))

    def test_contains(self):
        big = TestCube.from_string("10X1")
        small = TestCube.from_string("1XX1")
        assert big.contains(small)
        assert not small.contains(big)
        assert big.contains(big)

    def test_matches_vector(self):
        cube = TestCube.from_string("1X0X")
        assert cube.matches_vector(0b1001)  # cells: 1,0,0,1 -> bit0=1, bit2=0
        assert not cube.matches_vector(0b0100)  # bit0=0 and bit2=1 both conflict

    def test_density(self):
        cube = TestCube.from_string("1XXX")
        assert cube.density() == pytest.approx(0.25)

    def test_is_empty(self):
        assert TestCube.from_string("XXX").is_empty()
        assert not TestCube.from_string("X1X").is_empty()


class TestTransformation:
    def test_with_bit(self):
        cube = TestCube.from_string("XXX")
        cube2 = cube.with_bit(1, 1)
        assert cube2.to_string() == "X1X"
        assert cube.to_string() == "XXX"  # original unchanged

    def test_with_bit_validation(self):
        cube = TestCube.from_string("XX")
        with pytest.raises(IndexError):
            cube.with_bit(5, 1)
        with pytest.raises(ValueError):
            cube.with_bit(0, 3)

    def test_fill(self):
        cube = TestCube.from_string("1X0X")
        filled = cube.fill(0b1111)
        # care bits preserved, don't-cares take the fill value.
        assert filled == 0b1011
        assert cube.matches_vector(filled)

    def test_equality_and_hash(self):
        a = TestCube.from_string("1X0")
        b = TestCube.from_string("1X0")
        assert a == b
        assert hash(a) == hash(b)
        assert a != TestCube.from_string("1X1")

    def test_repr_small_and_large(self):
        assert "1X0" in repr(TestCube.from_string("1X0"))
        big = TestCube.from_assignments(100, {5: 1})
        assert "specified=1" in repr(big)


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
cube_strings = st.text(alphabet="01X", min_size=1, max_size=64)


@given(cube_strings)
def test_roundtrip_property(text):
    assert TestCube.from_string(text).to_string() == text.upper().replace("-", "X")


@given(cube_strings, st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_fill_always_matches(text, fill_bits):
    cube = TestCube.from_string(text)
    assert cube.matches_vector(cube.fill(fill_bits))


@given(cube_strings, cube_strings)
@settings(max_examples=80)
def test_merge_contains_both(a_text, b_text):
    n = min(len(a_text), len(b_text))
    a = TestCube.from_string(a_text[:n])
    b = TestCube.from_string(b_text[:n])
    if a.compatible(b):
        merged = a.merge(b)
        assert merged.contains(a)
        assert merged.contains(b)
        assert merged.specified_count() <= a.specified_count() + b.specified_count()
    else:
        assert len(a.conflicts(b)) >= 1


@given(cube_strings)
def test_compatibility_is_reflexive_and_symmetric(text):
    cube = TestCube.from_string(text)
    assert cube.compatible(cube)


@given(cube_strings, cube_strings)
@settings(max_examples=80)
def test_compatibility_symmetric(a_text, b_text):
    n = min(len(a_text), len(b_text))
    a = TestCube.from_string(a_text[:n])
    b = TestCube.from_string(b_text[:n])
    assert a.compatible(b) == b.compatible(a)
