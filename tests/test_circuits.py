"""Tests for the gate-level circuit substrate (netlist, simulation, faults,
fault simulation, ATPG, generation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.atpg import PodemAtpg, generate_test_set_for_netlist
from repro.circuits.bench import parse_bench, write_bench
from repro.circuits.fault_sim import FaultSimulator
from repro.circuits.faults import (
    StuckAtFault,
    all_faults,
    collapse_faults,
    fault_coverage,
)
from repro.circuits.generator import random_netlist
from repro.circuits.library import (
    builtin_circuits,
    c17,
    carry_ripple_adder,
    majority_voter,
    parity_tree,
)
from repro.circuits.netlist import Gate, GateType, Netlist
from repro.circuits.simulator import (
    X,
    pack_patterns,
    simulate,
    simulate_parallel,
    simulate_ternary,
)


class TestNetlist:
    def test_c17_structure(self):
        net = c17()
        assert net.num_inputs == 5
        assert net.num_outputs == 2
        assert net.num_gates == 6
        assert net.depth() == 3
        assert net.stats()["gates"] == 6

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            Netlist("bad", [], ["z"], [Gate("z", GateType.NOT, ("a",))])
        with pytest.raises(ValueError):
            Netlist("bad", ["a"], [], [Gate("z", GateType.NOT, ("a",))])
        with pytest.raises(ValueError):
            # undriven net
            Netlist("bad", ["a"], ["z"], [Gate("z", GateType.AND, ("a", "q"))])
        with pytest.raises(ValueError):
            # double driver
            Netlist(
                "bad",
                ["a", "b"],
                ["z"],
                [Gate("z", GateType.NOT, ("a",)), Gate("z", GateType.NOT, ("b",))],
            )

    def test_combinational_loop_detected(self):
        with pytest.raises(ValueError):
            Netlist(
                "loop",
                ["a"],
                ["x"],
                [
                    Gate("x", GateType.AND, ("a", "y")),
                    Gate("y", GateType.NOT, ("x",)),
                ],
            )

    def test_gate_validation(self):
        with pytest.raises(ValueError):
            Gate("z", GateType.NOT, ("a", "b"))
        with pytest.raises(ValueError):
            Gate("z", GateType.AND, ("a",))
        with pytest.raises(ValueError):
            Gate("z", GateType.AND, ())

    def test_fanout_and_order(self):
        net = c17()
        fanout = net.fanout()
        assert set(fanout["G11"]) == {"G16", "G19"}
        order = net.evaluation_order()
        assert order.index("G10") < order.index("G22")

    def test_input_index(self):
        net = c17()
        assert net.input_index("G1") == 0
        assert net.input_index("G7") == 4


class TestBenchFormat:
    def test_roundtrip(self):
        net = c17()
        text = write_bench(net)
        parsed = parse_bench(text, name="c17")
        assert parsed.num_inputs == net.num_inputs
        assert parsed.num_gates == net.num_gates
        # Same function: exhaustive check over all 32 input combinations.
        for value in range(32):
            pattern = {pin: (value >> i) & 1 for i, pin in enumerate(net.inputs)}
            assert [simulate(net, pattern)[o] for o in net.outputs] == [
                simulate(parsed, pattern)[o] for o in parsed.outputs
            ]

    def test_dff_becomes_pseudo_io(self):
        text = """
        INPUT(a)
        OUTPUT(z)
        q = DFF(d)
        d = AND(a, q)
        z = NOT(q)
        """
        net = parse_bench(text, name="seq")
        assert "q" in net.inputs  # pseudo primary input
        assert "d" in net.outputs  # pseudo primary output
        assert net.num_inputs == 2

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            parse_bench("z = FROB(a, b)\nINPUT(a)\nOUTPUT(z)")
        with pytest.raises(ValueError):
            parse_bench("this is not bench")


class TestSimulation:
    def test_c17_known_vector(self):
        net = c17()
        values = simulate(net, {"G1": 0, "G2": 0, "G3": 0, "G6": 0, "G7": 0})
        # All NAND gates with a zero input produce 1 at the first level.
        assert values["G10"] == 1 and values["G11"] == 1
        assert values["G22"] in (0, 1) and values["G23"] in (0, 1)

    def test_missing_input_rejected(self):
        with pytest.raises(ValueError):
            simulate(c17(), {"G1": 0})

    def test_ternary_propagates_x(self):
        net = c17()
        values = simulate_ternary(net, {"G1": 0})
        # G10 = NAND(G1=0, G3=X) = 1 regardless of X.
        assert values["G10"] == 1
        assert values["G23"] is X or values["G23"] in (0, 1)

    def test_parallel_matches_serial(self):
        net = carry_ripple_adder(3)
        patterns = []
        for value in range(20):
            patterns.append(
                {pin: (value >> i) & 1 for i, pin in enumerate(net.inputs)}
            )
        words = pack_patterns(net, patterns)
        parallel = simulate_parallel(net, words, len(patterns))
        for index, pattern in enumerate(patterns):
            serial = simulate(net, pattern)
            for output in net.outputs:
                assert ((parallel[output] >> index) & 1) == serial[output]

    def test_adder_adds(self):
        net = carry_ripple_adder(4)
        for a, b in [(3, 5), (15, 1), (7, 7), (0, 0)]:
            pattern = {}
            for i in range(4):
                pattern[f"a{i}"] = (a >> i) & 1
                pattern[f"b{i}"] = (b >> i) & 1
            values = simulate(net, pattern)
            total = sum(values[net_name] << i for i, net_name in enumerate(net.outputs))
            assert total == a + b

    def test_parity_tree_computes_parity(self):
        net = parity_tree(8)
        for value in (0, 0b10110101, 0b11111111, 0b00000001):
            pattern = {f"d{i}": (value >> i) & 1 for i in range(8)}
            values = simulate(net, pattern)
            assert values[net.outputs[0]] == bin(value).count("1") % 2

    def test_majority_voter(self):
        net = majority_voter(3)
        cases = {(0, 0, 0): 0, (1, 0, 0): 0, (1, 1, 0): 1, (1, 1, 1): 1}
        for bits, expected in cases.items():
            pattern = {f"in{i}": bits[i] for i in range(3)}
            assert simulate(net, pattern)["vote"] == expected


class TestFaults:
    def test_fault_universe_size(self):
        net = c17()
        faults = all_faults(net)
        assert len(faults) == 2 * len(net.nets())

    def test_collapsing_reduces_but_keeps_inputs(self):
        net = c17()
        collapsed = collapse_faults(net)
        assert len(collapsed) < len(all_faults(net))
        for pin in net.inputs:
            assert StuckAtFault(pin, 0) in collapsed
            assert StuckAtFault(pin, 1) in collapsed

    def test_fault_validation(self):
        with pytest.raises(ValueError):
            StuckAtFault("a", 2)

    def test_fault_coverage_helper(self):
        universe = [StuckAtFault("a", 0), StuckAtFault("a", 1)]
        assert fault_coverage([StuckAtFault("a", 0)], universe) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            fault_coverage([], [])


class TestFaultSimulation:
    def test_exhaustive_patterns_detect_all_c17_faults(self):
        net = c17()
        simulator = FaultSimulator(net)
        patterns = [
            {pin: (value >> i) & 1 for i, pin in enumerate(net.inputs)}
            for value in range(32)
        ]
        simulator.simulate_patterns(patterns)
        # c17 has no redundant faults: exhaustive stimulation detects them all.
        assert simulator.remaining_faults == []
        assert simulator.coverage_percent == pytest.approx(100.0)

    def test_fault_dropping(self):
        net = c17()
        simulator = FaultSimulator(net)
        before = len(simulator.remaining_faults)
        simulator.simulate_patterns(
            [{pin: 1 for pin in net.inputs}], drop=True
        )
        assert len(simulator.remaining_faults) < before

    def test_simulate_vectors_packed_form(self):
        net = c17()
        simulator = FaultSimulator(net)
        result = simulator.simulate_vectors([0b10101, 0b01010])
        assert result.detected_faults()
        first = result.detected_faults()[0]
        assert result.detecting_pattern(first) in (0, 1)

    def test_is_remaining_tracks_drops(self):
        net = c17()
        simulator = FaultSimulator(net)
        fault = simulator.remaining_faults[0]
        assert simulator.is_remaining(fault)
        simulator.simulate_patterns(
            [
                {pin: (value >> i) & 1 for i, pin in enumerate(net.inputs)}
                for value in range(32)
            ]
        )
        assert not simulator.is_remaining(fault)
        assert not simulator.is_remaining(StuckAtFault("not_a_net", 0))

    def test_drop_fault_counts_as_detected(self):
        net = c17()
        simulator = FaultSimulator(net)
        fault = simulator.remaining_faults[0]
        simulator.drop_fault(fault)
        assert not simulator.is_remaining(fault)
        assert fault in simulator.detected_faults
        before = simulator.coverage_percent
        simulator.drop_fault(fault)  # idempotent
        assert simulator.coverage_percent == before

    def test_detect_block_matches_simulate_patterns(self):
        from repro.circuits.simulator import pack_patterns, simulate_parallel

        net = c17()
        patterns = [
            {pin: (value >> i) & 1 for i, pin in enumerate(net.inputs)}
            for value in (3, 12, 25, 30)
        ]
        by_patterns = FaultSimulator(net)
        expected = by_patterns.simulate_patterns(patterns)
        by_block = FaultSimulator(net)
        good = simulate_parallel(net, pack_patterns(net, patterns), len(patterns))
        actual = by_block.detect_block(good, len(patterns))
        assert actual.detected == expected.detected
        assert by_block.remaining_faults == by_patterns.remaining_faults
        # detection_word is a pure query of the same state.
        fault = actual.detected_faults()[0]
        assert by_block.detection_word(good, len(patterns), fault) == (
            actual.detected[fault]
        )


class TestAtpg:
    def test_c17_full_coverage(self):
        result = generate_test_set_for_netlist(c17())
        assert result.effective_coverage_percent == pytest.approx(100.0)
        assert result.aborted == []
        assert len(result.test_set) >= 1
        # Cubes must keep don't-cares: c17 tests rarely need all 5 inputs.
        assert any(cube.specified_count() < 5 for cube in result.test_set)

    def test_generated_cubes_detect_their_faults(self):
        net = c17()
        atpg = PodemAtpg(net)
        for fault in collapse_faults(net):
            assignment = atpg.generate_cube(fault)
            assert assignment is not None, f"{fault} should be testable in c17"
            # Verify detection by explicit fault simulation of the cube with
            # zero-fill.
            simulator = FaultSimulator(net, [fault])
            filled = {pin: assignment.get(pin, 0) for pin in net.inputs}
            outcome = simulator.simulate_patterns([filled])
            # Some zero-fills may mask detection; retry with one-fill before
            # declaring failure.
            if fault not in outcome.detected:
                simulator = FaultSimulator(net, [fault])
                filled = {pin: assignment.get(pin, 1) for pin in net.inputs}
                outcome = simulator.simulate_patterns([filled])
            assert fault in outcome.detected

    def test_adder_and_parity_coverage(self):
        for netlist in (carry_ripple_adder(3), parity_tree(4)):
            result = generate_test_set_for_netlist(netlist)
            assert result.effective_coverage_percent > 95.0
            assert result.test_set.num_cells == netlist.num_inputs

    def test_atpg_on_generated_circuit(self):
        netlist = random_netlist("rand", num_inputs=12, num_gates=40, seed=3)
        result = generate_test_set_for_netlist(netlist)
        assert result.coverage_percent > 70.0
        assert result.test_set.num_cells == 12


class TestGeneratorAndLibrary:
    def test_generator_reproducible(self):
        a = random_netlist("g", 10, 30, seed=5)
        b = random_netlist("g", 10, 30, seed=5)
        assert write_bench(a) == write_bench(b)
        c = random_netlist("g", 10, 30, seed=6)
        assert write_bench(a) != write_bench(c)

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            random_netlist("g", 1, 10)
        with pytest.raises(ValueError):
            random_netlist("g", 4, 0)
        with pytest.raises(ValueError):
            random_netlist("g", 4, 10, max_fanin=1)

    def test_generator_structure(self):
        net = random_netlist("g", 16, 80, num_outputs=6, seed=9)
        assert net.num_inputs == 16
        assert net.num_gates == 80
        assert net.num_outputs >= 6  # fan-out-free gates become extra outputs
        assert net.depth() >= 2
        # No dangling logic: every gate reaches a primary output.
        fanout = net.fanout()
        for gate in net.gates():
            assert fanout[gate.output] or gate.output in net.outputs

    def test_builtin_circuits_all_valid(self):
        for netlist in builtin_circuits():
            assert netlist.num_gates > 0
            assert netlist.depth() >= 1

    def test_library_validation(self):
        with pytest.raises(ValueError):
            carry_ripple_adder(0)
        with pytest.raises(ValueError):
            majority_voter(4)
        with pytest.raises(ValueError):
            parity_tree(1)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 10) - 1))
def test_ternary_consistent_with_binary(value):
    """Fully specified ternary simulation equals binary simulation (c17 + adder)."""
    for netlist in (c17(), carry_ripple_adder(2)):
        width = netlist.num_inputs
        pattern = {pin: (value >> i) & 1 for i, pin in enumerate(netlist.inputs)}
        binary = simulate(netlist, pattern)
        ternary = simulate_ternary(netlist, pattern)
        for net in netlist.nets():
            assert binary[net] == ternary[net]
