"""Tests for the scan-shift power estimation extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.power import (
    PowerStats,
    power_saving_percent,
    sequence_power,
    weighted_transition_metric,
)
from repro.scan.architecture import ScanArchitecture


class TestWeightedTransitionMetric:
    def test_constant_vectors_have_zero_wtm(self):
        arch = ScanArchitecture(num_cells=24, num_chains=4)
        assert weighted_transition_metric(0, arch) == 0
        all_ones = (1 << 24) - 1
        assert weighted_transition_metric(all_ones, arch) == 0

    def test_single_chain_known_value(self):
        # One chain of 4 cells holding (depth 0..3) = 1, 0, 0, 0:
        # a single transition between depths 0 and 1, weight r - 1 = 3.
        arch = ScanArchitecture(num_cells=4, num_chains=1)
        assert weighted_transition_metric(0b0001, arch) == 3

    def test_alternating_pattern_is_peak(self):
        arch = ScanArchitecture(num_cells=8, num_chains=1)
        alternating = 0b01010101
        constant = 0
        assert weighted_transition_metric(alternating, arch) > weighted_transition_metric(
            constant, arch
        )

    def test_chains_are_independent(self):
        # Two chains: a transition on one chain does not depend on the other.
        arch = ScanArchitecture(num_cells=8, num_chains=2)
        only_chain0 = 0b00000001  # cell 0 = chain 0 depth 0
        value = weighted_transition_metric(only_chain0, arch)
        with_other_chain_constant_ones = only_chain0 | 0b10101010 & 0
        assert weighted_transition_metric(with_other_chain_constant_ones, arch) == value


class TestSequencePower:
    def test_aggregation(self):
        arch = ScanArchitecture(num_cells=4, num_chains=1)
        stats = sequence_power([0b0001, 0b0000, 0b0101], arch)
        assert stats.num_vectors == 3
        assert stats.total_wtm == (3) + (0) + weighted_transition_metric(0b0101, arch)
        assert stats.peak_wtm >= 3
        assert stats.average_wtm == pytest.approx(stats.total_wtm / 3)

    def test_empty_sequence(self):
        arch = ScanArchitecture(num_cells=4, num_chains=1)
        stats = sequence_power([], arch)
        assert stats.num_vectors == 0
        assert stats.average_wtm == 0.0

    def test_power_saving_percent(self):
        baseline = PowerStats(num_vectors=100, total_wtm=1000, peak_wtm=20)
        reduced = PowerStats(num_vectors=20, total_wtm=250, peak_wtm=20)
        assert power_saving_percent(baseline, reduced) == pytest.approx(75.0)
        with pytest.raises(ValueError):
            power_saving_percent(PowerStats(0, 0, 0), reduced)

    def test_state_skip_reduces_shift_energy(self):
        """End-to-end: the reduced sequence uses less shift energy."""
        from repro.config import CompressionConfig
        from repro.pipeline import compress
        from repro.testdata.profiles import custom_profile
        from repro.testdata.synthetic import generate_test_set

        profile = custom_profile(
            "power_unit", scan_cells=48, num_cubes=25, max_specified=8,
            mean_specified=4.0, scan_chains=6, lfsr_size=14,
        )
        test_set = generate_test_set(profile, seed=13)
        config = CompressionConfig(
            window_length=20, segment_size=4, speedup=5,
            num_scan_chains=6, lfsr_size=14,
        )
        report = compress(test_set, config, verify=True, simulate=False)
        arch = ScanArchitecture(profile.scan_cells, profile.scan_chains)
        # Baseline: every window vector of every seed is applied.
        encoder_eq = None
        from repro.encoding.encoder import ReseedingEncoder

        encoder = ReseedingEncoder(48, 6, 14, window_length=20)
        windows = encoder.equations.expand_seeds(
            [record.seed for record in report.encoding.seeds]
        )
        baseline_vectors = [v for window in windows for v in window]
        baseline = sequence_power(baseline_vectors, arch)
        # Reduced: only the vectors of useful segments (a conservative
        # under-count of the skip-mode garbage, still dominated by the
        # baseline).
        reduced_vectors = []
        for schedule, window in zip(report.reduction.schedules, windows):
            for plan in schedule.segments:
                if plan.useful:
                    start, end = plan.vector_range
                    reduced_vectors.extend(window[start:end])
        reduced = sequence_power(reduced_vectors, arch)
        assert reduced.total_wtm < baseline.total_wtm
        assert power_saving_percent(baseline, reduced) > 0.0


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 30) - 1))
def test_wtm_bounded_by_maximum(vector):
    arch = ScanArchitecture(num_cells=30, num_chains=5)
    r = arch.chain_length
    max_per_chain = sum(range(1, r))  # every adjacent pair toggles
    value = weighted_transition_metric(vector, arch)
    assert 0 <= value <= arch.num_chains * max_per_chain


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 30) - 1))
def test_wtm_invariant_under_complement(vector):
    arch = ScanArchitecture(num_cells=30, num_chains=5)
    complement = ~vector & ((1 << 30) - 1)
    assert weighted_transition_metric(vector, arch) == weighted_transition_metric(
        complement, arch
    )
