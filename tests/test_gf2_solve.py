"""Tests for the incremental GF(2) solver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gf2.bitvec import BitVector
from repro.gf2.matrix import GF2Matrix
from repro.gf2.solve import Equation, IncrementalSolver, SolveOutcome, gaussian_solve


def _pack(coeff_bits):
    """Pack a left-to-right coefficient string where char i is variable i."""
    value = 0
    for i, ch in enumerate(coeff_bits):
        if ch == "1":
            value |= 1 << i
    return value


def eq(coeff_bits, rhs):
    """Shorthand for an Equation from a coefficient string (char i = var i)."""
    return Equation(_pack(coeff_bits), rhs)


class TestEquation:
    def test_rejects_bad_rhs(self):
        with pytest.raises(ValueError):
            Equation(0b1, 2)

    def test_from_bitvector(self):
        e = Equation.from_bitvector(BitVector.from_string("101"), 1)
        assert e.coeffs == 0b101
        assert e.rhs == 1


class TestIncrementalSolver:
    def test_requires_positive_variables(self):
        with pytest.raises(ValueError):
            IncrementalSolver(0)

    def test_simple_consistent_system(self):
        solver = IncrementalSolver(3)
        # x0 ^ x1 = 1, x1 = 1, x2 = 0
        trial = solver.add_equations(
            [eq("110", 1), eq("010", 1), eq("001", 0)]
        )
        assert trial.consistent
        solution = solver.solution()
        assert solution.to_bits() == [0, 1, 0]

    def test_inconsistent_system_detected(self):
        solver = IncrementalSolver(2)
        assert solver.add_equations([eq("10", 1)]).consistent
        trial = solver.try_equations([eq("10", 0)])
        assert trial.outcome is SolveOutcome.INCONSISTENT

    def test_try_does_not_commit(self):
        solver = IncrementalSolver(3)
        trial = solver.try_equations([eq("100", 1)])
        assert trial.consistent
        assert solver.rank == 0
        solver.commit(trial)
        assert solver.rank == 1

    def test_new_pivot_counting(self):
        solver = IncrementalSolver(4)
        solver.add_equations([eq("1000", 1)])
        trial = solver.try_equations([eq("1100", 0), eq("0010", 1)])
        # x0 already pinned, so the batch pins x1 and x2 -> 2 new pivots.
        assert trial.consistent
        assert trial.new_pivots == 2

    def test_redundant_equation_adds_no_pivot(self):
        solver = IncrementalSolver(3)
        solver.add_equations([eq("110", 1), eq("011", 0)])
        trial = solver.try_equations([eq("101", 1)])  # sum of the two
        assert trial.consistent
        assert trial.new_pivots == 0

    def test_free_variable_fill(self):
        solver = IncrementalSolver(4)
        solver.add_equations([eq("1000", 1)])
        zeros_fill = solver.solution(free_fill=[0])
        ones_fill = solver.solution(free_fill=[1])
        assert zeros_fill[0] == 1 and ones_fill[0] == 1
        assert zeros_fill.to_bits()[1:] == [0, 0, 0]
        assert ones_fill.to_bits()[1:] == [1, 1, 1]

    def test_solution_satisfies_committed_equations(self):
        equations = [eq("1101", 1), eq("0110", 0), eq("0011", 1), eq("1000", 0)]
        solver = IncrementalSolver(4)
        trial = solver.add_equations(equations)
        assert trial.consistent
        solution = solver.solution(free_fill=[1, 0, 1])
        assert solver.check_solution(solution, equations)

    def test_commit_inconsistent_rejected(self):
        solver = IncrementalSolver(2)
        trial = solver.try_equations([eq("10", 1), eq("10", 0)])
        with pytest.raises(ValueError):
            solver.commit(trial)

    def test_copy_is_independent(self):
        solver = IncrementalSolver(3)
        solver.add_equations([eq("100", 1)])
        clone = solver.copy()
        clone.add_equations([eq("010", 1)])
        assert solver.rank == 1
        assert clone.rank == 2

    def test_rank_and_free_variables(self):
        solver = IncrementalSolver(5)
        solver.add_equations([eq("10000", 0), eq("01000", 1)])
        assert solver.rank == 2
        assert solver.free_variables == 3
        assert solver.pivot_columns() == [0, 1]
        assert solver.is_determined(0)
        assert not solver.is_determined(4)

    def test_try_masks_matches_try_equations(self):
        solver = IncrementalSolver(4)
        solver.add_equations([eq("1100", 1)])
        eqs = [eq("0110", 1), eq("0011", 0)]
        masks = [(e.coeffs, e.rhs) for e in eqs]
        t1 = solver.try_equations(eqs)
        t2 = solver.try_masks(masks)
        assert t1.outcome == t2.outcome
        assert t1.new_pivots == t2.new_pivots


class TestGaussianSolve:
    def test_solves_invertible_system(self):
        equations = [eq("110", 1), eq("011", 1), eq("001", 1)]
        solution = gaussian_solve(equations, 3)
        assert solution is not None
        for e in equations:
            assert (BitVector(3, e.coeffs) & solution).weight() % 2 == e.rhs

    def test_returns_none_for_inconsistent(self):
        equations = [eq("110", 1), eq("110", 0)]
        assert gaussian_solve(equations, 3) is None


# ----------------------------------------------------------------------
# Property-based tests: random systems derived from a known solution are
# always consistent and the solver's solution satisfies them.
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=2, max_value=24),
    st.data(),
)
def test_random_satisfiable_systems(num_vars, data):
    secret_bits = data.draw(
        st.lists(st.integers(0, 1), min_size=num_vars, max_size=num_vars)
    )
    secret = BitVector.from_bits(secret_bits)
    num_eqs = data.draw(st.integers(min_value=1, max_value=2 * num_vars))
    equations = []
    for _ in range(num_eqs):
        coeff_bits = data.draw(
            st.lists(st.integers(0, 1), min_size=num_vars, max_size=num_vars)
        )
        coeffs = BitVector.from_bits(coeff_bits)
        equations.append(Equation(coeffs.value, coeffs.dot(secret)))
    solver = IncrementalSolver(num_vars)
    trial = solver.add_equations(equations)
    assert trial.consistent
    solution = solver.solution()
    assert solver.check_solution(solution, equations)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=2, max_value=16),
    st.data(),
)
def test_incremental_matches_batch_rank(num_vars, data):
    """Adding equations one at a time gives the same rank as the matrix rank."""
    num_eqs = data.draw(st.integers(min_value=1, max_value=2 * num_vars))
    rows = [
        data.draw(st.lists(st.integers(0, 1), min_size=num_vars, max_size=num_vars))
        for _ in range(num_eqs)
    ]
    solver = IncrementalSolver(num_vars)
    for row in rows:
        coeffs = BitVector.from_bits(row)
        solver.add_equations([Equation(coeffs.value, 0)])  # rhs 0: always consistent
    assert solver.rank == GF2Matrix.from_rows(rows).rank()


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=16), st.data())
def test_new_pivots_equals_rank_increase(num_vars, data):
    num_eqs = data.draw(st.integers(min_value=1, max_value=num_vars))
    secret_bits = data.draw(
        st.lists(st.integers(0, 1), min_size=num_vars, max_size=num_vars)
    )
    secret = BitVector.from_bits(secret_bits)
    solver = IncrementalSolver(num_vars)
    for _ in range(num_eqs):
        coeff_bits = data.draw(
            st.lists(st.integers(0, 1), min_size=num_vars, max_size=num_vars)
        )
        coeffs = BitVector.from_bits(coeff_bits)
        equation = Equation(coeffs.value, coeffs.dot(secret))
        before = solver.rank
        trial = solver.try_equations([equation])
        solver.commit(trial)
        assert solver.rank - before == trial.new_pivots
