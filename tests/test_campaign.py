"""Tests of the campaign subsystem: spec, store, runner, report, CLI."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign.report import (
    best_config_rows,
    best_config_table,
    campaign_report,
    improvement_grids,
)
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec, TestSource
from repro.campaign.store import ResultStore, StoredResult, result_key
from repro.cli import main
from repro.config import CompressionConfig
from repro.pipeline import compress
from repro.testdata.profiles import custom_profile
from repro.testdata.synthetic import generate_test_set

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def _tiny_test_set(name="camp_core", seed=7):
    profile = custom_profile(
        name,
        scan_cells=64,
        num_cubes=20,
        max_specified=8,
        mean_specified=4.0,
        scan_chains=8,
        lfsr_size=16,
    )
    return generate_test_set(profile, seed=seed)


@pytest.fixture()
def cube_file(tmp_path):
    test_set = _tiny_test_set()
    path = tmp_path / "camp_core.tests"
    path.write_text(test_set.to_text())
    return path


@pytest.fixture()
def tiny_config():
    return CompressionConfig(
        window_length=20, segment_size=4, speedup=6, num_scan_chains=8, lfsr_size=16
    )


# ----------------------------------------------------------------------
# Spec
# ----------------------------------------------------------------------
class TestSpec:
    def test_cartesian_expansion_is_deterministic(self, cube_file):
        spec = CampaignSpec(
            name="grid",
            sources=(TestSource(tests=str(cube_file)),),
            base=CompressionConfig(window_length=20, num_scan_chains=8),
            axes={"speedup": [3, 6], "segment_size": [4, 10]},
        )
        ids = [job.job_id for job in spec.jobs()]
        assert ids == [
            "camp_core:speedup=3,segment_size=4",
            "camp_core:speedup=3,segment_size=10",
            "camp_core:speedup=6,segment_size=4",
            "camp_core:speedup=6,segment_size=10",
        ]
        assert ids == [job.job_id for job in spec.jobs()]  # stable
        assert spec.num_jobs == 4

    def test_filter_prunes_combinations(self, cube_file):
        spec = CampaignSpec(
            name="filtered",
            sources=(TestSource(tests=str(cube_file)),),
            base=CompressionConfig(num_scan_chains=8),
            axes={"window_length": [10, 40], "segment_size": [4, 20]},
            filter="segment_size <= window_length",
        )
        combos = [(job.config.window_length, job.config.segment_size)
                  for job in spec.jobs()]
        assert combos == [(10, 4), (40, 4), (40, 20)]

    def test_unknown_axis_rejected(self, cube_file):
        with pytest.raises(ValueError, match="unknown config axes"):
            CampaignSpec(
                name="bad",
                sources=(TestSource(tests=str(cube_file)),),
                axes={"warp_factor": [9]},
            )

    def test_source_needs_exactly_one_kind(self):
        with pytest.raises(ValueError):
            TestSource()
        with pytest.raises(ValueError):
            TestSource(profile="s13207", tests="x.tests")
        with pytest.raises(KeyError):
            TestSource(profile="not_a_circuit")

    def test_profile_source_resolves_lfsr_default(self):
        test_set, lfsr = TestSource(profile="s13207", scale=0.03).resolve()
        assert lfsr == 24
        assert len(test_set) >= 20

    def test_from_json_file(self, tmp_path, cube_file):
        data = {
            "name": "json-campaign",
            "sources": [{"tests": str(cube_file)}],
            "base": {"window_length": 20, "num_scan_chains": 8},
            "axes": {"speedup": [3, 6]},
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(data))
        spec = CampaignSpec.from_file(path)
        assert spec.name == "json-campaign"
        assert spec.base.window_length == 20
        assert spec.num_jobs == 2

    def test_from_toml_file(self, tmp_path, cube_file):
        pytest.importorskip("tomllib")
        text = (
            'name = "toml-campaign"\n'
            "[[sources]]\n"
            f'tests = "{cube_file}"\n'
            "[base]\n"
            "window_length = 20\n"
            "num_scan_chains = 8\n"
            "[axes]\n"
            "speedup = [3, 6, 12]\n"
        )
        path = tmp_path / "spec.toml"
        path.write_text(text)
        spec = CampaignSpec.from_file(path)
        assert spec.name == "toml-campaign"
        assert spec.num_jobs == 3

    def test_base_typo_in_spec_rejected(self, cube_file):
        data = {
            "name": "typo",
            "sources": [{"tests": str(cube_file)}],
            "base": {"window_lenght": 300},
        }
        with pytest.raises(ValueError, match="unknown \\[base\\] config keys"):
            CampaignSpec.from_dict(data)

    def test_filter_rejects_code_execution(self, cube_file):
        spec = CampaignSpec(
            name="evil",
            sources=(TestSource(tests=str(cube_file)),),
            base=CompressionConfig(num_scan_chains=8),
            axes={"speedup": [3]},
            filter="().__class__.__base__.__subclasses__()",
        )
        with pytest.raises(ValueError, match="disallowed syntax"):
            spec.jobs()
        for expression in ("__import__('os')", "speedup.bit_length()"):
            bad = CampaignSpec.from_dict(
                dict(spec.to_dict(), filter=expression)
            )
            with pytest.raises(ValueError, match="disallowed syntax"):
                bad.jobs()

    def test_filter_unknown_name_is_an_error(self, cube_file):
        spec = CampaignSpec(
            name="typo-filter",
            sources=(TestSource(tests=str(cube_file)),),
            base=CompressionConfig(num_scan_chains=8),
            axes={"speedup": [3]},
            filter="speedo > 2",
        )
        with pytest.raises(ValueError, match="unknown name"):
            spec.jobs()

    def test_round_trip_dict(self, cube_file):
        spec = CampaignSpec(
            name="rt",
            sources=(TestSource(tests=str(cube_file)),),
            base=CompressionConfig(window_length=20, num_scan_chains=8),
            axes={"speedup": [3, 6]},
            filter="speedup > 1",
        )
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert [j.job_id for j in clone.jobs()] == [j.job_id for j in spec.jobs()]


# ----------------------------------------------------------------------
# Store and keys
# ----------------------------------------------------------------------
class TestStore:
    def test_summary_round_trip_through_store(self, tmp_path, tiny_config):
        test_set = _tiny_test_set()
        report = compress(test_set, tiny_config)
        key = result_key(test_set.fingerprint(), tiny_config)
        store = ResultStore(tmp_path / "store")
        store.put(
            StoredResult(
                key=key,
                job_id="unit",
                circuit=test_set.name,
                fingerprint=test_set.fingerprint(),
                config=tiny_config.to_dict(),
                status="ok",
                summary=report.summary(),
                elapsed_s=0.1,
            )
        )
        reloaded = ResultStore(tmp_path / "store")
        assert len(reloaded) == 1
        record = reloaded.get(key)
        assert record.ok
        assert record.summary == report.summary()
        assert reloaded.rows() == [report.summary()]
        assert reloaded.completed(key)

    def test_last_record_wins(self, tmp_path, tiny_config):
        store = ResultStore(tmp_path)
        base = dict(
            key="k1", job_id="j", circuit="c", fingerprint="f",
            config=tiny_config.to_dict(),
        )
        store.put(StoredResult(status="error", error="boom", **base))
        assert not store.completed("k1")
        store.put(StoredResult(status="ok", summary={"circuit": "c"}, **base))
        assert store.completed("k1")
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("k1").ok

    def test_corrupt_interior_line_raises(self, tmp_path):
        """A bad line *followed by an intact record* is real corruption --
        appends cannot damage earlier lines -- and must fail loudly."""
        (tmp_path / "results.jsonl").write_text(
            "{not json}\n"
            '{"key": "k1", "job_id": "j", "circuit": "c", '
            '"fingerprint": "f", "config": {}, "status": "ok"}\n'
        )
        with pytest.raises(ValueError, match="corrupt result store"):
            ResultStore(tmp_path)

    def test_torn_trailing_line_tolerated_and_resumable(self, tmp_path, tiny_config):
        """A crash mid-append leaves a partial final line; the store must
        load the intact records, warn, and accept new appends cleanly."""
        store = ResultStore(tmp_path)
        base = dict(
            job_id="j", circuit="c", fingerprint="f",
            config=tiny_config.to_dict(), status="ok",
            summary={"circuit": "c"},
        )
        store.put(StoredResult(key="k1", **base))
        store.put(StoredResult(key="k2", **base))
        store.close()
        path = tmp_path / "results.jsonl"
        intact = path.read_text()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "k3", "job_id": "j", "circ')  # torn append
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            reloaded = ResultStore(tmp_path)
        assert len(reloaded) == 2
        assert reloaded.completed("k1") and reloaded.completed("k2")
        # The torn fragment was truncated away, so resuming appends starts
        # on a clean line boundary and survives another reload.
        assert path.read_text() == intact
        reloaded.put(StoredResult(key="k3", **base))
        final = ResultStore(tmp_path)
        assert len(final) == 3
        assert final.completed("k3")

    def test_unterminated_but_complete_final_record_is_kept(self, tmp_path, tiny_config):
        """A crash between the record write and the newline write leaves a
        complete record with no trailing newline: keep it, restore the
        newline, and make sure the next append starts a fresh line."""
        store = ResultStore(tmp_path)
        base = dict(
            job_id="j", circuit="c", fingerprint="f",
            config=tiny_config.to_dict(), status="ok", summary={},
        )
        store.put(StoredResult(key="k1", **base))
        store.close()
        path = tmp_path / "results.jsonl"
        path.write_bytes(path.read_bytes().rstrip(b"\n"))
        reloaded = ResultStore(tmp_path)
        assert reloaded.completed("k1")
        assert path.read_bytes().endswith(b"\n")
        reloaded.put(StoredResult(key="k2", **base))
        final = ResultStore(tmp_path)
        assert len(final) == 2
        assert final.completed("k1") and final.completed("k2")

    def test_interior_corruption_still_raises(self, tmp_path, tiny_config):
        store = ResultStore(tmp_path)
        store.put(StoredResult(
            key="k1", job_id="j", circuit="c", fingerprint="f",
            config=tiny_config.to_dict(), status="ok", summary={},
        ))
        path = tmp_path / "results.jsonl"
        with path.open("a", encoding="utf-8") as handle:
            handle.write("{torn mid-file}\n")  # complete line, bad JSON
            handle.write(
                '{"key": "k2", "job_id": "j", "circuit": "c", '
                '"fingerprint": "f", "config": {}, "status": "ok"}\n'
            )
        with pytest.raises(ValueError, match="corrupt result store"):
            ResultStore(tmp_path)

    def test_corrupt_tail_spanning_records_is_repaired(self, tmp_path, tiny_config):
        """Crash damage can mangle *several* trailing lines (torn page
        writeback); the whole corrupt suffix is dropped and truncated so
        resuming appends start on a clean boundary."""
        store = ResultStore(tmp_path)
        base = dict(
            job_id="j", circuit="c", fingerprint="f",
            config=tiny_config.to_dict(), status="ok", summary={},
        )
        for key in ("k1", "k2"):
            store.put(StoredResult(key=key, **base))
        store.close()
        path = tmp_path / "results.jsonl"
        intact = path.read_text()
        with path.open("a", encoding="utf-8") as handle:
            handle.write("{bad json}\n")
            handle.write('{"key": "k3", "job_id": "truncat')
        with pytest.warns(RuntimeWarning, match="2 torn trailing line"):
            reloaded = ResultStore(tmp_path)
        assert {r.key for r in reloaded.records()} == {"k1", "k2"}
        assert path.read_text() == intact
        reloaded.put(StoredResult(key="k3", **base))
        reloaded.close()
        assert len(ResultStore(tmp_path)) == 3

    def test_read_only_store_never_repairs_on_disk(self, tmp_path, tiny_config):
        store = ResultStore(tmp_path)
        store.put(StoredResult(
            key="k1", job_id="j", circuit="c", fingerprint="f",
            config=tiny_config.to_dict(), status="ok", summary={},
        ))
        store.close()
        path = tmp_path / "results.jsonl"
        damaged = path.read_text() + '{"key": "k2", "torn'
        path.write_text(damaged)
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            reader = ResultStore(tmp_path, read_only=True)
        assert {r.key for r in reader.records()} == {"k1"}
        assert path.read_text() == damaged  # untouched on disk
        with pytest.raises(RuntimeError, match="read-only"):
            reader.put(StoredResult(
                key="k3", job_id="j", circuit="c", fingerprint="f",
                config=tiny_config.to_dict(), status="ok", summary={},
            ))

    def test_second_writer_is_refused_with_holder_pid(self, tmp_path, tiny_config):
        import os as os_mod

        from repro.campaign.store import StoreLockedError

        base = dict(
            job_id="j", circuit="c", fingerprint="f",
            config=tiny_config.to_dict(), status="ok", summary={},
        )
        writer = ResultStore(tmp_path)
        writer.put(StoredResult(key="k1", **base))
        # Readers are always fine against a live writer.
        reader = ResultStore(tmp_path, read_only=True)
        assert reader.completed("k1")
        assert reader.writer_pid() == os_mod.getpid()
        # A second writer fails fast, naming the holder.
        second = ResultStore(tmp_path)
        with pytest.raises(StoreLockedError, match=str(os_mod.getpid())):
            second.put(StoredResult(key="k2", **base))
        writer.close()
        # Once the holder releases, the second writer proceeds.
        second.put(StoredResult(key="k2", **base))
        second.close()
        assert len(ResultStore(tmp_path)) == 2

    def test_stale_lock_from_dead_pid_is_taken_over(self, tmp_path, tiny_config):
        """An flock dies with its holder, so a lock file left by a crashed
        writer must not block -- but the takeover is surfaced."""
        from repro.campaign.store import LOCK_FILENAME

        # A pid that cannot be running: fork a child that exits at once.
        import os as os_mod

        child = os_mod.fork()
        if child == 0:
            os_mod._exit(0)
        os_mod.waitpid(child, 0)
        (tmp_path / LOCK_FILENAME).write_text(f"{child}\n")
        store = ResultStore(tmp_path)
        with pytest.warns(RuntimeWarning, match=f"dead.*{child}"):
            store.put(StoredResult(
                key="k1", job_id="j", circuit="c", fingerprint="f",
                config=tiny_config.to_dict(), status="ok", summary={},
            ))
        store.close()
        assert ResultStore(tmp_path).completed("k1")

    def test_stage_timings_and_cache_stats_round_trip(self, tmp_path, tiny_config):
        store = ResultStore(tmp_path)
        store.put(
            StoredResult(
                key="k1", job_id="j", circuit="c", fingerprint="f",
                config=tiny_config.to_dict(), status="ok",
                summary={"circuit": "c"}, elapsed_s=1.5,
                stage_timings={"encode": 1.2, "reduce": 0.3},
                cache_stats={"encoding_hits": 1, "substrate_misses": 1},
            )
        )
        record = ResultStore(tmp_path).get("k1")
        assert record.stage_timings == {"encode": 1.2, "reduce": 0.3}
        assert record.cache_stats == {"encoding_hits": 1, "substrate_misses": 1}
        assert record.elapsed_s == 1.5

    def test_pre_staged_records_stay_loadable(self, tmp_path, tiny_config):
        """Records written before the staged runner lack the new fields."""
        import json as json_mod

        old = {
            "key": "old", "job_id": "j", "circuit": "c", "fingerprint": "f",
            "config": tiny_config.to_dict(), "status": "ok",
            "summary": {"circuit": "c"}, "elapsed_s": 2.0,
        }
        (tmp_path / "results.jsonl").write_text(json_mod.dumps(old) + "\n")
        record = ResultStore(tmp_path).get("old")
        assert record.ok
        assert record.stage_timings is None
        assert record.cache_stats is None
        assert record.elapsed_s == 2.0

    def test_key_depends_on_config_and_fingerprint(self, tiny_config):
        other_config = tiny_config.with_updates(speedup=12)
        assert result_key("f1", tiny_config) != result_key("f1", other_config)
        assert result_key("f1", tiny_config) != result_key("f2", tiny_config)
        assert result_key("f1", tiny_config) == result_key("f1", tiny_config)

    def test_cache_key_stable_across_processes(self, tiny_config):
        """Keys must not depend on PYTHONHASHSEED or process identity."""
        test_set = _tiny_test_set()
        script = (
            "from repro.config import CompressionConfig\n"
            "from repro.campaign.store import result_key\n"
            "from repro.testdata.profiles import custom_profile\n"
            "from repro.testdata.synthetic import generate_test_set\n"
            f"config = CompressionConfig.from_dict({tiny_config.to_dict()!r})\n"
            "profile = custom_profile('camp_core', scan_cells=64, num_cubes=20,\n"
            "    max_specified=8, mean_specified=4.0, scan_chains=8, lfsr_size=16)\n"
            "test_set = generate_test_set(profile, seed=7)\n"
            "print(config.cache_key())\n"
            "print(test_set.fingerprint())\n"
            "print(result_key(test_set.fingerprint(), config))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        lines = {}
        for hash_seed in ("1", "2"):
            env["PYTHONHASHSEED"] = hash_seed
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            lines[hash_seed] = proc.stdout.splitlines()
        assert lines["1"] == lines["2"]
        assert lines["1"][0] == tiny_config.cache_key()
        assert lines["1"][1] == test_set.fingerprint()
        assert lines["1"][2] == result_key(test_set.fingerprint(), tiny_config)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def _small_two_profile_spec(scale=0.03):
    return CampaignSpec(
        name="two-profiles",
        sources=(
            TestSource(profile="s13207", scale=scale),
            TestSource(profile="s9234", scale=scale),
        ),
        base=CompressionConfig(window_length=30),
        axes={"speedup": [3, 6, 12], "segment_size": [5, 10]},
    )


class TestRunner:
    def test_inline_run_and_resume_skips_all_jobs(self, tmp_path, cube_file):
        spec = CampaignSpec(
            name="resume",
            sources=(TestSource(tests=str(cube_file)),),
            base=CompressionConfig(window_length=20, num_scan_chains=8, lfsr_size=16),
            axes={"speedup": [3, 6], "segment_size": [4, 10]},
        )
        store = ResultStore(tmp_path / "store")
        first = CampaignRunner(spec, store, jobs=1).run()
        assert first.num_jobs == 4
        assert first.num_computed == 4
        assert first.num_failed == 0
        assert not first.all_cached
        stored_lines = store.path.read_text().count("\n")
        assert stored_lines == 4

        second = CampaignRunner(spec, store, jobs=1).run()
        assert second.all_cached
        assert second.num_computed == 0
        assert second.num_cached == 4
        # zero recomputation: nothing new was appended to the store
        assert store.path.read_text().count("\n") == stored_lines
        # cached outcomes still carry the stored summaries, in job order
        assert second.rows() == first.rows()

    def test_resume_disabled_recomputes(self, tmp_path, cube_file):
        spec = CampaignSpec(
            name="no-resume",
            sources=(TestSource(tests=str(cube_file)),),
            base=CompressionConfig(window_length=20, num_scan_chains=8, lfsr_size=16),
            axes={"speedup": [3]},
        )
        store = ResultStore(tmp_path)
        CampaignRunner(spec, store, jobs=1).run()
        rerun = CampaignRunner(spec, store, jobs=1, resume=False).run()
        assert rerun.num_computed == 1
        assert rerun.num_cached == 0

    def test_two_worker_end_to_end_two_profiles(self, tmp_path):
        spec = _small_two_profile_spec()
        store = ResultStore(tmp_path / "store")
        result = CampaignRunner(spec, store, jobs=2).run()
        assert result.num_jobs == 12
        assert result.num_computed == 12
        assert result.num_failed == 0
        circuits = {row["circuit"] for row in result.rows()}
        assert circuits == {"s13207@0.03", "s9234@0.03"}
        # every job's summary landed in the store
        assert len(store.rows()) == 12
        # the profile's LFSR size was injected into each job config
        assert {row["lfsr_size"] for row in result.rows()} == {24, 44}

    def test_acceptance_grid_jobs4_then_full_cache_hits(self, tmp_path):
        """Acceptance: >=12 jobs over >=2 profiles with --jobs 4, then a
        resumed invocation reports every job as a cache hit."""
        spec = _small_two_profile_spec()
        assert spec.num_jobs >= 12
        store = ResultStore(tmp_path / "store")
        first = CampaignRunner(spec, store, jobs=4).run()
        assert first.num_failed == 0
        assert len(store.rows()) == spec.num_jobs

        resumed = CampaignRunner(spec, store, jobs=4).run()
        assert resumed.all_cached
        assert resumed.num_cached == spec.num_jobs
        assert resumed.num_computed == 0
        assert all(outcome.status == "cached" for outcome in resumed.outcomes)

    def test_errors_are_captured_not_fatal(self, tmp_path, cube_file):
        # lfsr_size=2 cannot encode 8-bit cubes: every job must fail cleanly.
        spec = CampaignSpec(
            name="failing",
            sources=(TestSource(tests=str(cube_file)),),
            base=CompressionConfig(
                window_length=20, num_scan_chains=8, lfsr_size=2,
                max_phase_retries=0,
            ),
            axes={"speedup": [3, 6]},
        )
        store = ResultStore(tmp_path)
        result = CampaignRunner(spec, store, jobs=1).run()
        assert result.num_failed == 2
        assert result.num_computed == 0
        for outcome in result.failures():
            assert outcome.status == "error"
            assert "Traceback" in outcome.error and "Error" in outcome.error
        # failures are recorded but not treated as resumable completions
        retry = CampaignRunner(spec, store, jobs=1).run()
        assert retry.num_cached == 0
        assert retry.num_failed == 2

    def test_progress_and_store_are_incremental(self, tmp_path, cube_file):
        """Each outcome is reported and persisted as its job finishes."""
        spec = CampaignSpec(
            name="incremental",
            sources=(TestSource(tests=str(cube_file)),),
            base=CompressionConfig(window_length=20, num_scan_chains=8, lfsr_size=16),
            axes={"speedup": [3, 6]},
        )
        store = ResultStore(tmp_path)
        seen = []

        def watch(outcome):
            # by the time an outcome is reported, it is already on disk
            seen.append(
                (outcome.job.job_id, store.path.read_text().count("\n"))
            )

        CampaignRunner(spec, store, jobs=1).run(progress=watch)
        assert [lines for _, lines in seen] == [1, 2]

        seen.clear()
        CampaignRunner(spec, store, jobs=1).run(progress=watch)
        assert [lines for _, lines in seen] == [2, 2]  # cached: nothing appended

    def test_colliding_job_labels_keep_both_outcomes(self, tmp_path, cube_file):
        # two cube files with the same stem in different directories share
        # the label "camp_core", hence identical job ids
        other_dir = cube_file.parent / "other"
        other_dir.mkdir()
        clash = other_dir / cube_file.name
        clash.write_text(_tiny_test_set(seed=11).to_text())
        spec = CampaignSpec(
            name="clash",
            sources=(
                TestSource(tests=str(cube_file)),
                TestSource(tests=str(clash)),
            ),
            base=CompressionConfig(window_length=20, num_scan_chains=8),
            axes={"speedup": [3]},
        )
        jobs = spec.jobs()
        assert len({job.job_id for job in jobs}) == 1  # labels do collide
        result = CampaignRunner(spec, ResultStore(tmp_path), jobs=1).run()
        assert result.num_jobs == 2
        assert result.num_computed == 2  # neither outcome was overwritten
        assert len({outcome.key for outcome in result.outcomes}) == 2

    @pytest.mark.skipif(
        not hasattr(os, "fork"), reason="needs fork to patch the worker"
    )
    def test_hung_job_keeps_streamed_results(self, tmp_path, cube_file, monkeypatch):
        """A genuinely hung job loses only itself.

        Results are streamed per job, so the completed (S, k) points of the
        hung job's own group are already stored when the parent's
        inactivity window fires -- previously the whole group was
        discarded on the parent's hard timeout.
        """
        import time as time_mod

        import repro.campaign.runner as runner_mod

        real_compress = runner_mod.compress

        def hanging_compress(test_set, config, **kwargs):
            if config.speedup == 24:
                time_mod.sleep(60)  # a genuine hang (parent terminates us)
            return real_compress(test_set, config, **kwargs)

        monkeypatch.setattr(runner_mod, "compress", hanging_compress)
        spec = CampaignSpec(
            name="hang",
            sources=(TestSource(tests=str(cube_file)),),
            base=CompressionConfig(window_length=20, num_scan_chains=8, lfsr_size=16),
            axes={"speedup": [3, 6, 12, 24]},
        )
        store = ResultStore(tmp_path)
        # 2 workers split the single encode group into [3, 6] and [12, 24]:
        # the hang sits behind a completed job on its own worker.
        result = CampaignRunner(spec, store, jobs=2, timeout=1.0).run()
        statuses = {
            outcome.job.config.speedup: outcome.status
            for outcome in result.outcomes
        }
        assert statuses[3] == statuses[6] == statuses[12] == "ok"
        assert statuses[24] == "timeout"
        for outcome in result.outcomes:
            stored = store.completed(outcome.key)
            assert stored == (outcome.status == "ok")

    def test_runner_rejects_bad_worker_count(self, tmp_path, cube_file):
        spec = CampaignSpec(
            name="bad", sources=(TestSource(tests=str(cube_file)),),
        )
        with pytest.raises(ValueError):
            CampaignRunner(spec, ResultStore(tmp_path), jobs=0)
        with pytest.raises(ValueError):
            CampaignRunner(spec, ResultStore(tmp_path / "b"), max_retries=-1)

    @pytest.mark.skipif(
        not hasattr(os, "fork"), reason="needs fork to patch the worker"
    )
    def test_sigkilled_worker_is_respawned_and_loses_nothing(
        self, tmp_path, cube_file, monkeypatch
    ):
        """A worker SIGKILLed mid-job is detected by exit code; its chunk
        is requeued on a fresh worker and the campaign completes with
        every job ok, exactly one record per job."""
        import signal as signal_mod

        import repro.campaign.runner as runner_mod

        real_compress = runner_mod.compress
        marker = tmp_path / "killed-once"

        def killing_compress(test_set, config, **kwargs):
            if config.speedup == 6:
                try:
                    marker.touch(exist_ok=False)
                except FileExistsError:
                    pass  # retry of the blamed job: run it for real now
                else:
                    os.kill(os.getpid(), signal_mod.SIGKILL)
            return real_compress(test_set, config, **kwargs)

        monkeypatch.setattr(runner_mod, "compress", killing_compress)
        spec = CampaignSpec(
            name="crashy",
            sources=(TestSource(tests=str(cube_file)),),
            base=CompressionConfig(window_length=20, num_scan_chains=8, lfsr_size=16),
            axes={"speedup": [3, 6, 12, 24]},
        )
        store = ResultStore(tmp_path / "store")
        result = CampaignRunner(
            spec, store, jobs=2, max_retries=3, retry_backoff_s=0.05
        ).run()
        store.close()
        assert marker.exists()  # the kill really happened
        assert result.num_computed == 4
        assert result.num_failed == 0
        assert result.total_retries >= 1
        by_speedup = {
            outcome.job.config.speedup: outcome for outcome in result.outcomes
        }
        assert by_speedup[6].retried >= 1  # the blamed job knows it crashed
        assert not by_speedup[6].exhausted
        # one store line per job: nothing lost, nothing duplicated
        lines = [
            json.loads(line)
            for line in store.path.read_text().splitlines()
            if line.strip()
        ]
        assert sorted(line["key"] for line in lines) == sorted(
            outcome.key for outcome in result.outcomes
        )
        crashed_record = next(
            line for line in lines
            if line["key"] == by_speedup[6].key
        )
        assert crashed_record["retried"] >= 1
        assert crashed_record["exhausted"] is False

    @pytest.mark.skipif(
        not hasattr(os, "fork"), reason="needs fork to patch the worker"
    )
    def test_poison_job_exhausts_without_dragging_down_its_chunk(
        self, tmp_path, cube_file, monkeypatch
    ):
        """A job that kills its worker on every attempt is given up on
        after max_retries blames -- recorded as error/exhausted with text
        distinguishing it from the never-attempted jobs, which are
        requeued and still complete ok."""
        import signal as signal_mod

        import repro.campaign.runner as runner_mod

        real_compress = runner_mod.compress

        def poison_compress(test_set, config, **kwargs):
            if config.speedup == 3:  # first job of the chunk, every time
                os.kill(os.getpid(), signal_mod.SIGKILL)
            return real_compress(test_set, config, **kwargs)

        monkeypatch.setattr(runner_mod, "compress", poison_compress)
        spec = CampaignSpec(
            name="poison",
            sources=(TestSource(tests=str(cube_file)),),
            base=CompressionConfig(window_length=20, num_scan_chains=8, lfsr_size=16),
            axes={"speedup": [3, 6, 12, 24]},
        )
        store = ResultStore(tmp_path / "store")
        # 2 workers split the group into [3, 6] and [12, 24]: the poison
        # job shares its chunk with speedup-6, which must survive.
        result = CampaignRunner(
            spec, store, jobs=2, max_retries=1, retry_backoff_s=0.05
        ).run()
        store.close()
        by_speedup = {
            outcome.job.config.speedup: outcome for outcome in result.outcomes
        }
        poisoned = by_speedup[3]
        assert poisoned.status == "error"
        assert poisoned.exhausted
        assert poisoned.retried == 1  # blamed twice, max_retries=1
        assert "while running this job" in poisoned.error
        assert "never attempted" in poisoned.error  # the survivors were not failed
        for speedup in (6, 12, 24):
            assert by_speedup[speedup].status == "ok"
            assert not by_speedup[speedup].exhausted
        # the exhausted record is persisted with its accounting
        record = store.get(poisoned.key) or ResultStore(
            tmp_path / "store", read_only=True
        ).get(poisoned.key)
        assert record.status == "error"
        assert record.exhausted is True


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
def _rows():
    return [
        {"circuit": "a", "speedup": 3, "segment_size": 4,
         "improvement_pct": 60.0, "state_skip_tsl": 400, "window_length": 30},
        {"circuit": "a", "speedup": 6, "segment_size": 4,
         "improvement_pct": 70.0, "state_skip_tsl": 300, "window_length": 30},
        {"circuit": "b", "speedup": 3, "segment_size": 4,
         "improvement_pct": 50.0, "state_skip_tsl": 500, "window_length": 30},
    ]


class TestReport:
    def test_improvement_grids(self):
        grids = improvement_grids(_rows())
        assert grids["a"][3][4] == 60.0
        assert grids["a"][6][4] == 70.0
        assert grids["b"][3][4] == 50.0

    def test_grid_collisions_keep_best(self):
        rows = _rows() + [
            {"circuit": "a", "speedup": 3, "segment_size": 4,
             "improvement_pct": 65.0, "state_skip_tsl": 350},
        ]
        assert improvement_grids(rows)["a"][3][4] == 65.0

    def test_best_config_rows_minimise_tsl(self):
        best = best_config_rows(_rows())
        assert [row["circuit"] for row in best] == ["a", "b"]
        assert best[0]["state_skip_tsl"] == 300

    def test_campaign_report_text(self):
        text = campaign_report(_rows(), title="unit")
        assert "TSL improvement (%) for a (unit)" in text
        assert "Best configuration per circuit" in text
        assert campaign_report([], title="unit").startswith("campaign unit")

    def test_best_config_table_renders(self):
        text = best_config_table(_rows(), columns=["circuit", "state_skip_tsl"])
        assert "circuit" in text
        assert "300" in text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCampaignCommand:
    def test_cli_campaign_runs_and_resumes(self, tmp_path, cube_file, capsys):
        argv = [
            "campaign",
            "--tests", str(cube_file),
            "--chains", "8",
            "--windows", "20",
            "--segments", "4",
            "--speedups", "3", "6",
            "--jobs", "1",
            "--store", str(tmp_path / "store"),
            "--report",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 computed, 0 cached" in out
        assert "TSL improvement" in out
        assert "Best configuration per circuit" in out

        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 computed, 2 cached" in out

    def test_cli_campaign_requires_sources(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--windows", "20"])

    def test_cli_campaign_ctrl_c_exits_130_with_persisted_summary(
        self, tmp_path, cube_file, monkeypatch, capsys
    ):
        """Ctrl-C mid-campaign: the store keeps the streamed results, the
        lock is released, and the CLI reports what survived + exits 130."""
        import repro.campaign.runner as runner_mod

        real_compress = runner_mod.compress
        calls = []

        def interrupted_compress(test_set, config, **kwargs):
            if calls:  # first job completes, the second is interrupted
                raise KeyboardInterrupt
            calls.append(config.speedup)
            return real_compress(test_set, config, **kwargs)

        monkeypatch.setattr(runner_mod, "compress", interrupted_compress)
        store_dir = tmp_path / "store"
        code = main([
            "campaign",
            "--tests", str(cube_file),
            "--chains", "8",
            "--windows", "20",
            "--segments", "4",
            "--speedups", "3", "6",
            "--jobs", "1",
            "--store", str(store_dir),
        ])
        captured = capsys.readouterr()
        assert code == 130
        assert "interrupted: 1 result(s) persisted" in captured.err
        assert "--resume" in captured.err
        # the persisted job resumes as cached, the interrupted one reruns
        monkeypatch.setattr(runner_mod, "compress", real_compress)
        reopened = ResultStore(store_dir)  # the lock was released cleanly
        assert len(reopened) == 1
        reopened.close()

    def test_cli_campaign_refuses_locked_store(
        self, tmp_path, cube_file, capsys
    ):
        locked = ResultStore(tmp_path / "store")
        locked.lock()
        with pytest.raises(SystemExit, match="already being written"):
            main([
                "campaign",
                "--tests", str(cube_file),
                "--chains", "8",
                "--windows", "20",
                "--segments", "4",
                "--speedups", "3",
                "--store", str(tmp_path / "store"),
            ])
        locked.close()

    def test_cli_campaign_spec_file(self, tmp_path, cube_file, capsys):
        data = {
            "name": "cli-spec",
            "sources": [{"tests": str(cube_file)}],
            "base": {"window_length": 20, "num_scan_chains": 8},
            "axes": {"speedup": [3]},
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(data))
        code = main(
            ["campaign", "--spec", str(spec_path), "--store", str(tmp_path / "s")]
        )
        assert code == 0
        assert "campaign cli-spec: 1 jobs" in capsys.readouterr().out
