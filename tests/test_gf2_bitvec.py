"""Unit and property tests for :mod:`repro.gf2.bitvec`."""

import pytest
from hypothesis import given, strategies as st

from repro.gf2.bitvec import BitVector, parity


class TestConstruction:
    def test_from_bits_roundtrip(self):
        bits = [1, 0, 1, 1, 0, 0, 1]
        vec = BitVector.from_bits(bits)
        assert vec.to_bits() == bits
        assert vec.length == 7

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(ValueError):
            BitVector.from_bits([0, 2, 1])

    def test_from_indices(self):
        vec = BitVector.from_indices(8, [0, 3, 7])
        assert vec.to_bits() == [1, 0, 0, 1, 0, 0, 0, 1]

    def test_from_indices_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector.from_indices(4, [4])

    def test_ones(self):
        assert BitVector.ones(5).to_bits() == [1] * 5

    def test_unit(self):
        vec = BitVector.unit(6, 2)
        assert vec.to_bits() == [0, 0, 1, 0, 0, 0]

    def test_unit_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector.unit(3, 3)

    def test_value_masked_to_length(self):
        vec = BitVector(3, 0b11111)
        assert vec.value == 0b111

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            BitVector(-1)

    def test_zero_length_vector(self):
        vec = BitVector(0)
        assert vec.length == 0
        assert vec.is_zero()
        assert vec.to_bits() == []

    def test_from_string_roundtrip(self):
        vec = BitVector.from_string("10110")
        assert vec.to_string() == "10110"

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            BitVector.from_string("10a1")


class TestAlgebra:
    def test_xor_is_addition(self):
        a = BitVector.from_string("1100")
        b = BitVector.from_string("1010")
        assert (a ^ b).to_string() == "0110"
        assert (a + b) == (a ^ b)

    def test_xor_length_mismatch(self):
        with pytest.raises(ValueError):
            BitVector(3) ^ BitVector(4)

    def test_and(self):
        a = BitVector.from_string("1100")
        b = BitVector.from_string("1010")
        assert (a & b).to_string() == "1000"

    def test_dot_product(self):
        a = BitVector.from_string("1101")
        b = BitVector.from_string("1011")
        # overlap at positions 0 and 3 -> parity 0
        assert a.dot(b) == 0
        c = BitVector.from_string("1000")
        assert a.dot(c) == 1

    def test_weight_and_support(self):
        vec = BitVector.from_string("010110")
        assert vec.weight() == 3
        assert vec.support() == [1, 3, 4]

    def test_set_bit(self):
        vec = BitVector.from_string("0000")
        assert vec.set(2, 1).to_string() == "0010"
        assert vec.set(2, 1).set(2, 0).to_string() == "0000"

    def test_set_rejects_bad_bit(self):
        with pytest.raises(ValueError):
            BitVector(4).set(0, 2)

    def test_concat(self):
        a = BitVector.from_string("101")
        b = BitVector.from_string("01")
        assert a.concat(b).to_string() == "10101"

    def test_slice(self):
        vec = BitVector.from_string("101101")
        assert vec.slice(1, 4).to_string() == "011"

    def test_slice_bounds(self):
        with pytest.raises(IndexError):
            BitVector(4).slice(2, 5)

    def test_getitem_and_iter(self):
        vec = BitVector.from_string("1010")
        assert vec[0] == 1
        assert vec[1] == 0
        assert list(vec) == [1, 0, 1, 0]
        with pytest.raises(IndexError):
            _ = vec[4]

    def test_equality_and_hash(self):
        a = BitVector.from_string("101")
        b = BitVector.from_string("101")
        c = BitVector.from_string("1010")
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestParityHelper:
    def test_parity(self):
        assert parity(0) == 0
        assert parity(0b1011) == 1
        assert parity(0b1111) == 0


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=96)


@given(bit_lists)
def test_roundtrip_property(bits):
    assert BitVector.from_bits(bits).to_bits() == bits


@given(bit_lists)
def test_xor_self_is_zero(bits):
    vec = BitVector.from_bits(bits)
    assert (vec ^ vec).is_zero()


@given(bit_lists, bit_lists)
def test_xor_commutative(a_bits, b_bits):
    n = min(len(a_bits), len(b_bits))
    a = BitVector.from_bits(a_bits[:n])
    b = BitVector.from_bits(b_bits[:n])
    assert a ^ b == b ^ a


@given(bit_lists)
def test_weight_matches_sum(bits):
    assert BitVector.from_bits(bits).weight() == sum(bits)


@given(bit_lists, bit_lists)
def test_dot_symmetric(a_bits, b_bits):
    n = min(len(a_bits), len(b_bits))
    a = BitVector.from_bits(a_bits[:n])
    b = BitVector.from_bits(b_bits[:n])
    assert a.dot(b) == b.dot(a)


@given(bit_lists)
def test_support_indexes_ones(bits):
    vec = BitVector.from_bits(bits)
    support = vec.support()
    assert all(bits[i] == 1 for i in support)
    assert len(support) == sum(bits)
