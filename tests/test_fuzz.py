"""Tests of the fuzzing subsystem: generators, oracle, shrinker, runner, CLI.

The differential checks themselves are exercised twice: once as-is
(they must all pass on a healthy tree) and once against a *planted*
engine mutation (they must catch it, shrink it and write a repro).
"""

import json

import pytest

from repro.cli import main
from repro.fuzz import (
    CHECKS,
    Check,
    FuzzCase,
    chaos_check_names,
    differential_check_names,
    load_case,
    replay_case,
    resolve_checks,
    run_case,
    run_fuzz,
    shrink_case,
    write_repro,
)
from repro.fuzz.generators import case_netlist, case_test_set, draw_params
from repro.fuzz.shrink import ShrinkResult


# ----------------------------------------------------------------------
# Registry and generators
# ----------------------------------------------------------------------
class TestRegistry:
    def test_every_engine_pair_has_a_check(self):
        assert set(differential_check_names()) == {
            "ternary-sim",
            "event-propagate",
            "podem-events",
            "podem-packed",
            "sim-compiled",
            "faultsim-compiled",
            "drop-batch",
            "solver-batch",
            "embedding",
            "decompressor",
        }
        assert set(chaos_check_names()) == {
            "chaos-worker-kill",
            "chaos-store-tail",
        }

    def test_resolve_checks_validates_names(self):
        assert resolve_checks(["ternary-sim", "embedding"]) == [
            "ternary-sim",
            "embedding",
        ]
        # default selection excludes chaos checks
        assert resolve_checks() == differential_check_names()
        assert "chaos-worker-kill" in resolve_checks(include_chaos=True)
        with pytest.raises(ValueError, match="unknown fuzz check"):
            resolve_checks(["no-such-check"])

    def test_draws_stay_inside_the_space_and_are_deterministic(self):
        check = CHECKS["ternary-sim"]
        a = check.draw(__import__("random").Random(5))
        b = check.draw(__import__("random").Random(5))
        assert a == b
        for name, value in a.params.items():
            low, high, floor = check.space[name]
            assert low <= value <= high
            assert floor <= low


class TestGenerators:
    def test_case_artifacts_are_reproducible(self):
        case = FuzzCase(
            check="ternary-sim",
            seed=123,
            params={"num_inputs": 8, "num_gates": 30, "patterns": 4},
        )
        from repro.circuits.bench import write_bench

        assert write_bench(case_netlist(case)) == write_bench(case_netlist(case))

        ts_case = FuzzCase(
            check="solver-batch",
            seed=9,
            params={
                "num_cells": 32, "num_cubes": 8, "max_specified": 6,
                "chains": 4, "window": 20, "segment": 4, "speedup": 3,
            },
        )
        assert case_test_set(ts_case).to_text() == case_test_set(ts_case).to_text()

    def test_draw_params_order_independent_of_dict_order(self):
        import random as random_mod

        space_a = {"x": (1, 9, 1), "y": (10, 90, 10)}
        space_b = {"y": (10, 90, 10), "x": (1, 9, 1)}
        assert draw_params(random_mod.Random(3), space_a) == draw_params(
            random_mod.Random(3), space_b
        )

    def test_case_round_trips_through_dict(self):
        case = FuzzCase(check="embedding", seed=4, params={"num_cells": 24})
        assert FuzzCase.from_dict(case.to_dict()) == case


# ----------------------------------------------------------------------
# Differential checks on a healthy tree
# ----------------------------------------------------------------------
class TestChecksPassOnHead:
    @pytest.mark.parametrize("name", [
        "ternary-sim", "podem-events", "podem-packed", "drop-batch",
        "solver-batch", "embedding", "decompressor",
    ])
    def test_check_passes(self, name):
        import random as random_mod

        check = CHECKS[name]
        outcome = run_case(check, check.draw(random_mod.Random(0)))
        assert outcome.status == "ok", outcome.detail


class TestChaosChecks:
    """The chaos checks are the fuzz-side mirror of the campaign
    resilience tests: run each once end to end."""

    @pytest.mark.skipif(
        not __import__("os").name == "posix", reason="chaos checks fork"
    )
    def test_worker_kill_chaos_check_passes(self):
        import random as random_mod

        check = CHECKS["chaos-worker-kill"]
        outcome = run_case(check, check.draw(random_mod.Random(1)))
        assert outcome.status in ("ok", "skip"), outcome.detail

    def test_store_tail_chaos_check_passes(self):
        import random as random_mod

        check = CHECKS["chaos-store-tail"]
        for seed in range(3):
            outcome = run_case(check, check.draw(random_mod.Random(seed)))
            assert outcome.status == "ok", outcome.detail


# ----------------------------------------------------------------------
# Shrinker
# ----------------------------------------------------------------------
def _threshold_check(calls):
    """A synthetic check failing iff a >= 5 and b >= 3 (floor 1 each)."""

    def run(case):
        calls.append(dict(case.params))
        if case.params["a"] >= 5 and case.params["b"] >= 3:
            return f"fails at a={case.params['a']} b={case.params['b']}"
        return None

    return Check(
        name="synthetic",
        description="synthetic threshold check",
        space={"a": (1, 100, 1), "b": (1, 100, 1)},
        run=run,
    )


class TestShrinker:
    def test_shrinks_to_the_exact_failure_boundary(self):
        calls = []
        check = _threshold_check(calls)
        case = FuzzCase(check="synthetic", seed=0, params={"a": 77, "b": 41})
        shrunk = shrink_case(check, case, "fails at a=77 b=41")
        assert shrunk.case.params == {"a": 5, "b": 3}
        assert shrunk.detail == "fails at a=5 b=3"
        assert shrunk.reductions >= 2
        assert shrunk.attempts == len(calls)
        assert shrunk.attempts < 40  # binary search, not a linear walk

    def test_already_minimal_case_is_untouched(self):
        calls = []
        check = _threshold_check(calls)
        case = FuzzCase(check="synthetic", seed=0, params={"a": 5, "b": 3})
        shrunk = shrink_case(check, case, "fails at a=5 b=3")
        assert shrunk.case.params == {"a": 5, "b": 3}
        assert shrunk.reductions == 0

    def test_repro_round_trip(self, tmp_path):
        case = FuzzCase(
            check="ternary-sim",
            seed=42,
            params={"num_inputs": 6, "num_gates": 20, "patterns": 4},
        )
        shrunk = ShrinkResult(case=case, detail="boom", attempts=3, reductions=1)
        directory = write_repro(tmp_path, shrunk, original=case)
        payload = json.loads((directory / "case.json").read_text())
        assert payload["check"] == "ternary-sim"
        assert payload["detail"] == "boom"
        assert "--replay" in payload["replay"]
        # the failing netlist is materialised next to the case
        assert (directory / "netlist.bench").exists()
        loaded = load_case(directory)
        assert loaded == case
        assert load_case(directory / "case.json") == case


# ----------------------------------------------------------------------
# Planted-mutation detection (the acceptance criterion)
# ----------------------------------------------------------------------
class TestMutationDetection:
    def test_planted_sim_mutation_is_caught_shrunk_and_replayable(
        self, tmp_path, monkeypatch
    ):
        """Flip one output bit in the packed simulator for wide gates: the
        differential sweep must find it, shrink it and write a repro that
        still reproduces on replay."""
        from repro.circuits import simulator as simulator_mod

        real = simulator_mod.simulate_ternary

        def mutated(netlist, assignment, **kwargs):
            values = real(netlist, assignment, **kwargs)
            if len(netlist.inputs) > 4 and netlist.outputs:
                victim = netlist.outputs[0]
                if values.get(victim) == 0:
                    values = dict(values)
                    values[victim] = 1
            return values

        monkeypatch.setattr(simulator_mod, "simulate_ternary", mutated)
        report = run_fuzz(
            checks=["ternary-sim"],
            time_budget_s=30.0,
            seed=0,
            out_dir=tmp_path,
        )
        assert not report.ok
        assert len(report.mismatches) == 1
        mismatch = report.mismatches[0]
        assert mismatch.repro_path is not None
        assert (mismatch.repro_path / "case.json").exists()
        # shrinking reached the mutation boundary: 5 inputs is the
        # smallest circuit the planted bug can trigger on
        assert mismatch.shrunk.case.params["num_inputs"] == 5
        assert mismatch.shrunk.case.params["num_gates"] == 1
        # the stored case still reproduces while the mutation is planted
        outcome = replay_case(load_case(mismatch.repro_path))
        assert outcome.status == "mismatch"
        # ... and passes again once the mutation is reverted
        monkeypatch.setattr(simulator_mod, "simulate_ternary", real)
        outcome = replay_case(load_case(mismatch.repro_path))
        assert outcome.status == "ok"


# ----------------------------------------------------------------------
# Fuzz runner
# ----------------------------------------------------------------------
class TestRunFuzz:
    def test_first_round_always_covers_every_check(self):
        # a zero budget still runs one case per selected check
        report = run_fuzz(
            checks=["ternary-sim", "drop-batch"],
            time_budget_s=0.0,
            seed=1,
            shrink=False,
        )
        assert report.rounds >= 1
        assert report.per_check["ternary-sim"]["cases"] >= 1
        assert report.per_check["drop-batch"]["cases"] >= 1
        assert report.ok

    def test_failed_check_is_retired_not_repeated(self, tmp_path):
        always = Check(
            name="always-fails",
            description="test double",
            space={"n": (1, 4, 1)},
            run=lambda case: "always broken",
        )
        CHECKS[always.name] = always
        try:
            report = run_fuzz(
                checks=["always-fails", "ternary-sim"],
                time_budget_s=1.5,
                seed=2,
                out_dir=tmp_path,
                shrink=False,
            )
        finally:
            del CHECKS[always.name]
        assert len(report.mismatches) == 1
        # the broken check ran exactly once; the healthy one kept going
        assert report.per_check["always-fails"]["cases"] == 1
        assert report.per_check["ternary-sim"]["cases"] >= 1
        lines = "\n".join(report.summary_lines())
        assert "MISMATCH" in lines and "always-fails" in lines


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestFuzzCli:
    def test_fuzz_smoke_exits_zero(self, tmp_path, capsys):
        status = main([
            "fuzz", "--time-budget", "0", "--seed", "0",
            "--checks", "ternary-sim", "--out", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "0 mismatch(es)" in out
        assert "ternary-sim" in out

    def test_fuzz_unknown_check_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="unknown fuzz check"):
            main(["fuzz", "--checks", "bogus"])

    def test_replay_missing_case_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot load repro case"):
            main(["fuzz", "--replay", str(tmp_path / "nope")])

    def test_replay_roundtrip_via_cli(self, tmp_path, capsys):
        case = FuzzCase(
            check="ternary-sim",
            seed=3,
            params={"num_inputs": 6, "num_gates": 20, "patterns": 4},
        )
        shrunk = ShrinkResult(case=case, detail="d", attempts=1, reductions=0)
        directory = write_repro(tmp_path, shrunk, original=case)
        status = main(["fuzz", "--replay", str(directory)])
        out = capsys.readouterr().out
        assert status == 0  # healthy tree: the stored case passes
        assert "replay ternary-sim" in out
