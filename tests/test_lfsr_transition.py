"""Tests for transition matrices and symbolic LFSR simulation.

Includes an exact reproduction of the Fig. 2 example of the paper (both the
symbolic state table and the k = 2 State Skip relations).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gf2.bitvec import BitVector
from repro.gf2.matrix import identity
from repro.gf2.polynomial import GF2Polynomial
from repro.gf2.primitive import primitive_polynomial
from repro.lfsr.transition import (
    TransitionPowerCache,
    characteristic_order,
    expand_states,
    fibonacci_transition_matrix,
    galois_transition_matrix,
    output_sequence,
    paper_example_matrix,
    state_skip_expressions,
    symbolic_states,
    transition_power,
)


def bits(text):
    return BitVector.from_string(text)


class TestTransitionPowerCache:
    def test_matches_direct_matrix_power(self):
        matrix = paper_example_matrix()
        cache = TransitionPowerCache(matrix)
        for exponent in [0, 1, 2, 3, 7, 15, 64, 1000]:
            assert cache.power(exponent) == matrix.power(exponent)

    def test_shared_cache_returns_same_objects(self):
        matrix = paper_example_matrix()
        assert transition_power(matrix, 12) == matrix.power(12)
        assert transition_power(matrix, 12) is transition_power(matrix, 12)

    def test_power_zero_survives_lru_eviction(self):
        matrix = paper_example_matrix()
        cache = TransitionPowerCache(matrix)
        # Query more distinct exponents than the memo bound retains, then
        # power(0) must still be the identity (regression: the evicted
        # 0-entry used to fall through the ladder loop and return None).
        for exponent in range(2, cache._MAX_MEMOIZED_POWERS + 10):
            cache.power(exponent)
        assert cache.power(0) == identity(matrix.ncols)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            TransitionPowerCache(paper_example_matrix()).power(-1)


class TestPaperExample:
    """Fig. 2 of the paper: 4-bit LFSR, symbolic table and k = 2 skip."""

    def test_symbolic_state_table_matches_figure(self):
        # Figure's table: rows t0..t3, entries are linear expressions of
        # (a0, a1, a2, a3).  We encode each expression as the set of a-indices.
        A = paper_example_matrix()
        states = symbolic_states(A, 3)

        def cell_expr(t, cell):
            return set(states[t].row(cell).support())

        # t0: initial state
        assert cell_expr(0, 0) == {0}
        assert cell_expr(0, 1) == {1}
        assert cell_expr(0, 2) == {2}
        assert cell_expr(0, 3) == {3}
        # t1
        assert cell_expr(1, 0) == {3}
        assert cell_expr(1, 1) == {0, 3}
        assert cell_expr(1, 2) == {1}
        assert cell_expr(1, 3) == {2, 3}
        # t2
        assert cell_expr(2, 0) == {2, 3}
        assert cell_expr(2, 1) == {2}
        assert cell_expr(2, 2) == {0, 3}
        assert cell_expr(2, 3) == {1, 2, 3}
        # t3
        assert cell_expr(3, 0) == {1, 2, 3}
        assert cell_expr(3, 1) == {1}
        assert cell_expr(3, 2) == {2}
        assert cell_expr(3, 3) == {0, 1, 2}

    def test_state_skip_relations_for_k2(self):
        # The paper derives: c0(t+2) = c2 ^ c3, c1(t+2) = c2,
        # c2(t+2) = c0 ^ c3, c3(t+2) = c1 ^ c2 ^ c3.
        skip = state_skip_expressions(paper_example_matrix(), 2)
        assert set(skip.row(0).support()) == {2, 3}
        assert set(skip.row(1).support()) == {2}
        assert set(skip.row(2).support()) == {0, 3}
        assert set(skip.row(3).support()) == {1, 2, 3}

    def test_skip_mode_halves_the_sequence(self):
        # With initial state 1011 the skip-mode sequence visits every second
        # state of the normal-mode sequence.
        A = paper_example_matrix()
        seed = bits("1011")
        normal = expand_states(A, seed, 8)
        skip = expand_states(state_skip_expressions(A, 2), seed, 4)
        assert skip == normal[::2]


class TestConstructors:
    def test_fibonacci_structure(self):
        poly = GF2Polynomial.from_exponents([4, 1, 0])  # x^4 + x + 1
        A = fibonacci_transition_matrix(poly)
        # Shift part: c_i(t+1) = c_{i+1}(t)
        assert A.row(0).support() == [1]
        assert A.row(1).support() == [2]
        assert A.row(2).support() == [3]
        # Feedback: taps at x^1 and x^0 -> cells 1 and 0
        assert set(A.row(3).support()) == {0, 1}

    def test_galois_structure(self):
        poly = GF2Polynomial.from_exponents([4, 1, 0])
        A = galois_transition_matrix(poly)
        assert A.row(0).support() == [3]  # wrap-around
        assert set(A.row(1).support()) == {0, 3}  # tap at x^1
        assert A.row(2).support() == [1]
        assert A.row(3).support() == [2]

    def test_rejects_degree_below_two(self):
        with pytest.raises(ValueError):
            fibonacci_transition_matrix(GF2Polynomial.from_exponents([1, 0]))

    def test_rejects_missing_constant_term(self):
        with pytest.raises(ValueError):
            galois_transition_matrix(GF2Polynomial.from_exponents([4, 1]))

    def test_both_forms_share_characteristic_order(self):
        poly = primitive_polynomial(5)
        fib = fibonacci_transition_matrix(poly)
        gal = galois_transition_matrix(poly)
        assert characteristic_order(fib) == characteristic_order(gal) == 31

    def test_transition_matrices_are_invertible(self):
        poly = primitive_polynomial(8)
        assert fibonacci_transition_matrix(poly).is_invertible()
        assert galois_transition_matrix(poly).is_invertible()


class TestSymbolicAndSequences:
    def test_symbolic_states_start_with_identity(self):
        A = paper_example_matrix()
        states = symbolic_states(A, 5)
        assert states[0] == identity(4)
        assert states[3] == A.power(3)
        assert len(states) == 6

    def test_symbolic_states_validation(self):
        with pytest.raises(ValueError):
            symbolic_states(paper_example_matrix(), -1)

    def test_state_skip_expressions_k1_is_transition(self):
        A = paper_example_matrix()
        assert state_skip_expressions(A, 1) == A

    def test_state_skip_expressions_rejects_k0(self):
        with pytest.raises(ValueError):
            state_skip_expressions(paper_example_matrix(), 0)

    def test_output_sequence_matches_states(self):
        A = fibonacci_transition_matrix(primitive_polynomial(4))
        seed = bits("1000")
        seq = output_sequence(A, seed, 10, cell=0)
        states = expand_states(A, seed, 10)
        assert seq == [s[0] for s in states]

    def test_output_sequence_validation(self):
        A = paper_example_matrix()
        with pytest.raises(ValueError):
            output_sequence(A, bits("10"), 4)
        with pytest.raises(IndexError):
            output_sequence(A, bits("1000"), 4, cell=7)

    def test_expand_states_length_check(self):
        with pytest.raises(ValueError):
            expand_states(paper_example_matrix(), bits("10101"), 3)

    def test_characteristic_order_of_primitive_polynomials(self):
        for degree in (3, 4, 5, 6, 7):
            A = fibonacci_transition_matrix(primitive_polynomial(degree))
            assert characteristic_order(A) == (1 << degree) - 1

    def test_characteristic_order_limit(self):
        A = fibonacci_transition_matrix(primitive_polynomial(6))
        with pytest.raises(ValueError):
            characteristic_order(A, limit=5)


# ----------------------------------------------------------------------
# Property: the State Skip relations (equation (1)) hold for every i and
# every seed -- k skip-steps equal one jump by A^k from any state.
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=3, max_value=10),
    st.integers(min_value=2, max_value=16),
    st.integers(min_value=0, max_value=(1 << 10) - 1),
)
def test_state_skip_equivalence_property(degree, k, seed_value):
    poly = primitive_polynomial(degree)
    A = fibonacci_transition_matrix(poly)
    seed = BitVector(degree, seed_value)
    skip = state_skip_expressions(A, k)
    direct = skip.mul_vector(seed)
    stepped = seed
    for _ in range(k):
        stepped = A.mul_vector(stepped)
    assert direct == stepped


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=3, max_value=9), st.integers(min_value=2, max_value=12))
def test_skip_matrix_is_invertible(degree, k):
    A = fibonacci_transition_matrix(primitive_polynomial(degree))
    assert state_skip_expressions(A, k).is_invertible()
