"""Tests for the LFSR, StateSkipLFSR and PhaseShifter classes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gf2.bitvec import BitVector
from repro.gf2.primitive import primitive_polynomial
from repro.lfsr.lfsr import LFSR, LFSRMode
from repro.lfsr.phase_shifter import PhaseShifter
from repro.lfsr.state_skip import (
    StateSkipCircuit,
    StateSkipLFSR,
    skip_cost_sweep,
)
from repro.lfsr.transition import paper_example_matrix


def bits(text):
    return BitVector.from_string(text)


class TestLFSR:
    def test_requires_square_matrix(self):
        from repro.gf2.matrix import GF2Matrix

        with pytest.raises(ValueError):
            LFSR(GF2Matrix.from_rows([[1, 0, 1], [0, 1, 1]]))

    def test_requires_min_size(self):
        from repro.gf2.matrix import GF2Matrix

        with pytest.raises(ValueError):
            LFSR(GF2Matrix.from_rows([[1]]))

    def test_initial_state_defaults_to_zero(self):
        lfsr = LFSR.of_size(8)
        assert lfsr.state.is_zero()
        assert lfsr.size == 8

    def test_load_and_step(self):
        lfsr = LFSR(paper_example_matrix())
        lfsr.load(bits("1011"))
        state = lfsr.step()
        # c0'=c3=1, c1'=c0^c3=0, c2'=c1=0, c3'=c2^c3=0  -> "1000"
        assert state.to_string() == "1000"

    def test_load_length_check(self):
        lfsr = LFSR.of_size(6)
        with pytest.raises(ValueError):
            lfsr.load(bits("101"))

    def test_step_zero_cycles_is_noop(self):
        lfsr = LFSR(paper_example_matrix(), bits("1011"))
        assert lfsr.step(0) == bits("1011")

    def test_jump_matches_step(self):
        lfsr_a = LFSR.of_size(10)
        lfsr_b = LFSR.of_size(10)
        seed = BitVector(10, 0b1011001110)
        lfsr_a.load(seed)
        lfsr_b.load(seed)
        lfsr_a.step(37)
        lfsr_b.jump(37)
        assert lfsr_a.state == lfsr_b.state

    def test_run_returns_count_states_and_advances(self):
        lfsr = LFSR(paper_example_matrix(), bits("1011"))
        states = lfsr.run(3)
        assert len(states) == 3
        assert states[0] == bits("1011")
        # Register now points at the 4th state.
        assert lfsr.state == paper_example_matrix().power(3).mul_vector(bits("1011"))

    def test_serial_output_cell_range(self):
        lfsr = LFSR.of_size(5)
        with pytest.raises(IndexError):
            lfsr.serial_output(4, cell=9)

    def test_period_of_primitive_lfsr(self):
        lfsr = LFSR.fibonacci(primitive_polynomial(5), BitVector.unit(5, 0))
        assert lfsr.period() == 31
        assert lfsr.is_maximal_length()

    def test_period_rejects_zero_state(self):
        lfsr = LFSR.of_size(5)
        with pytest.raises(ValueError):
            lfsr.period()

    def test_galois_and_fibonacci_constructors(self):
        poly = primitive_polynomial(6)
        assert LFSR.fibonacci(poly).structure.style == "fibonacci"
        assert LFSR.galois(poly).structure.style == "galois"
        assert LFSR.of_size(6, style="galois").structure.style == "galois"
        with pytest.raises(ValueError):
            LFSR.of_size(6, style="ring")

    def test_copy_is_independent(self):
        lfsr = LFSR(paper_example_matrix(), bits("1011"))
        clone = lfsr.copy()
        clone.step()
        assert lfsr.state == bits("1011")

    def test_polynomial_exposed(self):
        poly = primitive_polynomial(7)
        assert LFSR.fibonacci(poly).polynomial == poly
        assert LFSR(paper_example_matrix()).polynomial is None


class TestStateSkipCircuit:
    def test_rejects_k_below_two(self):
        with pytest.raises(ValueError):
            StateSkipCircuit(paper_example_matrix(), 1)

    def test_paper_example_k2_rows(self):
        circuit = StateSkipCircuit(paper_example_matrix(), 2)
        assert set(circuit.matrix.row(0).support()) == {2, 3}
        assert set(circuit.matrix.row(1).support()) == {2}
        assert set(circuit.matrix.row(2).support()) == {0, 3}
        assert set(circuit.matrix.row(3).support()) == {1, 2, 3}

    def test_xor_gate_count_paper_example(self):
        circuit = StateSkipCircuit(paper_example_matrix(), 2)
        # Row weights 2,1,2,3 -> XOR gates 1+0+1+2 = 4
        assert circuit.xor_gate_count() == 4

    def test_cost_includes_muxes(self):
        circuit = StateSkipCircuit(paper_example_matrix(), 2)
        cost = circuit.cost(xor_ge=2.0, mux_ge=2.5)
        assert cost.xor_gates == 4
        assert cost.mux_gates == 4
        assert cost.gate_equivalents == pytest.approx(4 * 2.0 + 4 * 2.5)

    def test_evaluate_matches_power(self):
        circuit = StateSkipCircuit(paper_example_matrix(), 3)
        seed = bits("0110")
        assert circuit.evaluate(seed) == paper_example_matrix().power(3).mul_vector(seed)


class TestStateSkipLFSR:
    def test_modes_advance_correctly(self):
        ss = StateSkipLFSR(LFSR(paper_example_matrix()), k=2)
        ss.load(bits("1011"))
        assert ss.mode is LFSRMode.NORMAL
        assert ss.states_advanced_per_clock() == 1
        ss.set_mode(LFSRMode.STATE_SKIP)
        assert ss.states_advanced_per_clock() == 2
        ss.step()
        # One skip-mode clock = two normal clocks from 1011.
        ref = LFSR(paper_example_matrix(), bits("1011"))
        ref.step(2)
        assert ss.state == ref.state

    def test_set_mode_type_checked(self):
        ss = StateSkipLFSR.of_size(8, k=4)
        with pytest.raises(TypeError):
            ss.set_mode("normal")

    def test_run_skip_collects_every_kth_state(self):
        ss = StateSkipLFSR(LFSR(paper_example_matrix()), k=2)
        ss.load(bits("1011"))
        skip_states = ss.run_skip(4)
        ref = LFSR(paper_example_matrix(), bits("1011"))
        normal_states = ref.run(8)
        assert skip_states == normal_states[::2]

    def test_verify_skip_equivalence(self):
        ss = StateSkipLFSR.of_size(12, k=7)
        assert ss.verify_skip_equivalence(BitVector(12, 0b101101001011), jumps=5)

    def test_of_size_constructor(self):
        ss = StateSkipLFSR.of_size(16, k=8)
        assert ss.size == 16
        assert ss.k == 8
        assert ss.skip_cost().gate_equivalents > 0

    def test_cost_grows_with_k_on_average(self):
        # For a sparse feedback polynomial, A^k fills in as k grows, so the
        # State Skip circuit cost at k=16 exceeds the cost at k=2.
        lfsr = LFSR.of_size(24)
        sweep = skip_cost_sweep(lfsr.transition, [2, 16])
        assert sweep[1].gate_equivalents > sweep[0].gate_equivalents


class TestPhaseShifter:
    def test_identity_construction(self):
        ps = PhaseShifter.identity(6)
        assert ps.num_outputs == 6
        state = BitVector(6, 0b101001)
        assert ps.apply(state) == state

    def test_construct_full_rank(self):
        ps = PhaseShifter.construct(num_outputs=16, lfsr_size=24)
        assert ps.num_outputs == 16
        assert ps.lfsr_size == 24
        assert ps.matrix.rank() == 16

    def test_construct_more_outputs_than_cells(self):
        ps = PhaseShifter.construct(num_outputs=32, lfsr_size=20)
        assert ps.matrix.rank() == 20
        # All rows non-zero, tap count as requested.
        for j in range(32):
            assert 1 <= len(ps.output_taps(j)) <= 3

    def test_construct_is_deterministic_for_same_seed(self):
        a = PhaseShifter.construct(8, 16, seed=7)
        b = PhaseShifter.construct(8, 16, seed=7)
        assert a.matrix == b.matrix

    def test_rejects_zero_rows(self):
        from repro.gf2.matrix import GF2Matrix

        with pytest.raises(ValueError):
            PhaseShifter(GF2Matrix.from_rows([[0, 0, 0], [1, 0, 1]]))

    def test_output_rows_match_apply(self):
        ps = PhaseShifter.construct(num_outputs=8, lfsr_size=12)
        lfsr = LFSR.of_size(12)
        seed = BitVector(12, 0b101100111010)
        lfsr.load(seed)
        lfsr.step(5)
        symbolic = lfsr.transition.power(5)
        rows = ps.output_rows(symbolic)
        assert rows.mul_vector(seed) == ps.apply(lfsr.state)

    def test_gate_cost(self):
        ps = PhaseShifter.construct(num_outputs=8, lfsr_size=12, taps_per_output=3)
        assert ps.xor_gate_count() == 8 * 2
        assert ps.gate_equivalents(xor_ge=2.0) == pytest.approx(32.0)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            PhaseShifter.construct(0, 8)
        with pytest.raises(ValueError):
            PhaseShifter.construct(4, 1)


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=4, max_value=12),
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=1, max_value=6),
)
def test_skip_then_normal_commute(size, k, extra_steps):
    """Jumping k then stepping j equals stepping j then jumping k."""
    poly = primitive_polynomial(size)
    a = StateSkipLFSR(LFSR.fibonacci(poly), k)
    b = StateSkipLFSR(LFSR.fibonacci(poly), k)
    seed = BitVector(size, 0b1 | (1 << (size - 1)))
    a.load(seed)
    b.load(seed)
    a.set_mode(LFSRMode.STATE_SKIP)
    a.step()
    a.set_mode(LFSRMode.NORMAL)
    a.step(extra_steps)
    b.set_mode(LFSRMode.NORMAL)
    b.step(extra_steps)
    b.set_mode(LFSRMode.STATE_SKIP)
    b.step()
    assert a.state == b.state


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=4, max_value=10), st.integers(min_value=2, max_value=12))
def test_skip_lfsr_preserves_nonzero_states(size, k):
    """A^k is invertible, so skip mode never collapses a non-zero state to zero."""
    ss = StateSkipLFSR.of_size(size, k)
    ss.load(BitVector.unit(size, 0))
    ss.set_mode(LFSRMode.STATE_SKIP)
    for _ in range(20):
        ss.step()
        assert not ss.state.is_zero()
