"""Tests for the equation system (equation construction and seed expansion)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.encoding.equations import EquationSystem
from repro.gf2.bitvec import BitVector
from repro.gf2.primitive import default_feedback_polynomial
from repro.lfsr.lfsr import LFSR
from repro.lfsr.phase_shifter import PhaseShifter
from repro.scan.architecture import ScanArchitecture
from repro.testdata.cube import TestCube


def make_system(num_cells=40, chains=8, lfsr_size=16, window=6, phase_seed=3):
    lfsr = LFSR.fibonacci(default_feedback_polynomial(lfsr_size))
    arch = ScanArchitecture(num_cells, chains)
    ps = PhaseShifter.construct(arch.num_chains, lfsr_size, seed=phase_seed)
    return EquationSystem(lfsr.transition, ps, arch, window), lfsr, ps, arch


class TestConstruction:
    def test_validation(self):
        lfsr = LFSR.of_size(8)
        arch = ScanArchitecture(20, 4)
        ps = PhaseShifter.construct(4, 8)
        with pytest.raises(ValueError):
            EquationSystem(lfsr.transition, ps, arch, 0)
        bad_ps = PhaseShifter.construct(4, 10)
        with pytest.raises(ValueError):
            EquationSystem(lfsr.transition, bad_ps, arch, 4)
        small_ps = PhaseShifter.construct(2, 8)
        with pytest.raises(ValueError):
            EquationSystem(lfsr.transition, small_ps, arch, 4)

    def test_properties(self):
        system, lfsr, ps, arch = make_system()
        assert system.lfsr_size == 16
        assert system.window_length == 6
        assert system.architecture is arch
        assert system.phase_shifter is ps
        assert system.transition == lfsr.transition


class TestExpansion:
    def test_expansion_matches_direct_simulation(self):
        """Bulk numpy expansion equals step-by-step LFSR + phase shifter."""
        system, lfsr, ps, arch = make_system(num_cells=30, chains=5, lfsr_size=12,
                                             window=4)
        seed = BitVector(12, 0b101101110010)
        window = system.expand_seed(seed)
        # Direct simulation: for each window vector, run r cycles; the value
        # scanned into cell c is the phase-shifter output of c's chain at
        # cycle v*r + load_cycle(c).
        sim = LFSR(lfsr.transition, seed)
        outputs = []  # outputs[t] = phase shifter outputs at cycle t
        for _ in range(4 * arch.chain_length):
            outputs.append(ps.apply(sim.state))
            sim.step()
        for v in range(4):
            for cell in range(arch.num_cells):
                t = v * arch.chain_length + arch.load_cycle(cell)
                expected = outputs[t][arch.chain_of(cell)]
                assert (window[v] >> cell) & 1 == expected

    def test_expand_seeds_multiple(self):
        system, *_ = make_system()
        seeds = [BitVector(16, 0xBEEF), BitVector(16, 0x1234)]
        windows = system.expand_seeds(seeds)
        assert len(windows) == 2
        assert len(windows[0]) == 6
        assert windows[0] == system.expand_seed(seeds[0])
        assert windows[1] == system.expand_seed(seeds[1])

    def test_expand_empty(self):
        system, *_ = make_system()
        assert system.expand_seeds([]) == []

    def test_expand_length_check(self):
        system, *_ = make_system()
        with pytest.raises(ValueError):
            system.expand_seed(BitVector(5, 0b10101))

    def test_vector_at(self):
        system, *_ = make_system()
        seed = BitVector(16, 0xACE1)
        bits = system.vector_at(seed, 2)
        packed = system.expand_seed(seed)[2]
        assert len(bits) == 40
        assert all(bits[c] == ((packed >> c) & 1) for c in range(40))


class TestCubeEquations:
    def test_equations_predict_expansion(self):
        """row(c, v) . seed equals the expanded bit for every cell/position."""
        system, *_ = make_system(num_cells=30, chains=6, lfsr_size=14, window=5)
        cube = TestCube.from_assignments(30, {0: 1, 7: 0, 13: 1, 29: 0})
        equations = system.cube_equations(cube)
        seed = BitVector(14, 0b10011011100101)
        window = system.expand_seed(seed)
        cells = cube.specified_cells()
        for v in range(5):
            for (mask, rhs), cell in zip(equations[v], cells):
                predicted = (mask & seed.value).bit_count() & 1
                actual = (window[v] >> cell) & 1
                assert predicted == actual
                assert rhs == cube.bit(cell)

    def test_equation_count_matches_specified_bits(self):
        system, *_ = make_system()
        cube = TestCube.from_assignments(40, {1: 1, 5: 0, 39: 1})
        equations = system.cube_equations(cube)
        assert len(equations) == system.window_length
        assert all(len(eqs) == 3 for eqs in equations)

    def test_cache_returns_same_object(self):
        system, *_ = make_system()
        cube = TestCube.from_assignments(40, {3: 1})
        assert system.cube_equations(cube) is system.cube_equations(cube)
        system.clear_cache()
        assert len(system.cube_equations(cube)) == system.window_length

    def test_width_check(self):
        system, *_ = make_system()
        with pytest.raises(ValueError):
            system.cube_equations(TestCube.from_assignments(10, {0: 1}))

    def test_position_bounds(self):
        system, *_ = make_system()
        cube = TestCube.from_assignments(40, {0: 1})
        with pytest.raises(IndexError):
            system.cube_equations_at(cube, 99)

    def test_cube_matches_consistency(self):
        system, *_ = make_system()
        seed = BitVector(16, 0x7B31)
        window = system.expand_seed(seed)
        # Build a cube straight from the expanded bits of position 3: it must
        # match there.
        bits = {c: (window[3] >> c) & 1 for c in (0, 9, 17, 33)}
        cube = TestCube.from_assignments(40, bits)
        assert system.cube_matches(cube, seed, 3)


# ----------------------------------------------------------------------
# Property: equations are always satisfied by the expansion, for random
# cubes, seeds and window positions.
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(st.data())
def test_equations_consistent_with_expansion_property(data):
    system, *_ = make_system(num_cells=24, chains=4, lfsr_size=10, window=4)
    num_spec = data.draw(st.integers(min_value=1, max_value=8))
    cells = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=23),
            min_size=num_spec,
            max_size=num_spec,
            unique=True,
        )
    )
    assignments = {c: data.draw(st.integers(0, 1)) for c in cells}
    cube = TestCube.from_assignments(24, assignments)
    seed = BitVector(10, data.draw(st.integers(min_value=0, max_value=(1 << 10) - 1)))
    position = data.draw(st.integers(min_value=0, max_value=3))
    window = system.expand_seed(seed)
    equations = system.cube_equations_at(cube, position)
    satisfied = all(
        ((mask & seed.value).bit_count() & 1) == ((window[position] >> cell) & 1)
        for (mask, _), cell in zip(equations, cube.specified_cells())
    )
    assert satisfied
