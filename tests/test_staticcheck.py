"""Tests for the static verification subsystem (``repro lint``).

Three groups, mirroring the analyzer layers:

* **IR/codegen mutation tests** -- plant known corruption classes into a
  netlist, its :class:`PackedPlan` and the compiled backend's generated
  source, and assert each is caught with a precise, actionable message
  (a verifier that only says "invalid" is useless at 20k gates).
* **Source-rule tests** -- plant one violation per rule into a throwaway
  mini-repo and assert the rule reports it with rule-id and file:line,
  plus the suppression-comment and clean-HEAD contracts.
* **CLI/exit-code tests** -- ``repro lint`` exits 0 clean, 1 on
  violations, 2 on analyzer internal error, with parseable output.
"""

import json
from pathlib import Path

import pytest

from repro.circuits.backends.compiled import (
    CompiledEvaluator,
    gen_binary_diff,
    gen_binary_full,
    gen_ternary_full,
    set_codegen_verify,
)
from repro.circuits.generator import random_netlist
from repro.circuits.netlist import Gate, GateType, Netlist
from repro.circuits.ternary import PackedPlan
from repro.cli import main
from repro.staticcheck import (
    IrVerificationError,
    RULES,
    run_lint,
    verify_generated_source,
    verify_netlist,
    verify_packed_plan,
)
from repro.telemetry import Recorder, use_recorder


def _fresh_netlist(seed: int = 3) -> Netlist:
    # Fresh instance per test: PackedPlan mutations must not leak into the
    # per-netlist plan caches shared with other tests.
    return random_netlist("lintmut", num_inputs=8, num_gates=40, seed=seed)


def _tiny_netlist() -> Netlist:
    return Netlist(
        "tiny",
        inputs=["a", "b"],
        outputs=["y"],
        gates=[
            Gate("x", GateType.AND, ("a", "b")),
            Gate("y", GateType.OR, ("x", "a")),
        ],
    )


# ----------------------------------------------------------------------
# IR verifiers: clean inputs pass
# ----------------------------------------------------------------------
class TestVerifiersPassOnValidIr:
    def test_netlist_and_plan_clean(self):
        netlist = _fresh_netlist()
        assert verify_netlist(netlist) == []
        assert verify_packed_plan(PackedPlan(netlist)) == []

    def test_generated_sources_clean(self):
        plan = PackedPlan(_fresh_netlist())
        for generator, name in (
            (gen_binary_full, "binary_full"),
            (gen_binary_diff, "binary_diff"),
            (gen_ternary_full, "ternary_full"),
        ):
            assert verify_generated_source(generator(plan), plan, name) == []


# ----------------------------------------------------------------------
# IR/codegen mutation classes (>= 6, each with a precise message)
# ----------------------------------------------------------------------
class TestIrCorruptionClasses:
    def test_cycle_detected(self):
        netlist = _tiny_netlist()
        # x = AND(a, b)  ->  x = AND(y, b): the pair x <-> y now cycles.
        netlist._gates["x"] = Gate("x", GateType.AND, ("y", "b"))
        problems = verify_netlist(netlist)
        assert any("combinational cycle" in p and "x" in p for p in problems)

    def test_stale_evaluation_order_detected(self):
        netlist = _tiny_netlist()
        netlist._topo_order = ["y", "x"]  # reversed: y reads x
        problems = verify_netlist(netlist)
        assert any("not topological" in p and "'x'" in p for p in problems)

    def test_wrong_level_detected(self):
        plan = PackedPlan(_fresh_netlist())
        plan.row_levels[5] += 1
        problems = verify_packed_plan(plan)
        assert any(
            "row_levels says level" in p and "row 5" in p for p in problems
        )

    def test_stale_fused_rows_detected(self):
        plan = PackedPlan(_fresh_netlist())
        output, fop, a, b, c, inputs, inverting = plan.fused_rows[4]
        plan.fused_rows[4] = (output, fop, a ^ 1, b, c, inputs, inverting)
        problems = verify_packed_plan(plan)
        assert any("fused_rows[4] is stale" in p for p in problems)

    def test_out_of_range_operand_detected(self):
        plan = PackedPlan(_fresh_netlist())
        output, op, inputs, inverting = plan.rows[3]
        plan.rows[3] = (output, op, (plan.num_nets + 7,) + inputs[1:], inverting)
        problems = verify_packed_plan(plan)
        assert any(
            f"operand index {plan.num_nets + 7} out of range" in p
            for p in problems
        )

    def test_rows_not_topological_detected(self):
        plan = PackedPlan(_tiny_netlist())
        plan.rows[0], plan.rows[1] = plan.rows[1], plan.rows[0]
        plan.row_levels[0], plan.row_levels[1] = (
            plan.row_levels[1], plan.row_levels[0],
        )
        problems = verify_packed_plan(plan)
        assert any("used before definition" in p for p in problems)

    def test_stale_table_rows_detected(self):
        plan = PackedPlan(_tiny_netlist())
        trows = plan.table_rows()
        output, arity, a, b, c, value_table, care_table = trows[0]
        trows[0] = (output, arity, a, b, c, list(value_table), [0] * 16)
        problems = verify_packed_plan(plan)
        assert any(
            "table_rows[0]" in p and "differ from the shared tables" in p
            for p in problems
        )

    def test_duplicate_codegen_local_detected(self):
        plan = PackedPlan(_tiny_netlist())
        lines = gen_binary_full(plan).splitlines()
        gate_line = next(
            i for i, line in enumerate(lines)
            if line.startswith(f"    v{plan.num_inputs} = ")
        )
        lines.insert(gate_line + 1, lines[gate_line])
        problems = verify_generated_source(
            "\n".join(lines), plan, "binary_full"
        )
        assert any(
            f"'v{plan.num_inputs}' assigned twice" in p for p in problems
        )

    def test_missing_output_assignment_detected(self):
        plan = PackedPlan(_tiny_netlist())
        lines = gen_binary_full(plan).splitlines()
        dropped = [line for line in lines if not line.startswith("    V[")]
        problems = verify_generated_source(
            "\n".join(dropped), plan, "binary_full"
        )
        assert any("never written back into V" in p for p in problems)

    def test_def_before_use_in_codegen_detected(self):
        plan = PackedPlan(_tiny_netlist())
        lines = gen_binary_full(plan).splitlines()
        # Hoist the last gate assignment above the first: it reads a local
        # that is no longer defined yet.
        assigns = [
            i for i, line in enumerate(lines)
            if line.startswith("    v") and "=" in line
        ]
        lines.insert(assigns[0], lines.pop(assigns[-1]))
        problems = verify_generated_source(
            "\n".join(lines), plan, "binary_full"
        )
        assert any("def-before-use" in p for p in problems)

    def test_template_scope_collision_detected(self):
        plan = PackedPlan(_tiny_netlist())
        source = gen_binary_full(plan) + "\n    mask = 0"
        problems = verify_generated_source(source, plan, "binary_full")
        assert any("collides with the template scope" in p for p in problems)

    def test_foreign_name_reference_detected(self):
        plan = PackedPlan(_tiny_netlist())
        source = gen_binary_full(plan).replace(
            "    v0 = V[0]", "    v0 = __import__('os') and V[0]", 1
        )
        problems = verify_generated_source(source, plan, "binary_full")
        assert any("outside the template scope" in p for p in problems)

    def test_diff_return_must_cover_outputs(self):
        plan = PackedPlan(_tiny_netlist())
        lines = gen_binary_diff(plan).splitlines()
        lines[-1] = "    return 0 & mask"
        problems = verify_generated_source(
            "\n".join(lines), plan, "binary_diff"
        )
        assert any("detection word ignores" in p for p in problems)


# ----------------------------------------------------------------------
# The verify=True hook in the compiled backend
# ----------------------------------------------------------------------
class TestCodegenVerifyHook:
    def test_valid_codegen_builds_under_verify(self):
        evaluator = CompiledEvaluator(_fresh_netlist(), verify=True)
        evaluator.binary_full()
        evaluator.binary_diff()
        evaluator.ternary_full()

    def test_corrupted_codegen_raises_before_exec(self, monkeypatch):
        import repro.circuits.backends.compiled as compiled_module

        netlist = _tiny_netlist()
        plan = PackedPlan(netlist)
        broken = "\n".join(gen_binary_full(plan).splitlines()[:-1])
        monkeypatch.setattr(
            compiled_module, "gen_binary_full", lambda plan: broken
        )
        evaluator = CompiledEvaluator(netlist, verify=True)
        with pytest.raises(IrVerificationError) as excinfo:
            evaluator.binary_full()
        assert "never written back" in str(excinfo.value)
        assert excinfo.value.problems

    def test_env_toggle(self, monkeypatch):
        from repro.circuits.backends.compiled import codegen_verify_enabled

        set_codegen_verify(None)
        monkeypatch.setenv("REPRO_VERIFY_CODEGEN", "1")
        assert codegen_verify_enabled() is True
        monkeypatch.setenv("REPRO_VERIFY_CODEGEN", "0")
        assert codegen_verify_enabled() is False
        set_codegen_verify(True)
        assert codegen_verify_enabled() is True
        set_codegen_verify(None)


# ----------------------------------------------------------------------
# Source rules over a planted mini-repo (>= 4 violation classes)
# ----------------------------------------------------------------------
def _write(root: Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")


class TestSourceRules:
    def test_deprecated_flag_reported_with_location(self, tmp_path):
        _write(
            tmp_path, "src/bad_flags.py",
            "def f(atpg):\n"
            "    atpg.run(batch_fills=True)\n"
            "    sim = FaultSimulator(n, use_cones=False)\n",
        )
        report = run_lint(tmp_path, paths=[tmp_path / "src"])
        found = {(v.path, v.line) for v in report.violations
                 if v.rule == "deprecated-flags"}
        assert ("src/bad_flags.py", 2) in found
        assert ("src/bad_flags.py", 3) in found

    def test_forwarding_shim_not_flagged(self, tmp_path):
        _write(
            tmp_path, "src/shim.py",
            "def run(batch_fills=None):\n"
            "    inner.run(batch_fills=batch_fills)\n"
            "    resolve_engine(use_packed=False)\n",
        )
        report = run_lint(tmp_path, paths=[tmp_path / "src"])
        assert not [v for v in report.violations
                    if v.rule == "deprecated-flags"]

    def test_bare_store_open_reported(self, tmp_path):
        _write(
            tmp_path, "src/peek.py",
            "def peek(d):\n"
            "    with open(d / 'results.jsonl') as fh:\n"
            "        return fh.read()\n",
        )
        report = run_lint(tmp_path, paths=[tmp_path / "src"])
        hits = [v for v in report.violations if v.rule == "store-open"]
        assert hits and hits[0].path == "src/peek.py" and hits[0].line == 2

    def test_store_open_exempt_in_store_module(self, tmp_path):
        _write(
            tmp_path, "src/repro/campaign/store.py",
            "def load(d):\n"
            "    return open(d / 'results.jsonl')\n",
        )
        report = run_lint(tmp_path, paths=[tmp_path / "src"])
        assert not [v for v in report.violations if v.rule == "store-open"]

    def test_unordered_iteration_in_cache_key_reported(self, tmp_path):
        _write(
            tmp_path, "src/keys.py",
            "def cache_key(nets):\n"
            "    parts = [str(n) for n in set(nets)]\n"
            "    return '|'.join(parts)\n"
            "def cache_key_ok(nets):\n"
            "    return '|'.join(str(n) for n in sorted(set(nets)))\n",
        )
        report = run_lint(tmp_path, paths=[tmp_path / "src"])
        hits = [v for v in report.violations
                if v.rule == "unordered-iteration"]
        assert len(hits) == 1
        assert hits[0].line == 2 and "cache_key" in hits[0].message

    def test_unbounded_module_cache_reported(self, tmp_path):
        _write(
            tmp_path, "src/caches.py",
            "from collections import OrderedDict\n"
            "from repro.lru import LRUCache\n"
            "_BAD_CACHE = {}\n"
            "_WORSE_CACHE = OrderedDict()\n"
            "_GOOD_CACHE = LRUCache(8)\n",
        )
        report = run_lint(tmp_path, paths=[tmp_path / "src"])
        hits = {(v.line, v.message) for v in report.violations
                if v.rule == "bounded-cache"}
        assert {line for line, _ in hits} == {3, 4}

    def test_span_outside_with_reported(self, tmp_path):
        _write(
            tmp_path, "src/spans.py",
            "def f(rec):\n"
            "    s = rec.span('work')\n"
            "    with rec.span('ok'):\n"
            "        pass\n",
        )
        report = run_lint(tmp_path, paths=[tmp_path / "src"])
        hits = [v for v in report.violations if v.rule == "span-pairing"]
        assert len(hits) == 1 and hits[0].line == 2

    def test_worker_shared_state_reported_and_lock_exempt(self, tmp_path):
        _write(
            tmp_path, "src/repro/campaign/runner.py",
            "from repro.jobs import push\n",
        )
        _write(
            tmp_path, "src/repro/jobs.py",
            "import threading\n"
            "PENDING = {}\n"
            "GUARDED = {}\n"
            "_LOCK = threading.Lock()\n"
            "def push(key, value):\n"
            "    PENDING[key] = value\n"
            "def push_guarded(key, value):\n"
            "    with _LOCK:\n"
            "        GUARDED[key] = value\n"
            "def register_thing(key, value):\n"
            "    PENDING[key] = value\n",
        )
        report = run_lint(tmp_path, paths=[tmp_path / "src"])
        hits = [v for v in report.violations
                if v.rule == "worker-shared-state"]
        assert len(hits) == 1
        assert hits[0].path == "src/repro/jobs.py" and hits[0].line == 6
        assert "'PENDING'" in hits[0].message

    def test_suppression_comment_honored(self, tmp_path):
        _write(
            tmp_path, "src/sup.py",
            "def f(atpg):\n"
            "    atpg.run(batch_fills=True)  # repro-lint: disable=deprecated-flags\n"
            "    # repro-lint: disable=deprecated-flags\n"
            "    atpg.run(batch_fills=False)\n",
        )
        report = run_lint(tmp_path, paths=[tmp_path / "src"])
        assert not report.violations
        assert report.suppressed == 2


# ----------------------------------------------------------------------
# Whole-repo contracts
# ----------------------------------------------------------------------
REPO_ROOT = Path(__file__).resolve().parent.parent


class TestRepoContracts:
    def test_head_is_clean(self):
        """The acceptance bar: zero violations on the repo itself."""
        report = run_lint(REPO_ROOT)
        assert report.errors == []
        assert report.violations == [], "\n".join(
            v.format() for v in report.violations
        )

    def test_no_suppressions_needed_in_src(self):
        report = run_lint(REPO_ROOT, paths=[REPO_ROOT / "src"])
        assert report.violations == []
        assert report.suppressed == 0

    def test_telemetry_counters_emitted(self, tmp_path):
        _write(tmp_path, "src/ok.py", "x = 1\n")
        recorder = Recorder(run_id="lint-test")
        with use_recorder(recorder):
            run_lint(tmp_path, paths=[tmp_path / "src"],
                     rules=["deprecated-flags"])
        counters = recorder.metrics.counters
        assert counters.get("lint.files") == 1
        assert counters.get("lint.violations") == 0

    def test_rule_registry_complete(self):
        assert {
            "ir-verify", "deprecated-flags", "dict-engine-hotpath",
            "store-open", "unordered-iteration", "span-pairing",
            "bounded-cache", "worker-shared-state",
        } <= set(RULES)


# ----------------------------------------------------------------------
# CLI: exit codes and report formats
# ----------------------------------------------------------------------
class TestLintCli:
    def test_exit_zero_and_summary_on_clean_tree(self, tmp_path, capsys):
        _write(tmp_path, "src/ok.py", "x = 1\n")
        code = main(["lint", "--root", str(tmp_path), str(tmp_path / "src")])
        assert code == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_exit_one_and_parseable_lines_on_violations(
        self, tmp_path, capsys
    ):
        _write(
            tmp_path, "src/bad.py",
            "def f(atpg):\n    atpg.run(batch_fills=True)\n",
        )
        code = main(["lint", "--root", str(tmp_path), str(tmp_path / "src")])
        out = capsys.readouterr().out
        assert code == 1
        assert "src/bad.py:2: deprecated-flags " in out

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        _write(tmp_path, "src/ok.py", "x = 1\n")
        code = main([
            "lint", "--root", str(tmp_path), str(tmp_path / "src"),
            "--rules", "no-such-rule",
        ])
        assert code == 2
        assert "unknown rule(s)" in capsys.readouterr().out

    def test_exit_two_on_unparseable_file(self, tmp_path, capsys):
        _write(tmp_path, "src/broken.py", "def f(:\n")
        code = main(["lint", "--root", str(tmp_path), str(tmp_path / "src")])
        assert code == 2
        assert "unparseable" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        _write(
            tmp_path, "src/bad.py",
            "def f(atpg):\n    atpg.run(batch_fills=True)\n",
        )
        code = main([
            "lint", "--root", str(tmp_path), str(tmp_path / "src"),
            "--format", "json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1 and payload["exit_code"] == 1
        [violation] = payload["violations"]
        assert violation["rule"] == "deprecated-flags"
        assert violation["path"] == "src/bad.py"
        assert violation["line"] == 2

    def test_fix_hints(self, tmp_path, capsys):
        _write(
            tmp_path, "src/bad.py",
            "def f(atpg):\n    atpg.run(batch_fills=True)\n",
        )
        code = main([
            "lint", "--root", str(tmp_path), str(tmp_path / "src"),
            "--fix-hints",
        ])
        assert code == 1
        assert "hint: select backends with engine=" in capsys.readouterr().out

    def test_rule_selection(self, tmp_path, capsys):
        _write(
            tmp_path, "src/bad.py",
            "def f(atpg):\n    atpg.run(batch_fills=True)\n_X_CACHE = {}\n",
        )
        code = main([
            "lint", "--root", str(tmp_path), str(tmp_path / "src"),
            "--rules", "bounded-cache",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "bounded-cache" in out and "deprecated-flags" not in out
