"""Integration tests of the top-level pipeline, config and reporting."""

import pytest

import repro
from repro.config import CompressionConfig
from repro.pipeline import compress, compress_profile
from repro.reporting import comparison_row, format_table, improvement_table
from repro.testdata.profiles import custom_profile, get_profile
from repro.testdata.synthetic import generate_test_set


@pytest.fixture(scope="module")
def small_profile():
    return custom_profile(
        "pipeline_unit",
        scan_cells=80,
        num_cubes=45,
        max_specified=10,
        mean_specified=4.5,
        scan_chains=8,
        lfsr_size=16,
    )


class TestConfig:
    def test_defaults_valid(self):
        config = CompressionConfig()
        assert config.window_length == 200
        assert config.segment_size == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            CompressionConfig(window_length=0)
        with pytest.raises(ValueError):
            CompressionConfig(segment_size=0)
        with pytest.raises(ValueError):
            CompressionConfig(segment_size=300, window_length=200)
        with pytest.raises(ValueError):
            CompressionConfig(speedup=0)
        with pytest.raises(ValueError):
            CompressionConfig(alignment="fuzzy")

    def test_presets_and_updates(self):
        soc = CompressionConfig.paper_soc()
        assert (soc.window_length, soc.segment_size, soc.speedup) == (200, 10, 10)
        fast = CompressionConfig.fast()
        assert fast.window_length < soc.window_length
        shrunk = soc.with_window(8)
        assert shrunk.window_length == 8
        assert shrunk.segment_size <= 8
        updated = soc.with_updates(speedup=24)
        assert updated.speedup == 24


class TestPipeline:
    def test_full_flow_with_simulation(self, small_profile):
        test_set = generate_test_set(small_profile, seed=3)
        config = CompressionConfig(
            window_length=24,
            segment_size=4,
            speedup=6,
            num_scan_chains=8,
            lfsr_size=16,
        )
        report = compress(test_set, config, verify=True, simulate=True)
        assert report.encoding_verified
        assert report.simulation is not None
        assert report.simulation.covers(test_set)
        assert report.state_skip_tsl < report.window_tsl
        assert report.test_data_volume == report.num_seeds * 16
        assert 0 < report.improvement_percent < 100
        assert report.hardware_total_ge > 0
        summary = report.summary()
        assert summary["circuit"] == "pipeline_unit"
        assert summary["state_skip_tsl"] == report.state_skip_tsl
        assert summary["simulated"] is True

    def test_compress_profile_uses_profile_lfsr(self, small_profile):
        report = compress_profile(
            small_profile,
            CompressionConfig(
                window_length=16, segment_size=4, speedup=4, num_scan_chains=8
            ),
            seed=5,
        )
        assert report.encoding.lfsr_size == small_profile.lfsr_size

    def test_compress_profile_scaled_iscas(self):
        profile = get_profile("s13207")
        config = CompressionConfig(
            window_length=30, segment_size=5, speedup=8, num_scan_chains=32
        )
        report = compress_profile(profile, config, scale=0.05, seed=2)
        assert report.encoding.lfsr_size == profile.lfsr_size
        assert report.encoding.all_cubes_encoded()
        assert report.state_skip_tsl <= report.window_tsl

    def test_lazy_top_level_exports(self):
        assert repro.compress is compress
        assert repro.CompressionConfig is CompressionConfig
        assert repro.CompressionReport is not None
        with pytest.raises(AttributeError):
            _ = repro.does_not_exist


class TestReporting:
    def test_format_table_alignment(self):
        rows = [
            {"circuit": "s13207", "tdv": 3816, "tsl": 1756.0},
            {"circuit": "s9234", "tdv": None, "tsl": 2163},
        ]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "circuit" in lines[1]
        assert lines[4].split()[1] == "-"  # None rendered as '-'
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert format_table([], title="empty") == "empty\n"
        assert format_table([]) == ""

    def test_comparison_row(self):
        row = comparison_row(
            "s9234", {"tdv": 7000, "tsl": 2100}, {"tdv": 6864, "tsl": 2163},
            keys=["tdv", "tsl"],
        )
        assert row["tdv"] == 7000
        assert row["tdv_paper"] == 6864
        assert row["circuit"] == "s9234"

    def test_improvement_table(self):
        text = improvement_table("s13207", {3: {4: 70.0, 10: 69.0}, 24: {4: 93.0}})
        assert "s13207" in text
        assert "S=4" in text
        assert "93.0" in text
