"""Integration tests of the top-level pipeline, config and reporting."""

import json

import pytest

import repro
from repro.config import CompressionConfig
from repro.encoding.window import EncodingError
from repro.pipeline import CompressionReport, compress, compress_profile
from repro.reporting import (
    comparison_row,
    format_table,
    improvement_table,
    pivot_rows,
)
from repro.testdata.cube import TestCube
from repro.testdata.profiles import custom_profile, get_profile
from repro.testdata.synthetic import generate_test_set
from repro.testdata.test_set import TestSet


@pytest.fixture(scope="module")
def small_profile():
    return custom_profile(
        "pipeline_unit",
        scan_cells=80,
        num_cubes=45,
        max_specified=10,
        mean_specified=4.5,
        scan_chains=8,
        lfsr_size=16,
    )


class TestConfig:
    def test_defaults_valid(self):
        config = CompressionConfig()
        assert config.window_length == 200
        assert config.segment_size == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            CompressionConfig(window_length=0)
        with pytest.raises(ValueError):
            CompressionConfig(segment_size=0)
        with pytest.raises(ValueError):
            CompressionConfig(segment_size=300, window_length=200)
        with pytest.raises(ValueError):
            CompressionConfig(speedup=0)
        with pytest.raises(ValueError):
            CompressionConfig(alignment="fuzzy")
        with pytest.raises(ValueError):
            CompressionConfig(max_phase_retries=-1)
        with pytest.raises(ValueError):
            CompressionConfig(num_scan_chains=0)
        with pytest.raises(ValueError):
            CompressionConfig(phase_taps=0)
        with pytest.raises(ValueError):
            CompressionConfig(lfsr_size=1)

    def test_dict_round_trip_and_cache_key(self):
        config = CompressionConfig(window_length=60, segment_size=6, speedup=8)
        clone = CompressionConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.cache_key() == config.cache_key()
        # unknown keys (from a newer version's store) are tolerated
        extended = dict(config.to_dict(), future_knob=42)
        assert CompressionConfig.from_dict(extended) == config
        # any knob change moves the key
        assert config.with_updates(speedup=9).cache_key() != config.cache_key()

    def test_presets_and_updates(self):
        soc = CompressionConfig.paper_soc()
        assert (soc.window_length, soc.segment_size, soc.speedup) == (200, 10, 10)
        fast = CompressionConfig.fast()
        assert fast.window_length < soc.window_length
        shrunk = soc.with_window(8)
        assert shrunk.window_length == 8
        assert shrunk.segment_size <= 8
        updated = soc.with_updates(speedup=24)
        assert updated.speedup == 24


class TestPipeline:
    def test_full_flow_with_simulation(self, small_profile):
        test_set = generate_test_set(small_profile, seed=3)
        config = CompressionConfig(
            window_length=24,
            segment_size=4,
            speedup=6,
            num_scan_chains=8,
            lfsr_size=16,
        )
        report = compress(test_set, config, verify=True, simulate=True)
        assert report.encoding_verified
        assert report.simulation is not None
        assert report.simulation.covers(test_set)
        assert report.state_skip_tsl < report.window_tsl
        assert report.test_data_volume == report.num_seeds * 16
        assert 0 < report.improvement_percent < 100
        assert report.hardware_total_ge > 0
        summary = report.summary()
        assert summary["circuit"] == "pipeline_unit"
        assert summary["state_skip_tsl"] == report.state_skip_tsl
        assert summary["simulated"] is True

    def test_compress_profile_uses_profile_lfsr(self, small_profile):
        report = compress_profile(
            small_profile,
            CompressionConfig(
                window_length=16, segment_size=4, speedup=4, num_scan_chains=8
            ),
            seed=5,
        )
        assert report.encoding.lfsr_size == small_profile.lfsr_size

    def test_compress_profile_scaled_iscas(self):
        profile = get_profile("s13207")
        config = CompressionConfig(
            window_length=30, segment_size=5, speedup=8, num_scan_chains=32
        )
        report = compress_profile(profile, config, scale=0.05, seed=2)
        assert report.encoding.lfsr_size == profile.lfsr_size
        assert report.encoding.all_cubes_encoded()
        assert report.state_skip_tsl <= report.window_tsl

    def test_lazy_top_level_exports(self):
        assert repro.compress is compress
        assert repro.CompressionConfig is CompressionConfig
        assert repro.CompressionReport is not None
        with pytest.raises(AttributeError):
            _ = repro.does_not_exist

    def test_report_json_round_trip(self, small_profile):
        test_set = generate_test_set(small_profile, seed=3)
        config = CompressionConfig(
            window_length=24, segment_size=4, speedup=6,
            num_scan_chains=8, lfsr_size=16,
        )
        report = compress(test_set, config, verify=True, simulate=True)
        blob = json.dumps(report.to_dict())  # must be JSON-safe
        clone = CompressionReport.from_dict(json.loads(blob))
        assert clone.summary() == report.summary()
        assert clone.hardware.breakdown() == report.hardware.breakdown()
        assert clone.config == report.config
        assert clone.encoding.seed_vectors() == report.encoding.seed_vectors()
        assert clone.encoding.cube_assignment() == report.encoding.cube_assignment()
        assert (
            clone.reduction.test_sequence_length
            == report.reduction.test_sequence_length
        )
        assert clone.reduction.num_useful_segments \
            == report.reduction.num_useful_segments
        assert clone.simulation.vectors_applied == report.simulation.vectors_applied
        assert clone.simulation.group_sizes == report.simulation.group_sizes

    def test_test_set_fingerprint_tracks_content(self, small_profile):
        first = generate_test_set(small_profile, seed=3)
        again = generate_test_set(small_profile, seed=3)
        other_seed = generate_test_set(small_profile, seed=4)
        assert first.fingerprint() == again.fingerprint()
        assert first.fingerprint() != other_seed.fingerprint()
        renamed = TestSet("other_name", first.cubes)
        assert renamed.fingerprint() != first.fingerprint()

    def test_encode_retry_exhaustion_is_descriptive(self, monkeypatch):
        from repro.encoding.encoder import ReseedingEncoder

        attempts = []

        def always_conflicts(self, test_set):
            attempts.append(1)
            raise EncodingError("synthetic hard conflict")

        monkeypatch.setattr(ReseedingEncoder, "encode", always_conflicts)
        test_set = TestSet("retry_unit", [TestCube.from_string("11XX")])
        config = CompressionConfig(
            window_length=4, segment_size=2, speedup=2,
            num_scan_chains=2, lfsr_size=8, max_phase_retries=2,
        )
        with pytest.raises(EncodingError) as excinfo:
            compress(test_set, config)
        assert len(attempts) == 3  # max_phase_retries + 1
        message = str(excinfo.value)
        assert "all 3 phase-shifter attempts failed" in message
        assert "retry_unit" in message
        assert "synthetic hard conflict" in message


class TestReporting:
    def test_format_table_alignment(self):
        rows = [
            {"circuit": "s13207", "tdv": 3816, "tsl": 1756.0},
            {"circuit": "s9234", "tdv": None, "tsl": 2163},
        ]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "circuit" in lines[1]
        assert lines[4].split()[1] == "-"  # None rendered as '-'
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert format_table([], title="empty") == "empty\n"
        assert format_table([]) == ""

    def test_comparison_row(self):
        row = comparison_row(
            "s9234", {"tdv": 7000, "tsl": 2100}, {"tdv": 6864, "tsl": 2163},
            keys=["tdv", "tsl"],
        )
        assert row["tdv"] == 7000
        assert row["tdv_paper"] == 6864
        assert row["circuit"] == "s9234"

    def test_improvement_table(self):
        text = improvement_table("s13207", {3: {4: 70.0, 10: 69.0}, 24: {4: 93.0}})
        assert "s13207" in text
        assert "S=4" in text
        assert "93.0" in text

    def test_pivot_rows(self):
        rows = [
            {"k": 3, "S": 4, "pct": 70.0},
            {"k": 3, "S": 10, "pct": 69.0},
            {"k": 24, "S": 4, "pct": 93.0},
            {"k": 3, "S": 4, "pct": 71.0},  # collision
            {"S": 4, "pct": 1.0},  # missing axis: skipped
        ]
        assert pivot_rows(rows, "k", "S", "pct") == {
            3: {4: 71.0, 10: 69.0}, 24: {4: 93.0},
        }
        assert pivot_rows(rows, "k", "S", "pct", reduce="min")[3][4] == 70.0
        assert pivot_rows(rows, "k", "S", "pct", reduce="last")[3][4] == 71.0
        with pytest.raises(ValueError):
            pivot_rows(rows, "k", "S", "pct", reduce="sum")
