"""Engine-backend registry: conformance, shims, env default, compiled LRU.

The conformance classes are parametrized over every registered backend and
compare against ``engine="reference"`` (the frozen pre-registry golden
path) on randomized netlists -- the executable form of the registry's
bit-identical-by-contract promise.
"""

import warnings

import pytest

from repro.circuits.atpg import PodemAtpg
from repro.circuits.backends import (
    DEFAULT_ENGINE,
    EVALUATOR_CACHE_SIZE,
    backend_names,
    clear_evaluator_cache,
    compiled_evaluator,
    default_backend_name,
    evaluator_cache_stats,
    get_backend,
    resolve_engine,
)
from repro.circuits.fault_sim import FaultSimulator
from repro.circuits.generator import random_netlist
from repro.circuits.simulator import (
    pack_patterns,
    simulate,
    simulate_parallel,
    simulate_ternary,
    simulate_ternary_reference,
)
from repro.config import CompressionConfig

ENGINES = backend_names()


def _random_assignments(netlist, seed, count=6):
    import random

    rng = random.Random(seed)
    assignments = []
    for _ in range(count):
        assignment = {}
        for net in netlist.inputs:
            draw = rng.random()
            if draw < 0.4:
                assignment[net] = rng.getrandbits(1)
            elif draw < 0.6:
                assignment[net] = None
        assignments.append(assignment)
    return assignments


def _random_patterns(netlist, seed, count=24):
    import random

    rng = random.Random(seed)
    return [
        {net: rng.getrandbits(1) for net in netlist.inputs} for _ in range(count)
    ]


# ----------------------------------------------------------------------
# Conformance: every backend vs the reference, randomized circuits
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
class TestConformance:
    def test_ternary_simulation_matches_reference(self, engine):
        for seed in (11, 12, 13):
            netlist = random_netlist(
                "conf", num_inputs=10, num_gates=45, seed=seed
            )
            for assignment in _random_assignments(netlist, seed):
                assert simulate_ternary(
                    netlist, assignment, engine=engine
                ) == simulate_ternary_reference(netlist, assignment)

    def test_parallel_simulation_matches_single(self, engine):
        netlist = random_netlist("conf", num_inputs=9, num_gates=40, seed=21)
        patterns = _random_patterns(netlist, 21, count=12)
        words = simulate_parallel(
            netlist, pack_patterns(netlist, patterns), len(patterns), engine=engine
        )
        for position, pattern in enumerate(patterns):
            single = simulate(netlist, pattern, engine=engine)
            for net, value in single.items():
                assert (words[net] >> position) & 1 == value

    def test_fault_simulation_matches_reference(self, engine):
        for seed in (31, 32):
            netlist = random_netlist(
                "conf", num_inputs=10, num_gates=50, seed=seed
            )
            patterns = _random_patterns(netlist, seed)
            result = FaultSimulator(
                netlist, word_width=16, engine=engine
            ).simulate_patterns(patterns, drop=False)
            reference = FaultSimulator(
                netlist, word_width=16, engine="reference"
            ).simulate_patterns(patterns, drop=False)
            assert result.detected == reference.detected

    def test_fault_dropping_matches_reference(self, engine):
        netlist = random_netlist("conf", num_inputs=8, num_gates=40, seed=41)
        patterns = _random_patterns(netlist, 41)
        simulator = FaultSimulator(netlist, word_width=8, engine=engine)
        reference = FaultSimulator(netlist, word_width=8, engine="reference")
        simulator.simulate_patterns(patterns, drop=True)
        reference.simulate_patterns(patterns, drop=True)
        assert set(simulator.detected_faults) == set(reference.detected_faults)
        assert set(simulator.remaining_faults) == set(reference.remaining_faults)

    def test_detect_block_matches_reference(self, engine):
        netlist = random_netlist("conf", num_inputs=9, num_gates=45, seed=51)
        patterns = _random_patterns(netlist, 51, count=16)
        good = simulate_parallel(
            netlist, pack_patterns(netlist, patterns), len(patterns)
        )
        block = FaultSimulator(
            netlist, word_width=len(patterns), engine=engine
        ).detect_block(good, len(patterns), drop=False)
        reference = FaultSimulator(
            netlist, word_width=len(patterns), engine="reference"
        ).detect_block(good, len(patterns), drop=False)
        assert block.detected == reference.detected

    def test_podem_run_matches_reference(self, engine):
        for seed in (61, 62):
            netlist = random_netlist(
                "conf", num_inputs=8, num_gates=35, seed=seed
            )
            result = PodemAtpg(netlist, engine=engine).run(fill_seed=seed)
            reference = PodemAtpg(netlist, engine="reference").run(fill_seed=seed)
            assert result.test_set.cubes == reference.test_set.cubes
            assert result.detected == reference.detected
            assert result.redundant == reference.redundant
            assert result.aborted == reference.aborted
            assert result.total_faults == reference.total_faults


# ----------------------------------------------------------------------
# Registry and process default
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_builtin_backends_registered(self):
        assert backend_names() == ("reference", "packed", "events", "compiled")

    def test_unknown_engine_lists_registered_backends(self):
        with pytest.raises(ValueError, match="registered backends: reference"):
            get_backend("turbo")

    def test_default_follows_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert default_backend_name() == DEFAULT_ENGINE == "events"
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert default_backend_name() == "reference"
        assert get_backend().name == "reference"
        assert resolve_engine() == "reference"

    def test_unknown_environment_engine_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        with pytest.raises(ValueError, match="REPRO_ENGINE"):
            default_backend_name()

    def test_backend_dispatch_hints_are_coherent(self):
        assert get_backend("reference").fills == "per-pattern"
        assert get_backend("packed").fills == "per-pattern"
        assert get_backend("events").fills == "batched"
        assert get_backend("compiled").fills == "batched"
        assert not get_backend("reference").batched_decompressor
        assert get_backend("events").batched_decompressor

    def test_config_validates_and_serialises_engine(self):
        with pytest.raises(ValueError, match="registered backends"):
            CompressionConfig(engine="turbo")
        default = CompressionConfig()
        assert "engine" not in default.to_dict()
        pinned = CompressionConfig(engine="compiled")
        assert pinned.to_dict()["engine"] == "compiled"
        # The engine can never change an encoding, so the encode key
        # ignores it and old stored cache keys stay valid.
        assert "engine" not in pinned.encode_dict()
        assert default.cache_key() != pinned.cache_key()
        assert default.encode_cache_key() == pinned.encode_cache_key()


# ----------------------------------------------------------------------
# Deprecated boolean-flag shims
# ----------------------------------------------------------------------
class TestDeprecationShims:
    @pytest.fixture(autouse=True)
    def _default_engine(self, monkeypatch):
        # Flag resolution picks the slowest of {process default, implied
        # engine}, so pin the documented default: a REPRO_ENGINE=reference
        # run would legitimately outrank every flag.
        monkeypatch.delenv("REPRO_ENGINE", raising=False)

    def test_use_packed_false_selects_reference(self):
        netlist = random_netlist("shim", num_inputs=6, num_gates=20, seed=1)
        with pytest.warns(DeprecationWarning, match="use_packed=False"):
            # repro-lint: disable=deprecated-flags
            atpg = PodemAtpg(netlist, use_packed=False)
        assert atpg.engine == "reference"

    def test_use_events_false_selects_packed(self):
        netlist = random_netlist("shim", num_inputs=6, num_gates=20, seed=1)
        with pytest.warns(DeprecationWarning, match="engine='packed'"):
            # repro-lint: disable=deprecated-flags
            atpg = PodemAtpg(netlist, use_events=False)
        assert atpg.engine == "packed"

    def test_use_cones_shim_on_fault_simulator(self):
        netlist = random_netlist("shim", num_inputs=6, num_gates=20, seed=1)
        with pytest.warns(DeprecationWarning, match="use_cones=False"):
            # repro-lint: disable=deprecated-flags
            simulator = FaultSimulator(netlist, use_cones=False)
        assert simulator.engine == "packed"
        with pytest.warns(DeprecationWarning, match="use_cones=True"):
            # repro-lint: disable=deprecated-flags
            simulator = FaultSimulator(netlist, use_cones=True)
        assert simulator.engine == "events"

    def test_one_warning_per_flag(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resolved = resolve_engine(use_packed=False, use_events=False)
        assert resolved == "reference"
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2

    def test_engine_wins_over_legacy_flags(self):
        with pytest.warns(DeprecationWarning):
            assert resolve_engine("compiled", use_packed=False) == "compiled"

    def test_batched_flag_maps_to_reference(self):
        with pytest.warns(DeprecationWarning, match="batched=False"):
            assert resolve_engine(batched=False) == "reference"

    def test_unknown_legacy_flag_raises(self):
        with pytest.raises(TypeError, match="unknown legacy engine flag"):
            resolve_engine(use_warp=False)

    def test_batch_fills_shim_on_run(self):
        netlist = random_netlist("shim", num_inputs=6, num_gates=20, seed=2)
        with pytest.warns(DeprecationWarning, match="batch_fills"):
            # repro-lint: disable=deprecated-flags
            shimmed = PodemAtpg(netlist).run(fill_seed=3, batch_fills=False)
        plain = PodemAtpg(netlist).run(fill_seed=3, fills="per-pattern")
        assert shimmed.test_set.cubes == plain.test_set.cubes

    def test_no_warning_without_flags(self):
        netlist = random_netlist("shim", num_inputs=6, num_gates=20, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            PodemAtpg(netlist, engine="events").run(fill_seed=1)
            FaultSimulator(netlist, engine="compiled")
            resolve_engine("packed")


# ----------------------------------------------------------------------
# Compiled-evaluator LRU
# ----------------------------------------------------------------------
class TestCompiledCache:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        clear_evaluator_cache()
        yield
        clear_evaluator_cache()

    def test_same_structure_hits_any_name_or_identity(self):
        a = random_netlist("one", num_inputs=6, num_gates=20, seed=5)
        b = random_netlist("two", num_inputs=6, num_gates=20, seed=5)
        assert a.fingerprint() == b.fingerprint()
        first = compiled_evaluator(a)
        assert compiled_evaluator(b) is first
        stats = evaluator_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_different_structure_misses(self):
        a = random_netlist("one", num_inputs=6, num_gates=20, seed=5)
        b = random_netlist("one", num_inputs=6, num_gates=20, seed=6)
        assert a.fingerprint() != b.fingerprint()
        assert compiled_evaluator(a) is not compiled_evaluator(b)
        stats = evaluator_cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 2

    def test_cache_is_bounded_and_evicts_lru(self):
        netlists = [
            random_netlist("n", num_inputs=5, num_gates=12, seed=seed)
            for seed in range(EVALUATOR_CACHE_SIZE + 3)
        ]
        for netlist in netlists:
            compiled_evaluator(netlist)
        stats = evaluator_cache_stats()
        assert stats["size"] == EVALUATOR_CACHE_SIZE == stats["capacity"]
        assert stats["evictions"] == 3
        # The oldest entries were evicted: re-requesting the first netlist
        # is a miss, the most recent one a hit.
        before = evaluator_cache_stats()["misses"]
        compiled_evaluator(netlists[0])
        assert evaluator_cache_stats()["misses"] == before + 1
        before_hits = evaluator_cache_stats()["hits"]
        compiled_evaluator(netlists[-1])
        assert evaluator_cache_stats()["hits"] == before_hits + 1

    def test_compiled_functions_are_reused(self):
        netlist = random_netlist("n", num_inputs=6, num_gates=20, seed=9)
        evaluator = compiled_evaluator(netlist)
        assert evaluator.binary_full() is evaluator.binary_full()
        assert evaluator.ternary_full() is evaluator.ternary_full()
        assert evaluator.binary_diff() is evaluator.binary_diff()
