"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.circuits.bench import write_bench
from repro.circuits.library import c17
from repro.testdata.profiles import custom_profile
from repro.testdata.synthetic import generate_test_set


@pytest.fixture()
def cube_file(tmp_path):
    profile = custom_profile(
        "cli_core",
        scan_cells=64,
        num_cubes=25,
        max_specified=8,
        mean_specified=4.0,
        scan_chains=8,
        lfsr_size=16,
    )
    test_set = generate_test_set(profile, seed=9)
    path = tmp_path / "cli_core.tests"
    path.write_text(test_set.to_text())
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compress_defaults(self):
        args = build_parser().parse_args(["compress", "--profile", "s13207"])
        assert args.window == 100
        assert args.profile == "s13207"
        assert args.func is not None

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "--profile", "s27"])


class TestCompressCommand:
    def test_compress_from_cube_file(self, cube_file, capsys):
        code = main(
            [
                "compress",
                "--tests",
                str(cube_file),
                "--chains",
                "8",
                "-L",
                "20",
                "-S",
                "4",
                "-k",
                "6",
                "--simulate",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "State Skip LFSR compression" in out
        assert "Decompressor hardware" in out
        assert "all 25 cubes delivered" in out

    def test_compress_requires_source(self):
        with pytest.raises(SystemExit):
            main(["compress", "-L", "10"])

    def test_compress_from_profile(self, capsys):
        code = main(
            [
                "compress",
                "--profile",
                "s13207",
                "--scale",
                "0.03",
                "-L",
                "20",
                "-S",
                "4",
                "-k",
                "8",
            ]
        )
        assert code == 0
        assert "s13207" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_from_cube_file(self, cube_file, capsys):
        code = main(
            [
                "sweep",
                "--tests",
                str(cube_file),
                "--chains",
                "8",
                "-L",
                "20",
                "--speedups",
                "3",
                "12",
                "--segments",
                "4",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TSL improvement" in out
        assert "S=4" in out


class TestAtpgCommand:
    def test_atpg_on_bench_file(self, tmp_path, capsys):
        bench_path = tmp_path / "c17.bench"
        bench_path.write_text(write_bench(c17()))
        out_path = tmp_path / "c17.tests"
        code = main(
            ["atpg", "--bench", str(bench_path), "--output", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        assert "coverage 100.0%" in capsys.readouterr().out

    def test_atpg_on_generated_circuit(self, capsys):
        code = main(["atpg", "--inputs", "10", "--gates", "30", "--seed", "4"])
        assert code == 0
        assert "collapsed faults" in capsys.readouterr().out
