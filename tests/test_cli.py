"""Tests for the command-line interface."""

import pytest

from repro.circuits.bench import write_bench
from repro.circuits.library import c17
from repro.cli import build_parser, main
from repro.testdata.profiles import custom_profile
from repro.testdata.synthetic import generate_test_set


@pytest.fixture()
def cube_file(tmp_path):
    profile = custom_profile(
        "cli_core",
        scan_cells=64,
        num_cubes=25,
        max_specified=8,
        mean_specified=4.0,
        scan_chains=8,
        lfsr_size=16,
    )
    test_set = generate_test_set(profile, seed=9)
    path = tmp_path / "cli_core.tests"
    path.write_text(test_set.to_text())
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compress_defaults(self):
        args = build_parser().parse_args(["compress", "--profile", "s13207"])
        assert args.window == 100
        assert args.profile == "s13207"
        assert args.func is not None

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "--profile", "s27"])


class TestCompressCommand:
    def test_compress_from_cube_file(self, cube_file, capsys):
        code = main(
            [
                "compress",
                "--tests",
                str(cube_file),
                "--chains",
                "8",
                "-L",
                "20",
                "-S",
                "4",
                "-k",
                "6",
                "--simulate",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "State Skip LFSR compression" in out
        assert "Decompressor hardware" in out
        assert "all 25 cubes delivered" in out

    def test_compress_requires_source(self):
        with pytest.raises(SystemExit):
            main(["compress", "-L", "10"])

    def test_compress_from_profile(self, capsys):
        code = main(
            [
                "compress",
                "--profile",
                "s13207",
                "--scale",
                "0.03",
                "-L",
                "20",
                "-S",
                "4",
                "-k",
                "8",
            ]
        )
        assert code == 0
        assert "s13207" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_from_cube_file(self, cube_file, capsys):
        code = main(
            [
                "sweep",
                "--tests",
                str(cube_file),
                "--chains",
                "8",
                "-L",
                "20",
                "--speedups",
                "3",
                "12",
                "--segments",
                "4",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TSL improvement" in out
        assert "S=4" in out


class TestAtpgCommand:
    def test_atpg_on_bench_file(self, tmp_path, capsys):
        bench_path = tmp_path / "c17.bench"
        bench_path.write_text(write_bench(c17()))
        out_path = tmp_path / "c17.tests"
        code = main(
            ["atpg", "--bench", str(bench_path), "--output", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        assert "coverage 100.0%" in capsys.readouterr().out

    def test_atpg_on_generated_circuit(self, capsys):
        code = main(["atpg", "--inputs", "10", "--gates", "30", "--seed", "4"])
        assert code == 0
        assert "collapsed faults" in capsys.readouterr().out

    def test_atpg_engine_flags_agree(self, tmp_path, capsys):
        """--no-events and --reference produce the default engine's cubes."""
        outputs = {}
        for flag in ("default", "--no-events", "--reference"):
            out_path = tmp_path / f"{flag.strip('-')}.tests"
            argv = [
                "atpg", "--inputs", "10", "--gates", "40", "--seed", "4",
                "--output", str(out_path),
            ]
            if flag != "default":
                argv.append(flag)
            assert main(argv) == 0
            outputs[flag] = out_path.read_text()
        capsys.readouterr()
        assert outputs["default"] == outputs["--no-events"]
        assert outputs["default"] == outputs["--reference"]


class TestProfileStats:
    def test_compress_dumps_cprofile_stats(self, cube_file, tmp_path, capsys):
        stats_path = tmp_path / "compress.pstats"
        code = main(
            [
                "compress",
                "--tests",
                str(cube_file),
                "--chains",
                "8",
                "-L",
                "20",
                "-S",
                "4",
                "-k",
                "6",
                "--profile-stats",
                str(stats_path),
            ]
        )
        assert code == 0
        assert stats_path.exists()
        out = capsys.readouterr().out
        assert "profile written to" in out
        assert "State Skip LFSR compression" in out
        # The dump must be loadable by the pstats machinery.
        import pstats

        stats = pstats.Stats(str(stats_path))
        assert stats.total_calls > 0


class TestBenchCommand:
    def test_bench_quick_writes_reports(self, tmp_path, capsys):
        out_dir = tmp_path / "bench"
        store_dir = tmp_path / "store"
        code = main(
            [
                "bench",
                "--quick",
                "--repeat",
                "1",
                "--out",
                str(out_dir),
                "--store",
                str(store_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hot-kernel benchmarks" in out
        import json

        encoding = json.loads((out_dir / "BENCH_encoding.json").read_text())
        faultsim = json.loads((out_dir / "BENCH_faultsim.json").read_text())
        faultsim_compiled = json.loads(
            (out_dir / "BENCH_faultsim-compiled.json").read_text()
        )
        atpg = json.loads((out_dir / "BENCH_atpg.json").read_text())
        atpg_events = json.loads((out_dir / "BENCH_atpg-events.json").read_text())
        embedding = json.loads((out_dir / "BENCH_embedding.json").read_text())
        context = json.loads((out_dir / "BENCH_context.json").read_text())
        telemetry = json.loads(
            (out_dir / "BENCH_telemetry-overhead.json").read_text()
        )
        assert encoding["kernel"] == "encoding" and encoding["cases"]
        assert faultsim["kernel"] == "faultsim" and faultsim["cases"]
        assert (
            faultsim_compiled["kernel"] == "faultsim-compiled"
            and faultsim_compiled["cases"]
        )
        assert atpg["kernel"] == "atpg" and atpg["cases"]
        assert atpg_events["kernel"] == "atpg-events" and atpg_events["cases"]
        assert embedding["kernel"] == "embedding" and embedding["cases"]
        assert context["kernel"] == "context" and context["cases"]
        assert telemetry["kernel"] == "telemetry-overhead" and telemetry["cases"]
        all_cases = (
            encoding["cases"]
            + faultsim["cases"]
            + faultsim_compiled["cases"]
            + atpg["cases"]
            + atpg_events["cases"]
            + embedding["cases"]
            + context["cases"]
            + telemetry["cases"]
        )
        for case in all_cases:
            assert case["verified"] is True
            assert case["wall_s"] > 0
            assert case["throughput"] > 0
        # The optimized engines must beat their in-repo references.
        # (telemetry-overhead is excluded: its "speedup" is the
        # enabled/disabled recorder ratio, expected to hover near 1.)
        for report in (faultsim_compiled, atpg, atpg_events, embedding, context):
            for case in report["cases"]:
                assert case["speedup"] > 1.0
        # Results land in the campaign store with elapsed_s populated.
        from repro.campaign.store import ResultStore

        store = ResultStore(store_dir)
        records = store.records()
        assert len(records) == len(all_cases)
        assert all(record.elapsed_s > 0 for record in records)

        # Self-comparison against the report just written: no regression.
        code = main(
            [
                "bench",
                "--quick",
                "--repeat",
                "1",
                "--kernels",
                "faultsim",
                "--out",
                str(tmp_path / "second"),
                "--baseline",
                str(out_dir),
                "--max-regression",
                "1000",
            ]
        )
        assert code == 0
        assert "no regression" in capsys.readouterr().out

        # An impossibly good baseline must trip the regression gate.
        doctored = dict(faultsim)
        doctored["cases"] = [
            dict(case, speedup=1e9, wall_s=1e-9) for case in faultsim["cases"]
        ]
        strict_dir = tmp_path / "strict"
        strict_dir.mkdir()
        (strict_dir / "BENCH_faultsim.json").write_text(json.dumps(doctored))
        code = main(
            [
                "bench",
                "--quick",
                "--repeat",
                "1",
                "--kernels",
                "faultsim",
                "--out",
                str(tmp_path / "third"),
                "--baseline",
                str(strict_dir),
            ]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out
