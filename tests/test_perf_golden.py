"""Golden-equivalence tests for the vectorized hot kernels.

The perf PR rewrote the encoding solvability scan (batched numpy trials +
residual caching) and the fault simulator (wide words + fanout-cone
evaluation) while keeping the *reference* implementations in-tree
(``batch_trials=False`` / ``engine="packed"``).  These tests pin the
contract that made that rewrite safe: on identical inputs the optimized
paths produce bit-identical results, not merely statistically similar ones.
"""

import random


from repro.circuits.atpg import generate_test_set_for_netlist
from repro.circuits.fault_sim import FaultSimulator
from repro.circuits.generator import random_netlist
from repro.circuits.library import carry_ripple_adder, parity_tree
from repro.encoding.encoder import ReseedingEncoder
from repro.gf2.solve import Equation, IncrementalSolver
from repro.testdata.profiles import get_profile
from repro.testdata.synthetic import generate_test_set


# ----------------------------------------------------------------------
# Encoder: batched scan vs reference scan
# ----------------------------------------------------------------------
def _encode_both(test_set, num_chains, lfsr_size, window_length):
    results = []
    for batch_trials in (True, False):
        encoder = ReseedingEncoder(
            num_cells=test_set.num_cells,
            num_scan_chains=num_chains,
            lfsr_size=lfsr_size,
            window_length=window_length,
            batch_trials=batch_trials,
        )
        results.append(encoder.encode(test_set))
    return results


def test_encoder_bit_identical_on_builtin_circuit():
    """ATPG cubes of a built-in circuit: same seeds, same embeddings."""
    netlist = carry_ripple_adder(8)
    atpg = generate_test_set_for_netlist(netlist, fill_seed=3)
    test_set = atpg.test_set
    optimized, reference = _encode_both(
        test_set,
        num_chains=4,
        lfsr_size=test_set.max_specified() + 8,
        window_length=24,
    )
    assert optimized.to_dict() == reference.to_dict()
    assert [record.seed.value for record in optimized.seeds] == [
        record.seed.value for record in reference.seeds
    ]


def test_encoder_bit_identical_on_profile_test_set():
    """Calibrated synthetic cubes: same seeds, same embeddings."""
    profile = get_profile("s9234")
    test_set = generate_test_set(profile, seed=1, scale=0.03)
    optimized, reference = _encode_both(
        test_set,
        num_chains=profile.scan_chains,
        lfsr_size=profile.lfsr_size,
        window_length=40,
    )
    assert optimized.to_dict() == reference.to_dict()


# ----------------------------------------------------------------------
# Fault simulator: wide words + cones vs dense 64-bit reference
# ----------------------------------------------------------------------
def _vectors(netlist, count, seed=11):
    rng = random.Random(seed)
    return [rng.getrandbits(netlist.num_inputs) for _ in range(count)]


def test_faultsim_identical_detection_words_without_dropping():
    """word_width 64 dense vs 256 cones: identical per-fault words."""
    netlist = random_netlist("golden", num_inputs=24, num_gates=120, seed=5)
    vectors = _vectors(netlist, 200)
    reference = FaultSimulator(netlist, word_width=64, engine="packed")
    optimized = FaultSimulator(netlist, word_width=256, engine="events")
    ref_result = reference.simulate_vectors(list(vectors), drop=False)
    opt_result = optimized.simulate_vectors(list(vectors), drop=False)
    # Without dropping, every fault sees every pattern, so the full
    # detection words must agree bit for bit across block widths.
    assert ref_result.detected == opt_result.detected


def test_faultsim_identical_detected_set_with_dropping():
    """With fault dropping the detected-fault sets still coincide."""
    netlist = parity_tree(12)
    vectors = _vectors(netlist, 96, seed=2)
    reference = FaultSimulator(netlist, word_width=64, engine="packed")
    optimized = FaultSimulator(netlist, word_width=256, engine="events")
    reference.simulate_vectors(list(vectors), drop=True)
    optimized.simulate_vectors(list(vectors), drop=True)
    assert set(reference.detected_faults) == set(optimized.detected_faults)
    assert reference.coverage_percent == optimized.coverage_percent


def test_faultsim_input_and_gate_faults_match_on_builtin():
    """Cone evaluation handles input faults and gate faults alike."""
    netlist = carry_ripple_adder(4)
    vectors = _vectors(netlist, 64, seed=9)
    reference = FaultSimulator(netlist, word_width=64, engine="packed")
    optimized = FaultSimulator(netlist, word_width=64, engine="events")
    ref_result = reference.simulate_vectors(list(vectors), drop=False)
    opt_result = optimized.simulate_vectors(list(vectors), drop=False)
    assert ref_result.detected == opt_result.detected


# ----------------------------------------------------------------------
# Solver: batched position trials vs sequential trials
# ----------------------------------------------------------------------
def test_try_positions_matches_sequential_trials():
    rng = random.Random(77)
    for _ in range(40):
        n = rng.randint(2, 130)
        solver = IncrementalSolver(n)
        solver.add_equations(
            Equation(rng.getrandbits(n), rng.getrandbits(1))
            for _ in range(rng.randint(0, n))
        )
        rows_each = rng.randint(1, 10)
        batches = [
            [
                rng.getrandbits(n) | ((1 << n) if rng.getrandbits(1) else 0)
                for _ in range(rows_each)
            ]
            for _ in range(rng.randint(1, 20))
        ]
        sequential = [solver.try_augmented(rows) for rows in batches]
        batched = solver.try_positions(batches)
        for seq, bat in zip(sequential, batched):
            assert seq.outcome == bat.outcome
            if seq.consistent:
                assert seq.new_pivots == bat.new_pivots
                # Committing either trial must leave identical solver state.
                left, right = solver.copy(), solver.copy()
                left.commit(seq)
                right.commit(bat)
                assert left.pivot_columns() == right.pivot_columns()
                assert left.solution().value == right.solution().value


def test_solver_epoch_and_pivot_mask_track_commits():
    solver = IncrementalSolver(8)
    assert solver.epoch == 0
    assert solver.pivot_mask == 0
    trial = solver.try_equations([Equation(0b1010, 1)])
    solver.commit(trial)
    assert solver.epoch == 1
    assert solver.pivot_mask == 1 << 3
    # A redundant batch commits nothing and must not advance the epoch.
    redundant = solver.try_equations([Equation(0b1010, 1)])
    assert redundant.consistent and redundant.new_pivots == 0
    solver.commit(redundant)
    assert solver.epoch == 1
