"""Golden-equivalence tests of the packed ternary core and its consumers.

Every optimized path introduced with the two-word (value, care) engine is
checked bit for bit against the pre-existing reference implementation it
replaced:

* packed ``simulate_ternary`` vs the dict-based reference on randomized
  netlists and randomized partial (0/1/X) assignments;
* the packed fault-injection overlay (PODEM's faulty machine, and the fault
  simulator's dense path) vs the reference faulty evaluation;
* the event-driven incremental engine (assign/undo over the levelized
  event queue) vs from-scratch packed evaluation, fault overlays included;
* full PODEM ATPG: event-driven engine vs full-pass packed engine vs dict
  engine, cube for cube;
* the batched drop-simulation block vs the per-pattern fill loop, and the
  returned detections vs the fault simulator's own bookkeeping;
* the uint64-blocked seed-window expansion vs the integer expansion;
* the vectorized embedding map vs the pure-Python scan on a small grid;
* the segment-batched decompressor simulation vs the clock-level replay.
"""

import random

import numpy as np
import pytest

from repro import pipeline
from repro.circuits.atpg import PodemAtpg
from repro.circuits.faults import collapse_faults
from repro.circuits.generator import random_netlist
from repro.circuits.library import builtin_circuits
from repro.circuits.simulator import (
    simulate,
    simulate_ternary,
    simulate_ternary_reference,
)
from repro.circuits.ternary import ternary_state_to_dict
from repro.config import CompressionConfig
from repro.context import CompressionContext
from repro.decompressor.architecture import simulate_decompression
from repro.skip.segments import WindowSegmentation
from repro.skip.selection import (
    build_embedding_map,
    build_embedding_map_reference,
)
from repro.testdata.cube import TestCube
from repro.testdata.profiles import get_profile
from repro.testdata.synthetic import generate_test_set


def _random_assignment(rng, netlist, specified_fraction):
    """A partial 0/1 assignment over a random subset of the inputs."""
    return {
        net: rng.getrandbits(1)
        for net in netlist.inputs
        if rng.random() < specified_fraction
    }


# ----------------------------------------------------------------------
# Packed ternary engine vs dict reference
# ----------------------------------------------------------------------
class TestTernaryEngineGolden:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_randomized_netlists_and_assignments(self, seed):
        rng = random.Random(seed)
        netlist = random_netlist(
            f"rand{seed}",
            num_inputs=rng.randint(8, 24),
            num_gates=rng.randint(40, 160),
            seed=seed,
        )
        for fraction in (0.0, 0.3, 0.7, 1.0):
            assignment = _random_assignment(rng, netlist, fraction)
            assert simulate_ternary(netlist, assignment) == (
                simulate_ternary_reference(netlist, assignment)
            )

    def test_builtin_circuits_all_x(self):
        for netlist in builtin_circuits():
            assert simulate_ternary(netlist, {}) == (
                simulate_ternary_reference(netlist, {})
            )

    def test_fully_specified_matches_binary(self):
        rng = random.Random(11)
        netlist = random_netlist("randb", num_inputs=12, num_gates=80, seed=11)
        for _ in range(10):
            vector = {net: rng.getrandbits(1) for net in netlist.inputs}
            ternary = simulate_ternary(netlist, vector)
            assert ternary == simulate(netlist, vector)


class TestFaultOverlayGolden:
    @pytest.mark.parametrize("seed", [5, 6])
    def test_dual_state_faulty_machine_matches_reference(self, seed):
        rng = random.Random(seed)
        netlist = random_netlist(
            f"randf{seed}", num_inputs=12, num_gates=70, seed=seed
        )
        atpg = PodemAtpg(netlist)
        faults = collapse_faults(netlist)
        for fault in rng.sample(faults, min(25, len(faults))):
            assignment = _random_assignment(rng, netlist, 0.4)
            values, cares = atpg._dual_state(fault, assignment)
            faulty = ternary_state_to_dict(atpg._plan, values, cares, pattern=1)
            good = ternary_state_to_dict(atpg._plan, values, cares, pattern=0)
            assert faulty == atpg._faulty_ternary(fault, assignment)
            assert good == simulate_ternary_reference(netlist, assignment)


class TestEventEngineGolden:
    """The incremental engine state equals from-scratch packed evaluation."""

    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_random_assign_undo_walk_matches_full_eval(self, seed):
        from repro.circuits.ternary import (
            TernaryEventEngine,
            eval_ternary,
            packed_plan,
            seed_ternary_inputs,
        )

        rng = random.Random(seed)
        netlist = random_netlist(
            f"randev{seed}",
            num_inputs=rng.randint(8, 20),
            num_gates=rng.randint(40, 140),
            seed=seed,
        )
        plan = packed_plan(netlist)
        engine = TernaryEventEngine(plan, 1)
        assignment = {}
        tokens = []
        for _ in range(120):
            action = rng.random()
            if action < 0.6 or not tokens:
                net = rng.choice(netlist.inputs)
                bit = rng.getrandbits(1)
                tokens.append((net, assignment.get(net), engine.checkpoint()))
                engine.assign(plan.index[net], bit)
                assignment[net] = bit
            else:
                net, previous, token = tokens.pop()
                engine.undo(token)
                if previous is None:
                    assignment.pop(net, None)
                else:
                    assignment[net] = previous
            values, cares = seed_ternary_inputs(plan, assignment)
            eval_ternary(plan, values, cares, 1)
            assert engine.values == values
            assert engine.cares == cares

    @pytest.mark.parametrize("seed", [24, 25])
    def test_engine_with_fault_overlay_matches_dual_state(self, seed):
        from repro.circuits.atpg import PodemAtpg

        rng = random.Random(seed)
        netlist = random_netlist(
            f"randov{seed}", num_inputs=12, num_gates=70, seed=seed
        )
        atpg = PodemAtpg(netlist)
        plan = atpg._plan
        faults = collapse_faults(netlist)
        for fault in rng.sample(faults, min(10, len(faults))):
            # One persistent engine serves every fault: the overlay is
            # re-forced on the rewound baseline and released afterwards.
            engine, token = atpg._event_engine(fault)
            assignment = {}
            for _ in range(12):
                net = rng.choice(netlist.inputs)
                bit = rng.getrandbits(1)
                engine.assign(plan.index[net], bit)
                assignment[net] = bit
                values, cares = atpg._dual_state(fault, assignment)
                assert engine.values == values
                assert engine.cares == cares
            # release_force rewinds past the assigns too (its token
            # predates them), restoring the shared baseline.
            engine.release_force(token)

    @pytest.mark.parametrize("seed", [3, 4, 9, 16])
    def test_reforce_release_random_walk_matches_reference(self, seed):
        """assign/undo/reforce/release walks vs from-scratch evaluation.

        Reuses the fuzz oracle's differential walk on fixed seeds: odd
        seeds drive the 2-bit table propagation, even seeds the generic
        fused loop, overlays included.
        """
        from repro.fuzz.generators import FuzzCase
        from repro.fuzz.oracle import _check_event_propagate

        case = FuzzCase(
            check="event-propagate",
            seed=seed,
            params={"num_inputs": 10, "num_gates": 70, "steps": 110},
        )
        assert _check_event_propagate(case) is None

    @pytest.mark.parametrize("seed", [31, 32])
    def test_incremental_frontier_matches_full_scan(self, seed, monkeypatch):
        """The maintained D-frontier vs a recomputation from the state.

        At every objective call of a full event-driven run, the
        incrementally maintained difference set, per-row difference-input
        counts, frontier rows and difference outputs must equal what a
        full scan over the live state lists derives.
        """
        from repro.circuits import atpg as atpg_mod

        netlist = random_netlist(
            f"frontier{seed}", num_inputs=14, num_gates=90, seed=seed
        )
        atpg = atpg_mod.PodemAtpg(netlist)
        plan = atpg._plan
        original = atpg_mod.PodemAtpg._objective_events
        calls = []

        def checked(self, fault, values, cares):
            diff = {
                i
                for i in range(plan.num_nets)
                if cares[i] & 0b11 == 0b11
                and (values[i] ^ (values[i] >> 1)) & 1
            }
            assert self._diff == diff
            assert self._diff_outputs == diff & set(plan.output_indices)
            for position, (_out, _op, inputs, _inv) in enumerate(plan.rows):
                count = sum(1 for net in set(inputs) if net in diff)
                assert self._diff_in_count[position] == count
                assert (position in self._frontier_rows) == (count > 0)
            calls.append(1)
            return original(self, fault, values, cares)

        monkeypatch.setattr(atpg_mod.PodemAtpg, "_objective_events", checked)
        atpg.run()
        assert calls, "the run never reached an objective"

    def test_engine_reuse_matches_fresh_engine_runs(self):
        """One persistent engine over many faults vs a fresh one per fault.

        The checkpoint-rewind reuse must leave PODEM's decision tree
        untouched: identical cubes, decision counts and backtrack counts
        as an engine built from scratch for each fault.
        """
        netlist = random_netlist("reuse44", num_inputs=12, num_gates=80, seed=44)
        faults = collapse_faults(netlist)
        shared = PodemAtpg(netlist)
        reused = False
        for fault in faults[:40]:
            cube_shared = shared.generate_cube(fault)
            reused = reused or shared._engine_reused
            shared_stats = (shared._decisions, shared._backtracks)
            fresh = PodemAtpg(netlist)
            cube_fresh = fresh.generate_cube(fault)
            assert cube_shared == cube_fresh
            assert shared_stats == (fresh._decisions, fresh._backtracks)
        assert reused, "the shared instance never reused its engine"


def _assert_results_identical(left, right):
    assert left.test_set.cubes == right.test_set.cubes
    assert left.detected == right.detected
    assert left.redundant == right.redundant
    assert left.aborted == right.aborted
    assert left.total_faults == right.total_faults


class TestPodemGolden:
    @pytest.mark.parametrize("seed", [7, 8])
    def test_packed_and_reference_engines_identical(self, seed):
        netlist = random_netlist(
            f"randp{seed}", num_inputs=16, num_gates=90, seed=seed
        )
        packed = PodemAtpg(netlist, engine="packed").run()
        reference = PodemAtpg(netlist, engine="reference").run()
        _assert_results_identical(packed, reference)

    @pytest.mark.parametrize("seed", [7, 8, 9, 10])
    def test_event_driven_and_full_pass_engines_identical(self, seed):
        netlist = random_netlist(
            f"randq{seed}", num_inputs=18, num_gates=110, seed=seed
        )
        events = PodemAtpg(netlist, engine="events").run()
        full_pass = PodemAtpg(netlist, engine="packed").run()
        _assert_results_identical(events, full_pass)

    @pytest.mark.parametrize("seed", [12, 13, 14])
    def test_batched_and_per_pattern_drops_identical(self, seed):
        netlist = random_netlist(
            f"randd{seed}", num_inputs=20, num_gates=120, seed=seed
        )
        atpg = PodemAtpg(netlist)
        batched = atpg.run(fill_seed=seed, fills="batched")
        per_pattern = atpg.run(fill_seed=seed, fills="per-pattern")
        _assert_results_identical(batched, per_pattern)

    def test_batched_drops_identical_without_fault_dropping(self):
        netlist = random_netlist("randnd", num_inputs=14, num_gates=60, seed=15)
        atpg = PodemAtpg(netlist)
        batched = atpg.run(fault_dropping=False, fills="batched")
        per_pattern = atpg.run(fault_dropping=False, fills="per-pattern")
        _assert_results_identical(batched, per_pattern)

    def test_small_fill_block_forces_mid_run_flushes(self):
        """A tiny word width makes the block flush many times mid-run."""
        from unittest.mock import patch

        from repro.circuits.fault_sim import FaultSimulator

        netlist = random_netlist("randfl", num_inputs=16, num_gates=80, seed=16)
        atpg = PodemAtpg(netlist)
        per_pattern = atpg.run(fills="per-pattern")
        original_init = FaultSimulator.__init__

        def tiny_width_init(self, *args, **kwargs):
            kwargs["word_width"] = 3
            original_init(self, *args, **kwargs)

        with patch.object(FaultSimulator, "__init__", tiny_width_init):
            batched = atpg.run(fills="batched")
        _assert_results_identical(batched, per_pattern)

    def test_masked_fill_force_count_reconciles(self, monkeypatch):
        """Force-counted targets must be dropped from the simulator too.

        Every fill is made to mask every fault, so each generated cube's
        target goes through the force-count path.  ``run`` asserts its
        detected list against ``FaultSimulator.detected_faults`` at the
        end; before the reconcile fix, that disagreed (the simulator kept
        force-counted targets as remaining).
        """
        from repro.circuits import fault_sim as fault_sim_module

        monkeypatch.setattr(
            fault_sim_module.FaultSimulator,
            "_detect_block",
            lambda self, good, num_patterns: {},
        )
        monkeypatch.setattr(
            fault_sim_module.FaultSimulator,
            "detection_word",
            lambda self, good, num_patterns, fault: 0,
        )
        netlist = random_netlist("randmk", num_inputs=14, num_gates=70, seed=17)
        atpg = PodemAtpg(netlist)
        for fills in ("batched", "per-pattern"):
            result = atpg.run(fills=fills)
            # Nothing is ever detected by simulation, so the detected list
            # is exactly the (force-counted) targets of the generated cubes.
            assert len(result.detected) == len(result.test_set.cubes)


# ----------------------------------------------------------------------
# Packed windows, cubes and the embedding map
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def encoded():
    profile = get_profile("s9234")
    test_set = generate_test_set(profile, seed=1, scale=0.06)
    config = CompressionConfig(
        window_length=60,
        segment_size=5,
        num_scan_chains=profile.scan_chains,
        lfsr_size=profile.lfsr_size,
    )
    return pipeline.encode(
        test_set, config, context=CompressionContext(), verify=True
    )


class TestPackedWindowsGolden:
    def test_packed_expansion_matches_integer_expansion(self, encoded):
        equations = encoded.substrate.equations
        seeds = [record.seed for record in encoded.encoding.seeds]
        packed = equations.expand_seeds_packed(seeds)
        windows = equations.expand_seeds(seeds)
        num_cells = equations.architecture.num_cells
        assert packed.shape == (
            len(seeds),
            equations.window_length,
            (num_cells + 63) // 64,
        )
        for s, window in enumerate(windows):
            for v, vector in enumerate(window):
                blocks = packed[s, v]
                rebuilt = sum(
                    int(word) << (64 * w) for w, word in enumerate(blocks)
                )
                assert rebuilt == vector

    def test_cube_packed_words_match_masks(self):
        cube = TestCube.from_string("1X0" * 50)  # 150 cells -> 3 words
        care, value = cube.packed_words()
        assert care.dtype == np.uint64 and len(care) == 3
        assert sum(int(w) << (64 * i) for i, w in enumerate(care)) == cube.care_mask
        assert (
            sum(int(w) << (64 * i) for i, w in enumerate(value)) == cube.care_value
        )


class TestEmbeddingMapGolden:
    @pytest.mark.parametrize("segment_size", [3, 5, 12, 60])
    def test_vectorized_map_equals_reference(self, encoded, segment_size):
        equations = encoded.substrate.equations
        segmentation = WindowSegmentation(
            encoded.encoding.window_length, segment_size
        )
        vectorized = build_embedding_map(
            encoded.encoding, encoded.test_set, equations, segmentation
        )
        reference = build_embedding_map_reference(
            encoded.encoding, encoded.test_set, equations, segmentation
        )
        assert vectorized.cube_segments == reference.cube_segments
        assert vectorized.segment_cubes == reference.segment_cubes

    def test_vectorized_map_from_cached_windows(self, encoded):
        """Packed, integer and self-expanded inputs all yield the same map."""
        equations = encoded.substrate.equations
        seeds = [record.seed for record in encoded.encoding.seeds]
        segmentation = WindowSegmentation(encoded.encoding.window_length, 5)
        context = encoded.context
        from_packed = build_embedding_map(
            encoded.encoding,
            encoded.test_set,
            equations,
            segmentation,
            windows_packed=context.packed_windows(encoded.substrate, seeds),
        )
        from_integers = build_embedding_map(
            encoded.encoding,
            encoded.test_set,
            equations,
            segmentation,
            windows=context.expanded_windows(encoded.substrate, seeds),
        )
        assert from_packed.cube_segments == from_integers.cube_segments
        assert from_packed.segment_cubes == from_integers.segment_cubes


# ----------------------------------------------------------------------
# Batched decompressor vs clock-level reference
# ----------------------------------------------------------------------
class TestBatchedDecompressorGolden:
    @pytest.mark.parametrize("segment_size,speedup", [(5, 3), (10, 12)])
    def test_batched_outcome_identical(self, encoded, segment_size, speedup):
        reduction = pipeline.reduce(
            encoded,
            encoded.config.with_updates(
                segment_size=segment_size, speedup=speedup
            ),
        )
        args = (
            encoded.encoding,
            reduction,
            encoded.substrate.lfsr.transition,
            encoded.substrate.phase_shifter,
            encoded.substrate.architecture,
        )
        batched = simulate_decompression(*args, engine="events")
        reference = simulate_decompression(*args, engine="reference")
        assert batched.seeds_applied == reference.seeds_applied
        assert batched.vectors_applied == reference.vectors_applied
        assert batched.useful_vectors == reference.useful_vectors
        assert batched.lfsr_clocks == reference.lfsr_clocks
        assert batched.skip_clocks == reference.skip_clocks
        assert batched.group_sizes == reference.group_sizes
        assert batched.covers(encoded.test_set)
