"""Tests for test sets, profiles, synthetic generation and literature data."""

import pytest

from repro.testdata import literature
from repro.testdata.cube import TestCube
from repro.testdata.profiles import (
    ISCAS89_PROFILES,
    custom_profile,
    get_profile,
    profile_names,
)
from repro.testdata.synthetic import SyntheticTestSetGenerator, generate_test_set
from repro.testdata.test_set import TestSet


def small_set():
    return TestSet(
        "demo",
        [
            TestCube.from_string("1X0X"),
            TestCube.from_string("XX01"),
            TestCube.from_string("0X1X"),
            TestCube.from_string("1XXX"),
        ],
    )


class TestPackedMatrices:
    def test_matches_per_cube_stacking(self):

        ts = small_set()
        cares, values = ts.packed_matrices()
        assert cares.shape == (len(ts), 1)
        for i, cube in enumerate(ts):
            assert (cares[i] == cube.packed_words()[0]).all()
            assert (values[i] == cube.packed_words()[1]).all()
        assert not cares.flags.writeable
        assert not values.flags.writeable

    def test_cached_per_instance_and_across_equal_sets(self):
        ts = small_set()
        first = ts.packed_matrices()
        assert ts.packed_matrices() is first
        # A re-parsed copy (same name, cells and cubes -> same
        # fingerprint) shares the exact same matrix pair via the
        # class-level cache.
        copy = TestSet.from_text(ts.to_text())
        assert copy.fingerprint() == ts.fingerprint()
        assert copy.packed_matrices() is first
        # A different set gets its own pair.
        other = TestSet("other", [TestCube.from_string("01XX")])
        assert other.packed_matrices() is not first

    def test_fingerprint_memoised(self):
        ts = small_set()
        assert ts.fingerprint() == ts.fingerprint()
        assert ts._fingerprint is not None


class TestTestSet:
    def test_basic_properties(self):
        ts = small_set()
        assert len(ts) == 4
        assert ts.num_cells == 4
        assert ts[0].to_string() == "1X0X"
        assert [c.to_string() for c in ts] == ["1X0X", "XX01", "0X1X", "1XXX"]

    def test_width_consistency_enforced(self):
        with pytest.raises(ValueError):
            TestSet("bad", [TestCube.from_string("1X"), TestCube.from_string("1XX")])

    def test_empty_cube_rejected(self):
        with pytest.raises(ValueError):
            TestSet("bad", [TestCube.from_string("XXX")])

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            TestSet("bad", [])

    def test_stats(self):
        stats = small_set().stats()
        assert stats.num_cubes == 4
        assert stats.max_specified == 2
        assert stats.min_specified == 1
        assert stats.total_specified == 7
        assert stats.mean_specified == pytest.approx(7 / 4)

    def test_sorted_by_specified(self):
        ordered = small_set().sorted_by_specified()
        counts = [c.specified_count() for c in ordered]
        assert counts == sorted(counts, reverse=True)

    def test_compacted_covers_all_cubes(self):
        ts = small_set()
        compacted = ts.compacted()
        assert len(compacted) <= len(ts)
        # Every original cube must be contained in some compacted cube.
        for cube in ts:
            assert any(merged.contains(cube) for merged in compacted)

    def test_subset(self):
        assert len(small_set().subset(2)) == 2
        assert len(small_set().subset(100)) == 4
        with pytest.raises(ValueError):
            small_set().subset(0)

    def test_coverage_checks(self):
        ts = small_set()
        # Vector 0b1001: bit0=1, bit1=0, bit2=0, bit3=1
        # covers "1X0X" and "XX01" and "1XXX" but not "0X1X".
        assert ts.uncovered_cubes([0b1001]) == [2]
        assert not ts.all_covered([0b1001])
        assert ts.all_covered([0b1001, 0b0100])

    def test_text_roundtrip(self):
        ts = small_set()
        text = ts.to_text()
        parsed = TestSet.from_text(text)
        assert parsed.name == "demo"
        assert [c.to_string() for c in parsed] == [c.to_string() for c in ts]


class TestProfiles:
    def test_all_paper_circuits_present(self):
        assert profile_names() == ["s9234", "s13207", "s15850", "s38417", "s38584"]
        for name in profile_names():
            assert name in ISCAS89_PROFILES

    def test_profile_fields_consistent_with_table1(self):
        for name, profile in ISCAS89_PROFILES.items():
            assert profile.lfsr_size == literature.TABLE1[name]["lfsr"]
            assert profile.max_specified <= profile.lfsr_size
            assert profile.scan_chains == 32
            assert profile.chain_length == -(-profile.scan_cells // 32)

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError):
            get_profile("s27")

    def test_scaled_profile(self):
        profile = get_profile("s13207")
        scaled = profile.scaled(0.1)
        assert scaled.num_cubes == max(20, round(profile.num_cubes * 0.1))
        assert scaled.lfsr_size == profile.lfsr_size
        with pytest.raises(ValueError):
            profile.scaled(0.0)

    def test_custom_profile(self):
        profile = custom_profile(
            "mycore", scan_cells=200, num_cubes=50, max_specified=20,
            mean_specified=8.0,
        )
        assert profile.lfsr_size == 24
        with pytest.raises(ValueError):
            custom_profile("bad", 10, 5, max_specified=20, mean_specified=5)
        with pytest.raises(ValueError):
            custom_profile(
                "bad", 100, 5, max_specified=20, mean_specified=5, lfsr_size=10
            )


class TestSyntheticGeneration:
    def test_generated_set_matches_profile(self):
        profile = get_profile("s13207").scaled(0.1)
        ts = generate_test_set(profile, seed=3)
        assert len(ts) == profile.num_cubes
        assert ts.num_cells == profile.scan_cells
        assert ts.max_specified() == profile.max_specified

    def test_generation_is_reproducible(self):
        profile = get_profile("s9234").scaled(0.1)
        a = SyntheticTestSetGenerator(profile, seed=11).generate()
        b = SyntheticTestSetGenerator(profile, seed=11).generate()
        assert [c.to_string() for c in a] == [c.to_string() for c in b]

    def test_different_seeds_differ(self):
        profile = get_profile("s9234").scaled(0.1)
        a = SyntheticTestSetGenerator(profile, seed=1).generate()
        b = SyntheticTestSetGenerator(profile, seed=2).generate()
        assert [c.to_string() for c in a] != [c.to_string() for c in b]

    def test_specified_counts_within_bounds(self):
        profile = get_profile("s15850").scaled(0.2)
        ts = generate_test_set(profile, seed=5)
        for cube in ts:
            assert 2 <= cube.specified_count() <= profile.max_specified

    def test_mean_specified_close_to_target(self):
        profile = get_profile("s13207").scaled(0.5)
        ts = generate_test_set(profile, seed=9)
        mean = ts.stats().mean_specified
        assert 0.6 * profile.mean_specified <= mean <= 1.6 * profile.mean_specified

    def test_scale_argument(self):
        profile = get_profile("s38584")
        ts = generate_test_set(profile, seed=1, scale=0.05)
        assert len(ts) == max(20, round(profile.num_cubes * 0.05))


class TestLiterature:
    def test_table1_consistency(self):
        # TDV of classical reseeding is seeds x LFSR size, so it must be a
        # multiple of the LFSR size, and equal to TSL x LFSR size for L = 1.
        for name, data in literature.TABLE1.items():
            lfsr = data["lfsr"]
            assert data[1]["tdv"] == data[1]["tsl"] * lfsr
            for L in (50, 200, 500):
                assert data[L]["tdv"] % lfsr == 0
                # Window-based TSL is (number of seeds) x L.
                assert data[L]["tsl"] % L == 0
                assert data[L]["tsl"] == (data[L]["tdv"] // lfsr) * L

    def test_table2_improvements_match_formula(self):
        for circuit, by_l in literature.TABLE2.items():
            for L, row in by_l.items():
                computed = literature.tsl_improvement(row["prop"], row["orig"])
                assert abs(computed - row["impr"]) < 1.5  # paper rounds to 1%
                assert row["orig"] == literature.TABLE1[circuit][L]["tsl"]

    def test_table3_improvements_match_formula(self):
        for circuit, impr in literature.TABLE3_IMPROVEMENTS.items():
            prop_tsl = literature.TABLE3[circuit]["prop"]["tsl"]
            for method, value in impr.items():
                ref_tsl = literature.TABLE3[circuit][method]["tsl"]
                computed = literature.tsl_improvement(prop_tsl, ref_tsl)
                assert abs(computed - value) < 0.2

    def test_table4_prop_matches_tables_1_and_2(self):
        for circuit, methods in literature.TABLE4.items():
            assert methods["classical"] == (
                literature.TABLE1[circuit][1]["tsl"],
                literature.TABLE1[circuit][1]["tdv"],
            )
            assert methods["prop"] == (
                literature.TABLE2[circuit][200]["prop"],
                literature.TABLE1[circuit][200]["tdv"],
            )

    def test_tsl_improvement_validation(self):
        with pytest.raises(ValueError):
            literature.tsl_improvement(10, 0)
        assert literature.tsl_improvement(50, 100) == pytest.approx(50.0)
