"""Tests of the telemetry subsystem: spans, metrics, events, exporters.

Covers the recorder API (nesting, timing, attributes), the histogram
bucketing edge cases, cross-process span collection through the campaign
runner's pool queue, Chrome-trace JSON validity, the NullRecorder disabled
path, the ContextStats façade over the metrics registry, the result
store's persistent append handle, and the ``repro stats`` / bench-meta
surfaces.
"""

import json
import time

import pytest

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec, TestSource
from repro.campaign.store import ResultStore, StoredResult
from repro.config import CompressionConfig
from repro.context import CompressionContext, ContextStats
from repro.telemetry import (
    Histogram,
    MetricsRegistry,
    NullRecorder,
    Recorder,
    chrome_trace,
    environment_meta,
    get_recorder,
    persist_recorder,
    read_event_log,
    recorder_event_lines,
    summary_table,
    use_recorder,
    write_event_log,
)
from repro.telemetry.metrics import _bucket_exponent


# ----------------------------------------------------------------------
# Histogram bucketing
# ----------------------------------------------------------------------
class TestHistogram:
    def test_bucket_exponent_powers_of_two(self):
        # Bucket e covers (2^(e-1), 2^e]: an exact power of two belongs to
        # its own bucket, not the next one up.
        assert _bucket_exponent(1.0) == 0
        assert _bucket_exponent(2.0) == 1
        assert _bucket_exponent(1024.0) == 10
        assert _bucket_exponent(3.0) == 2
        assert _bucket_exponent(0.5) == -1

    def test_bucket_exponent_clamps(self):
        assert _bucket_exponent(1e-30) == -20
        assert _bucket_exponent(1e30) == 30

    def test_zero_and_negative_observations(self):
        histogram = Histogram()
        histogram.observe(0)
        histogram.observe(-5)
        assert histogram.count == 2
        assert histogram.min == -5
        assert histogram.max == 0
        # Non-positive values land in the bottom bucket instead of crashing.
        assert sum(histogram.buckets.values()) == 2

    def test_mean_and_quantiles(self):
        histogram = Histogram()
        for value in [1, 2, 4, 8, 100]:
            histogram.observe(value)
        assert histogram.mean == pytest.approx(23.0)
        assert histogram.quantile(0.0) <= histogram.quantile(1.0)
        # p100 is bounded by the bucket upper edge of the largest value.
        assert histogram.quantile(1.0) >= 100

    def test_merge_is_bucketwise(self):
        a, b = Histogram(), Histogram()
        for value in [1, 2, 3]:
            a.observe(value)
        for value in [3, 1000]:
            b.observe(value)
        a.merge(b.to_dict())
        assert a.count == 5
        assert a.total == pytest.approx(1009.0)
        assert a.max == 1000
        assert a.min == 1

    def test_roundtrip_and_diff(self):
        histogram = Histogram()
        for value in [0.001, 5, 7]:
            histogram.observe(value)
        clone = Histogram.from_dict(histogram.to_dict())
        assert clone.to_dict() == histogram.to_dict()
        later = Histogram.from_dict(histogram.to_dict())
        later.observe(9)
        delta = Histogram.diff(histogram.to_dict(), later.to_dict())
        assert delta["count"] == 1
        assert delta["sum"] == pytest.approx(9.0)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("jobs", 2)
        registry.inc("jobs")
        registry.set_gauge("workers", 4)
        registry.set_gauge("workers", 2)
        registry.observe("wait_s", 0.5)
        assert registry.counter_value("jobs") == 3
        assert registry.gauges["workers"] == 2
        assert registry.histograms["wait_s"].count == 1

    def test_delta_and_merge(self):
        registry = MetricsRegistry()
        registry.inc("a", 5)
        before = registry.snapshot_full()
        registry.inc("a", 2)
        registry.observe("h", 3)
        delta = MetricsRegistry.delta(before, registry.snapshot_full())
        assert delta["counters"] == {"a": 2}
        assert delta["histograms"]["h"]["count"] == 1
        other = MetricsRegistry()
        other.merge(delta)
        other.merge(delta)
        assert other.counter_value("a") == 4
        assert other.histograms["h"].count == 2

    def test_hit_rates_pairs_hits_and_misses(self):
        registry = MetricsRegistry()
        registry.inc("encoding_hits", 3)
        registry.inc("encoding_misses", 1)
        registry.inc("unrelated", 7)
        rates = registry.hit_rates()
        assert rates["encoding"] == (3, 4, pytest.approx(0.75))
        assert "unrelated" not in rates


# ----------------------------------------------------------------------
# Spans and the recorder
# ----------------------------------------------------------------------
class TestRecorder:
    def test_span_nesting_and_timing(self):
        recorder = Recorder(run_id="t")
        with recorder.span("outer", circuit="c1") as outer:
            time.sleep(0.01)
            with recorder.span("inner") as inner:
                inner.set("depth", 2)
        assert len(recorder.spans) == 2
        by_name = {span["name"]: span for span in recorder.spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["outer"]["duration_s"] >= by_name["inner"]["duration_s"]
        assert by_name["outer"]["duration_s"] >= 0.01
        assert by_name["outer"]["attrs"] == {"circuit": "c1"}
        assert by_name["inner"]["attrs"] == {"depth": 2}
        assert outer.span_id != inner.span_id

    def test_span_closed_on_exception(self):
        recorder = Recorder(run_id="t")
        with pytest.raises(RuntimeError):
            with recorder.span("failing"):
                raise RuntimeError("boom")
        assert len(recorder.spans) == 1
        assert recorder.current_span_id() is None

    def test_collect_mark_and_absorb(self):
        worker = Recorder(run_id="run")
        with worker.span("first"):
            pass
        mark = worker.mark()
        with worker.span("second"):
            worker.counter("jobs")
        batch = worker.collect(mark)
        assert [span["name"] for span in batch["spans"]] == ["second"]
        assert batch["metrics"]["counters"] == {"jobs": 1}
        parent = Recorder(run_id="run")
        parent.absorb(batch)
        parent.absorb(None)  # tolerated
        assert [span["name"] for span in parent.spans] == ["second"]
        assert parent.metrics.counter_value("jobs") == 1

    def test_span_ids_unique_across_recorders(self):
        first, second = Recorder(), Recorder()
        with first.span("a"):
            pass
        with second.span("a"):
            pass
        assert first.spans[0]["span_id"] != second.spans[0]["span_id"]


class TestNullRecorder:
    def test_disabled_and_noop(self):
        null = NullRecorder()
        assert null.enabled is False
        # repro-lint: disable=span-pairing
        span = null.span("anything", attr=1)
        with span as inner:
            inner.set("ignored", True)
        # One shared object, no allocation per span.
        # repro-lint: disable=span-pairing
        assert null.span("other") is span
        null.counter("c")
        null.gauge("g", 1)
        null.observe("h", 1)
        null.event("kind", {"x": 1})

    def test_default_active_recorder_is_null(self):
        assert get_recorder().enabled is False

    def test_use_recorder_restores_previous(self):
        recorder = Recorder()
        with use_recorder(recorder):
            assert get_recorder() is recorder
        assert get_recorder().enabled is False


# ----------------------------------------------------------------------
# ContextStats façade over the registry
# ----------------------------------------------------------------------
class TestContextStatsFacade:
    def test_bound_registry_receives_counts_and_timings(self):
        registry = MetricsRegistry()
        stats = ContextStats(registry=registry)
        stats.count("encoding_hits")
        stats.add_timing("encode", 0.5)
        assert registry.counter_value("encoding_hits") == 1
        assert registry.counter_value("encode_s") == pytest.approx(0.5)
        assert stats.counters == {"encoding_hits": 1}
        assert stats.timings == {"encode": pytest.approx(0.5)}
        snapshot = stats.snapshot()
        assert snapshot["encoding_hits"] == 1
        assert snapshot["encode_s"] == pytest.approx(0.5)

    def test_recorder_bound_context_collects_pipeline_metrics(self):
        from repro.pipeline import compress
        from repro.testdata.synthetic import generate_test_set
        from repro.testdata.profiles import get_profile

        recorder = Recorder(run_id="flow")
        profile = get_profile("s13207")
        test_set = generate_test_set(profile, seed=1, scale=0.05)
        config = CompressionConfig(
            window_length=40,
            segment_size=10,
            speedup=6,
            num_scan_chains=profile.scan_chains,
            lfsr_size=profile.lfsr_size,
        )
        context = CompressionContext(
            stats=ContextStats(registry=recorder.metrics)
        )
        with use_recorder(recorder):
            compress(test_set, config, verify=True, context=context)
        names = {span["name"] for span in recorder.spans}
        assert {"stage.encode", "stage.reduce", "stage.hardware"} <= names
        counters = recorder.metrics.counters
        assert counters["solver_trials"] > 0
        assert counters["solver_commits"] > 0
        assert counters["encode_s"] > 0
        assert "encoding_misses" in counters


# ----------------------------------------------------------------------
# ATPG / fault-sim instrumentation
# ----------------------------------------------------------------------
class TestCircuitTelemetry:
    def test_atpg_counters_and_histograms(self):
        from repro.circuits.atpg import PodemAtpg
        from repro.circuits.generator import random_netlist

        netlist = random_netlist("t", num_inputs=16, num_gates=50, seed=3)
        recorder = Recorder(run_id="atpg")
        with use_recorder(recorder):
            result = PodemAtpg(netlist).run()
        counters = recorder.metrics.counters
        assert counters["atpg.faults_targeted"] > 0
        assert counters["atpg.decisions"] > 0
        assert counters["faultsim.blocks"] >= 1
        assert counters["faultsim.patterns"] >= len(result.test_set.cubes)
        histograms = recorder.metrics.histograms
        assert histograms["atpg.d_frontier"].count > 0
        assert histograms["faultsim.dropped_per_block"].count >= 1
        spans = [span for span in recorder.spans if span["name"] == "atpg.run"]
        assert len(spans) == 1
        assert spans[0]["attrs"]["detected"] == len(result.detected)

    def test_atpg_results_identical_with_and_without_recorder(self):
        from repro.circuits.atpg import PodemAtpg
        from repro.circuits.generator import random_netlist

        netlist = random_netlist("t", num_inputs=16, num_gates=50, seed=3)
        plain = PodemAtpg(netlist).run()
        with use_recorder(Recorder()):
            traced = PodemAtpg(netlist).run()
        assert plain.test_set.cubes == traced.test_set.cubes
        assert plain.detected == traced.detected
        assert plain.redundant == traced.redundant


# ----------------------------------------------------------------------
# Event log
# ----------------------------------------------------------------------
class TestEventLog:
    def test_roundtrip_and_schema(self, tmp_path):
        recorder = Recorder(run_id="r1")
        with recorder.span("work"):
            recorder.event("checkpoint", {"step": 1})
        lines = recorder_event_lines(recorder)
        assert all(
            set(record) == {"ts", "run_id", "span_id", "kind", "payload"}
            for record in lines
        )
        kinds = [record["kind"] for record in lines]
        assert "checkpoint" in kinds and "span" in kinds
        # The event was recorded inside the span.
        event = next(r for r in lines if r["kind"] == "checkpoint")
        span = next(r for r in lines if r["kind"] == "span")
        assert event["span_id"] == span["payload"]["span_id"]
        path = tmp_path / "log.jsonl"
        assert write_event_log(path, lines) == len(lines)
        assert list(read_event_log(path)) == lines

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        good = json.dumps({"ts": 1.0, "kind": "x"})
        path.write_text(good + "\n" + '{"ts": 2.0, "kin')
        records = list(read_event_log(path))
        assert len(records) == 1

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('not json\n{"ts": 1.0}\n')
        with pytest.raises(json.JSONDecodeError):
            list(read_event_log(path))


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_trace_event_json_shape(self, tmp_path):
        recorder = Recorder(run_id="trace-run")
        with recorder.span("outer", circuit="c"):
            with recorder.span("inner"):
                pass
        trace = chrome_trace(recorder, meta={"host": "test"})
        # Must survive a JSON roundtrip (Perfetto reads the file as JSON).
        trace = json.loads(json.dumps(trace))
        assert trace["displayTimeUnit"] == "ms"
        assert trace["otherData"]["run_id"] == "trace-run"
        assert trace["otherData"]["host"] == "test"
        events = trace["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(metadata) == 1  # one pid -> one process_name record
        assert len(complete) == 2
        for event in complete:
            assert event["cat"] == "repro"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert isinstance(event["pid"], int)
        inner = next(e for e in complete if e["name"] == "inner")
        outer = next(e for e in complete if e["name"] == "outer")
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]

    def test_persist_recorder_writes_both_files(self, tmp_path):
        recorder = Recorder(run_id="runx")
        with recorder.span("s"):
            recorder.counter("jobs")
        paths = persist_recorder(tmp_path, recorder, meta=environment_meta())
        assert paths["trace"].exists() and paths["events"].exists()
        assert paths["trace"].name == "runx.trace.json"
        data = json.loads(paths["trace"].read_text())
        assert data["otherData"]["metrics"]["counters"] == {"jobs": 1}
        assert data["otherData"]["python"]
        assert list(read_event_log(paths["events"]))


# ----------------------------------------------------------------------
# Multiprocess collection through the campaign runner
# ----------------------------------------------------------------------
def _tiny_spec(verify=True):
    return CampaignSpec(
        name="tm",
        sources=(TestSource(profile="s13207", scale=0.05, seed=1),),
        base=CompressionConfig(num_scan_chains=32),
        axes={
            "window_length": [40],
            "segment_size": [5, 10],
            "speedup": [3, 6],
        },
        filter="segment_size <= window_length",
        verify=verify,
    )


class TestCampaignTelemetry:
    def test_pool_workers_stream_spans_to_parent(self, tmp_path):
        recorder = Recorder(run_id="pool")
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            _tiny_spec(), store, jobs=2, resume=False, recorder=recorder
        )
        result = runner.run()
        store.close()
        assert result.num_computed == 4
        job_spans = [
            span for span in recorder.spans if span["name"] == "campaign.job"
        ]
        assert len(job_spans) == 4
        # Worker spans carry worker pids distinct from the parent's.
        import os

        pids = {span["pid"] for span in job_spans}
        assert pids and os.getpid() not in pids
        stage_spans = [
            span for span in recorder.spans if span["name"] == "stage.encode"
        ]
        assert len(stage_spans) == 4
        # Worker metrics were merged into the parent registry.
        assert recorder.metrics.counters["solver_trials"] > 0
        assert recorder.metrics.gauges["campaign.workers"] == 2
        assert recorder.metrics.histograms["campaign.queue_wait_s"].count >= 1
        assert recorder.metrics.hit_rates()["encoding"][0] == 2

    def test_inline_run_records_without_double_count(self, tmp_path):
        recorder = Recorder(run_id="inline")
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(
            _tiny_spec(), store, jobs=1, resume=False, recorder=recorder
        )
        result = runner.run()
        store.close()
        assert result.num_computed == 4
        job_spans = [
            span for span in recorder.spans if span["name"] == "campaign.job"
        ]
        assert len(job_spans) == 4  # exactly once per job, no absorb echo
        assert recorder.metrics.hit_rates()["encoding"] == (
            3,
            4,
            pytest.approx(0.75),
        )

    def test_disabled_recorder_runs_clean(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(_tiny_spec(), store, jobs=1, resume=False)
        result = runner.run()
        store.close()
        assert result.num_computed == 4
        assert result.cache_stat_totals()["encoding_hits"] == 3


# ----------------------------------------------------------------------
# Result store persistent handle
# ----------------------------------------------------------------------
def _record(key: str) -> StoredResult:
    return StoredResult(
        key=key,
        job_id=f"job-{key}",
        circuit="c",
        fingerprint="f",
        config={"window_length": 40},
        status="ok",
        summary={"circuit": "c"},
    )


class TestStoreHandle:
    def test_put_keeps_one_handle_and_flushes(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_record("a"))
        handle = store._handle
        assert handle is not None
        store.put(_record("b"))
        assert store._handle is handle  # no reopen per record
        # Flushed per put: another reader sees both records immediately.
        other = ResultStore(tmp_path)
        assert len(other) == 2
        other.close()
        store.close()
        assert store._handle is None
        store.close()  # idempotent

    def test_context_manager_closes(self, tmp_path):
        with ResultStore(tmp_path) as store:
            store.put(_record("a"))
        assert store._handle is None
        assert len(ResultStore(tmp_path)) == 1

    def test_put_after_close_reopens(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_record("a"))
        store.close()
        store.put(_record("b"))
        store.close()
        assert len(ResultStore(tmp_path)) == 2

    def test_reload_sees_other_writers(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_record("a"))
        store.close()  # hand the writer lock over; the index stays loaded
        other = ResultStore(tmp_path)
        other.put(_record("b"))
        other.close()
        store.reload()
        assert {record.key for record in store.records()} == {"a", "b"}
        store.close()


# ----------------------------------------------------------------------
# CLI stats + bench meta
# ----------------------------------------------------------------------
class TestSurfaces:
    def test_stats_command_aggregates_store_and_telemetry(self, tmp_path, capsys):
        from repro.cli import main

        recorder = Recorder(run_id="statsrun")
        store = ResultStore(tmp_path)
        runner = CampaignRunner(
            _tiny_spec(), store, jobs=1, resume=False, recorder=recorder
        )
        runner.run()
        store.close()
        persist_recorder(tmp_path, recorder, meta=environment_meta())
        assert main(["stats", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "result store: 4 records (4 ok, 0 failed)" in out
        assert "encoding: 3/4 hits (75.0%)" in out
        assert "campaign.job" in out
        assert "statsrun" in out

    def test_stats_command_without_data_fails(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["stats", str(tmp_path / "empty")])

    def test_summary_table_renders_all_sections(self):
        recorder = Recorder(run_id="s")
        with recorder.span("work"):
            pass
        recorder.counter("encoding_hits", 3)
        recorder.counter("encoding_misses", 1)
        recorder.counter("jobs", 2)
        recorder.gauge("workers", 2)
        recorder.observe("wait_s", 0.25)
        text = summary_table(recorder, title="t")
        assert "spans (wall time by name):" in text
        assert "encoding" in text and "75.0%" in text
        assert "jobs" in text
        assert "workers" in text
        assert "wait_s" in text

    def test_bench_reports_stamped_with_meta(self):
        from repro.perf import run_benchmarks

        reports = run_benchmarks(
            kernels=["telemetry-overhead"], quick=True, repeat=1
        )
        assert len(reports) == 1
        report = reports[0]
        assert report.meta["python"]
        assert report.meta["cpu_count"] >= 1
        assert report.meta["bench_wall_s"] > 0
        data = report.to_dict()
        assert data["meta"] is report.meta
        names = {case.name for case in report.cases}
        assert names == {"s13207-flow", "g120-atpg"}
        for case in report.cases:
            assert case.verified, f"{case.name} diverged under tracing"
            assert "overhead_vs_pre_pr_pct" in case.detail
