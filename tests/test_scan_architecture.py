"""Tests for the scan-chain architecture mapping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scan.architecture import ScanArchitecture


class TestScanArchitecture:
    def test_basic_dimensions(self):
        arch = ScanArchitecture(num_cells=700, num_chains=32)
        assert arch.num_cells == 700
        assert arch.num_chains == 32
        assert arch.chain_length == 22  # ceil(700 / 32)
        assert arch.padded_cells == 704

    def test_chains_capped_by_cells(self):
        arch = ScanArchitecture(num_cells=5, num_chains=32)
        assert arch.num_chains == 5
        assert arch.chain_length == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ScanArchitecture(0, 32)
        with pytest.raises(ValueError):
            ScanArchitecture(10, 0)

    def test_mapping_roundtrip(self):
        arch = ScanArchitecture(num_cells=100, num_chains=8)
        for cell in range(100):
            chain = arch.chain_of(cell)
            depth = arch.depth_of(cell)
            assert arch.cell_at(chain, depth) == cell

    def test_load_cycle_convention(self):
        arch = ScanArchitecture(num_cells=64, num_chains=8)
        # depth 0 (scan-in end) is filled by the last shift cycle.
        assert arch.load_cycle(0) == arch.chain_length - 1
        # The deepest cell of chain 0 is filled by cycle 0.
        deepest = (arch.chain_length - 1) * 8
        assert arch.load_cycle(deepest) == 0

    def test_cell_record(self):
        arch = ScanArchitecture(num_cells=64, num_chains=8)
        cell = arch.cell(13)
        assert cell.index == 13
        assert cell.chain == 5
        assert cell.depth == 1
        assert cell.load_cycle == arch.chain_length - 2

    def test_cells_iterator_covers_everything(self):
        arch = ScanArchitecture(num_cells=50, num_chains=7)
        cells = list(arch.cells())
        assert len(cells) == 50
        assert sorted(c.index for c in cells) == list(range(50))

    def test_cells_per_chain_balanced(self):
        arch = ScanArchitecture(num_cells=50, num_chains=7)
        counts = arch.cells_per_chain()
        assert sum(counts) == 50
        assert max(counts) - min(counts) <= 1

    def test_out_of_range_errors(self):
        arch = ScanArchitecture(num_cells=10, num_chains=3)
        with pytest.raises(IndexError):
            arch.chain_of(10)
        with pytest.raises(IndexError):
            arch.cell_at(5, 0)
        with pytest.raises(IndexError):
            arch.cell_at(0, 99)

    def test_padding_slot_rejected(self):
        arch = ScanArchitecture(num_cells=10, num_chains=3)
        # 10 cells over 3 chains -> r = 4, padding slots exist at depth 3.
        with pytest.raises(IndexError):
            arch.cell_at(2, 3)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=600),
    st.integers(min_value=1, max_value=64),
)
def test_mapping_is_bijective(num_cells, num_chains):
    arch = ScanArchitecture(num_cells, num_chains)
    seen = set()
    for cell in range(num_cells):
        coord = (arch.chain_of(cell), arch.depth_of(cell))
        assert coord not in seen
        seen.add(coord)
        assert 0 <= arch.load_cycle(cell) < arch.chain_length
    assert arch.padded_cells >= num_cells
