"""Tests for the decompression architecture: counters, Mode Select, the
clock-level simulation and the gate-equivalent cost model."""

import pytest

from repro.decompressor.architecture import (
    DecompressionController,
    Decompressor,
    simulate_decompression,
)
from repro.decompressor.counters import Counter, CounterBank, counter_width
from repro.decompressor.hardware import (
    GateCostModel,
    decompressor_cost,
    lfsr_cost,
    soc_decompressor_cost,
    state_skip_cost,
)
from repro.decompressor.mode_select import ModeSelectUnit
from repro.encoding.encoder import ReseedingEncoder
from repro.lfsr.state_skip import StateSkipCircuit
from repro.skip.reduction import reduce_sequence
from repro.testdata.profiles import custom_profile
from repro.testdata.synthetic import generate_test_set


@pytest.fixture(scope="module")
def flow():
    """A complete small flow: test set -> encoding -> reduction."""
    profile = custom_profile(
        "decomp_unit",
        scan_cells=60,
        num_cubes=35,
        max_specified=9,
        mean_specified=4.0,
        scan_chains=6,
        lfsr_size=14,
    )
    test_set = generate_test_set(profile, seed=5)
    encoder = ReseedingEncoder(
        num_cells=60, num_scan_chains=6, lfsr_size=14, window_length=30
    )
    encoding = encoder.encode(test_set)
    reduction = reduce_sequence(
        encoding, test_set, encoder.equations, segment_size=5, speedup=6
    )
    return encoder, test_set, encoding, reduction


class TestCounters:
    def test_counter_width(self):
        assert counter_width(0) == 1
        assert counter_width(1) == 1
        assert counter_width(7) == 3
        assert counter_width(8) == 4
        with pytest.raises(ValueError):
            counter_width(-1)

    def test_counter_basics(self):
        counter = Counter("test", 3)
        assert counter.width == 2
        assert counter.is_zero()
        assert not counter.increment()
        assert counter.value == 1
        counter.load(3)
        assert counter.at_max()
        assert counter.increment()  # wraps
        assert counter.is_zero()

    def test_counter_decrement(self):
        counter = Counter("down", 4)
        counter.load(2)
        assert not counter.decrement()
        assert counter.decrement()
        with pytest.raises(ValueError):
            counter.decrement()

    def test_counter_load_validation(self):
        counter = Counter("x", 4)
        with pytest.raises(ValueError):
            counter.load(5)

    def test_counter_bank_dimensions(self):
        bank = CounterBank.dimension(
            chain_length=22,
            segment_size=10,
            segments_per_window=20,
            max_useful_segments=3,
            max_group_size=40,
        )
        widths = bank.widths()
        assert widths["bit"] == counter_width(21)
        assert widths["vector"] == counter_width(9)
        assert widths["segment"] == counter_width(19)
        assert bank.total_flip_flops() == sum(widths.values())
        assert len(bank.counters()) == 6


class TestModeSelect:
    def test_mode_lookup(self):
        unit = ModeSelectUnit([[0, 3], [0], [0, 1, 5]], segments_per_window=8)
        assert unit.mode(0, 0) == 1
        assert unit.mode(0, 3) == 1
        assert unit.mode(0, 2) == 0
        assert unit.mode(1, 1) == 0
        assert unit.segments_to_generate(0) == 4
        assert unit.segments_to_generate(1) == 1
        assert unit.segments_to_generate(2) == 6

    def test_groups(self):
        unit = ModeSelectUnit([[0, 3], [0], [0, 1, 5]], segments_per_window=8)
        groups = unit.groups()
        assert groups == {1: [1], 2: [0], 3: [2]}

    def test_validation(self):
        with pytest.raises(ValueError):
            ModeSelectUnit([[0]], segments_per_window=0)
        with pytest.raises(ValueError):
            ModeSelectUnit([[9]], segments_per_window=4)
        unit = ModeSelectUnit([[0]], segments_per_window=4)
        with pytest.raises(IndexError):
            unit.mode(1, 0)
        with pytest.raises(IndexError):
            unit.mode(0, 9)

    def test_cost_tracks_extra_useful_segments(self):
        cheap = ModeSelectUnit([[0]] * 10, segments_per_window=20)
        costly = ModeSelectUnit([[0, 5, 9]] * 10, segments_per_window=20)
        assert cheap.cost().product_terms == 0
        assert costly.cost().product_terms == 20
        assert costly.cost().gate_equivalents > cheap.cost().gate_equivalents


class TestPowersCache:
    def test_ladders_shared_across_datapaths(self, flow):
        """Two datapaths over one substrate share one doubling ladder.

        The ladder lists live in the module-level substrate-keyed cache
        and are extended in place, so powers computed by one
        simulate_decompression call are reused by the next.
        """
        from repro.decompressor import architecture as arch_mod

        encoder, test_set, encoding, reduction = flow
        def build():
            decompressor = Decompressor(
                encoder.lfsr.transition,
                encoder.phase_shifter,
                encoder.architecture,
                reduction.config.speedup,
            )
            return arch_mod._BatchedDatapath(decompressor)

        first = build()
        second = build()
        assert first._powers["normal"] is second._powers["normal"]
        assert first._powers["skip"] is second._powers["skip"]
        # run() extends the shared ladder in place; a later datapath
        # starts from every power already computed.
        before = len(first._powers["normal"])
        first.load_seed(encoding.seeds[0].seed)
        first.run(65, "normal")
        extended = len(first._powers["normal"])
        assert extended > before
        assert len(build()._powers["normal"]) == extended

    def test_cache_bounded(self, flow):
        from repro.decompressor import architecture as arch_mod

        assert (
            len(arch_mod._POWERS_CACHE) <= arch_mod._POWERS_CACHE_SIZE
        )


class TestSimulation:
    def test_simulation_matches_reduction_accounting(self, flow):
        encoder, test_set, encoding, reduction = flow
        outcome = simulate_decompression(
            encoding,
            reduction,
            encoder.lfsr.transition,
            encoder.phase_shifter,
            encoder.architecture,
        )
        assert outcome.seeds_applied == encoding.num_seeds
        assert outcome.vectors_applied == reduction.test_sequence_length
        assert outcome.skip_clocks > 0

    def test_simulation_covers_every_cube(self, flow):
        """End-to-end correctness: the hardware really applies every cube."""
        encoder, test_set, encoding, reduction = flow
        outcome = simulate_decompression(
            encoding,
            reduction,
            encoder.lfsr.transition,
            encoder.phase_shifter,
            encoder.architecture,
        )
        assert outcome.uncovered_cubes(test_set) == []
        assert outcome.covers(test_set)

    def test_simulation_agrees_with_equation_expansion(self, flow):
        """The shift-register datapath and the algebraic expansion agree."""
        encoder, test_set, encoding, reduction = flow
        decompressor = Decompressor(
            encoder.lfsr.transition,
            encoder.phase_shifter,
            encoder.architecture,
            reduction.config.speedup,
        )
        seed = encoding.seeds[0].seed
        decompressor.load_seed(seed)
        chain_length = encoder.architecture.chain_length
        window = encoder.equations.expand_seed(seed)
        for _ in range(chain_length):
            decompressor.shift_clock()
        assert decompressor.captured_vector() == window[0]
        for _ in range(chain_length):
            decompressor.shift_clock()
        assert decompressor.captured_vector() == window[1]

    def test_simulation_requires_exact_alignment(self, flow):
        encoder, test_set, encoding, _ = flow
        ideal = reduce_sequence(
            encoding, test_set, encoder.equations, 5, 6, alignment="ideal"
        )
        with pytest.raises(ValueError):
            simulate_decompression(
                encoding,
                ideal,
                encoder.lfsr.transition,
                encoder.phase_shifter,
                encoder.architecture,
            )

    def test_speedup_mismatch_rejected(self, flow):
        encoder, test_set, encoding, reduction = flow
        decompressor = Decompressor(
            encoder.lfsr.transition,
            encoder.phase_shifter,
            encoder.architecture,
            speedup=reduction.config.speedup + 1,
        )
        with pytest.raises(ValueError):
            DecompressionController(decompressor).run(encoding, reduction)


class TestHardwareModel:
    def test_lfsr_cost_components(self):
        model = GateCostModel()
        encoder = ReseedingEncoder(60, 6, 14, window_length=4)
        cost = lfsr_cost(encoder.lfsr.transition, model)
        assert cost >= 14 * model.dff

    def test_state_skip_cost_grows_with_k(self):
        model = GateCostModel()
        encoder = ReseedingEncoder(60, 6, 24, window_length=4)
        small = state_skip_cost(StateSkipCircuit(encoder.lfsr.transition, 2), model)
        large = state_skip_cost(StateSkipCircuit(encoder.lfsr.transition, 16), model)
        assert large > small

    def test_full_breakdown(self, flow):
        encoder, test_set, encoding, reduction = flow
        report = decompressor_cost(
            transition=encoder.lfsr.transition,
            speedup=reduction.config.speedup,
            phase_shifter=encoder.phase_shifter,
            chain_length=encoder.architecture.chain_length,
            segment_size=reduction.config.segment_size,
            segments_per_window=reduction.num_segments_per_window,
            useful_segments_per_seed=[
                s.useful_segments for s in reduction.schedules
            ],
        )
        breakdown = report.breakdown()
        assert breakdown["total"] == pytest.approx(report.total)
        assert report.total == pytest.approx(report.shared + report.mode_select)
        assert all(value >= 0 for value in breakdown.values())
        assert report.lfsr > 0 and report.state_skip > 0

    def test_soc_sharing(self, flow):
        encoder, test_set, encoding, reduction = flow
        report = decompressor_cost(
            transition=encoder.lfsr.transition,
            speedup=reduction.config.speedup,
            phase_shifter=encoder.phase_shifter,
            chain_length=encoder.architecture.chain_length,
            segment_size=reduction.config.segment_size,
            segments_per_window=reduction.num_segments_per_window,
            useful_segments_per_seed=[
                s.useful_segments for s in reduction.schedules
            ],
        )
        soc = soc_decompressor_cost({"core_a": report, "core_b": report})
        # Sharing: total is much less than two full decompressors.
        assert soc.total < 2 * report.total
        assert soc.total == pytest.approx(report.shared + 2 * report.mode_select)
        lo, hi = soc.mode_select_range()
        assert lo == hi == pytest.approx(report.mode_select)
        with pytest.raises(ValueError):
            soc_decompressor_cost({})
