"""Unit and property tests for :mod:`repro.gf2.matrix`."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gf2.bitvec import BitVector
from repro.gf2.matrix import GF2Matrix, identity, vandermonde_rows, zeros


def random_matrix_strategy(max_dim=8):
    """Strategy producing small random GF(2) matrices."""
    return st.integers(min_value=1, max_value=max_dim).flatmap(
        lambda n: st.integers(min_value=1, max_value=max_dim).flatmap(
            lambda m: st.lists(
                st.lists(st.integers(0, 1), min_size=m, max_size=m),
                min_size=n,
                max_size=n,
            ).map(GF2Matrix.from_rows)
        )
    )


def square_matrix_strategy(max_dim=7):
    return st.integers(min_value=1, max_value=max_dim).flatmap(
        lambda n: st.lists(
            st.lists(st.integers(0, 1), min_size=n, max_size=n),
            min_size=n,
            max_size=n,
        ).map(GF2Matrix.from_rows)
    )


class TestConstruction:
    def test_from_rows_roundtrip(self):
        rows = [[1, 0, 1], [0, 1, 1]]
        mat = GF2Matrix.from_rows(rows)
        assert mat.to_lists() == rows
        assert mat.shape == (2, 3)

    def test_from_rows_ragged_rejected(self):
        with pytest.raises(ValueError):
            GF2Matrix.from_rows([[1, 0], [1]])

    def test_from_rows_non_binary_rejected(self):
        with pytest.raises(ValueError):
            GF2Matrix.from_rows([[1, 2]])

    def test_from_columns(self):
        mat = GF2Matrix.from_columns([[1, 0], [1, 1], [0, 1]])
        assert mat.to_lists() == [[1, 1, 0], [0, 1, 1]]

    def test_from_bitvectors(self):
        rows = [BitVector.from_string("101"), BitVector.from_string("011")]
        mat = GF2Matrix.from_bitvectors(rows)
        assert mat.to_lists() == [[1, 0, 1], [0, 1, 1]]

    def test_from_bitvectors_length_mismatch(self):
        with pytest.raises(ValueError):
            GF2Matrix.from_bitvectors(
                [BitVector.from_string("10"), BitVector.from_string("100")]
            )

    def test_identity_and_zeros(self):
        assert identity(3).to_lists() == [[1, 0, 0], [0, 1, 0], [0, 0, 1]]
        assert zeros(2, 3).to_lists() == [[0, 0, 0], [0, 0, 0]]

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError):
            GF2Matrix(-1, 2)


class TestAccess:
    def test_row_and_column(self):
        mat = GF2Matrix.from_rows([[1, 0, 1], [0, 1, 1]])
        assert mat.row(0).to_bits() == [1, 0, 1]
        assert mat.column(2).to_bits() == [1, 1]

    def test_getitem(self):
        mat = GF2Matrix.from_rows([[1, 0], [0, 1]])
        assert mat[0, 0] == 1
        assert mat[0, 1] == 0
        with pytest.raises(IndexError):
            _ = mat[2, 0]

    def test_column_masks_matches_transpose(self):
        mat = GF2Matrix.from_rows([[1, 0, 1], [1, 1, 0]])
        assert mat.column_masks() == mat.transpose().row_masks()

    def test_density_and_weight(self):
        mat = GF2Matrix.from_rows([[1, 0], [1, 1]])
        assert mat.total_weight() == 3
        assert mat.density() == pytest.approx(0.75)

    def test_to_string(self):
        mat = GF2Matrix.from_rows([[1, 0], [0, 1]])
        assert mat.to_string() == "10\n01"


class TestAlgebra:
    def test_matmul_known(self):
        a = GF2Matrix.from_rows([[1, 1], [0, 1]])
        b = GF2Matrix.from_rows([[1, 0], [1, 1]])
        assert (a @ b).to_lists() == [[0, 1], [1, 1]]

    def test_matmul_dimension_mismatch(self):
        with pytest.raises(ValueError):
            GF2Matrix.from_rows([[1, 0]]) @ GF2Matrix.from_rows([[1, 0]])

    def test_add(self):
        a = GF2Matrix.from_rows([[1, 1], [0, 1]])
        b = GF2Matrix.from_rows([[1, 0], [1, 1]])
        assert (a + b).to_lists() == [[0, 1], [1, 0]]

    def test_mul_vector(self):
        mat = GF2Matrix.from_rows([[1, 1, 0], [0, 1, 1]])
        vec = BitVector.from_string("110")
        assert mat.mul_vector(vec).to_bits() == [0, 1]

    def test_vector_mul(self):
        mat = GF2Matrix.from_rows([[1, 1, 0], [0, 1, 1]])
        vec = BitVector.from_string("11")
        assert mat.vector_mul(vec).to_bits() == [1, 0, 1]

    def test_power_known(self):
        # Companion-style matrix of x^2 + x + 1 has order 3.
        mat = GF2Matrix.from_rows([[0, 1], [1, 1]])
        assert mat.power(0) == identity(2)
        assert mat.power(3) == identity(2)
        assert mat.power(1) == mat

    def test_power_requires_square(self):
        with pytest.raises(ValueError):
            GF2Matrix.from_rows([[1, 0, 1]]).power(2)

    def test_rank(self):
        mat = GF2Matrix.from_rows([[1, 0, 1], [0, 1, 1], [1, 1, 0]])
        assert mat.rank() == 2  # third row is the sum of the first two

    def test_inverse_roundtrip(self):
        mat = GF2Matrix.from_rows([[1, 1, 0], [0, 1, 1], [0, 0, 1]])
        inv = mat.inverse()
        assert mat @ inv == identity(3)
        assert inv @ mat == identity(3)

    def test_inverse_singular_rejected(self):
        mat = GF2Matrix.from_rows([[1, 1], [1, 1]])
        assert not mat.is_invertible()
        with pytest.raises(ValueError):
            mat.inverse()

    def test_kernel_basis(self):
        mat = GF2Matrix.from_rows([[1, 0, 1], [0, 1, 1]])
        basis = mat.kernel_basis()
        assert len(basis) == 1
        for vec in basis:
            assert mat.mul_vector(vec).is_zero()

    def test_kernel_of_full_rank_square_is_empty(self):
        assert identity(4).kernel_basis() == []

    def test_vandermonde_rows(self):
        mat = GF2Matrix.from_rows([[0, 1], [1, 1]])
        powers = vandermonde_rows(mat, 4)
        assert powers[0] == identity(2)
        assert powers[2] == mat @ mat
        assert powers[3] == mat.power(3)


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(square_matrix_strategy())
def test_power_matches_repeated_matmul(mat):
    acc = identity(mat.ncols)
    for k in range(4):
        assert mat.power(k) == acc
        acc = acc @ mat


@settings(max_examples=40, deadline=None)
@given(square_matrix_strategy())
def test_transpose_involution(mat):
    assert mat.transpose().transpose() == mat


@settings(max_examples=40, deadline=None)
@given(square_matrix_strategy())
def test_rank_bounded_and_transpose_invariant(mat):
    r = mat.rank()
    assert 0 <= r <= mat.ncols
    assert mat.transpose().rank() == r


@settings(max_examples=40, deadline=None)
@given(square_matrix_strategy())
def test_kernel_dimension_plus_rank_is_n(mat):
    assert mat.rank() + len(mat.kernel_basis()) == mat.ncols
    for vec in mat.kernel_basis():
        assert mat.mul_vector(vec).is_zero()


@settings(max_examples=40, deadline=None)
@given(square_matrix_strategy())
def test_inverse_property_when_invertible(mat):
    if mat.is_invertible():
        assert mat @ mat.inverse() == identity(mat.ncols)


@settings(max_examples=30, deadline=None)
@given(square_matrix_strategy(max_dim=6), square_matrix_strategy(max_dim=6))
def test_matmul_associativity_with_vector(a, b):
    if a.ncols != b.nrows:
        return
    vec = BitVector.ones(b.ncols)
    assert (a @ b).mul_vector(vec) == a.mul_vector(b.mul_vector(vec))
