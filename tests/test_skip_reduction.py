"""Tests for window segmentation, useful-segment selection and TSL reduction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.encoding.encoder import ReseedingEncoder
from repro.skip.reduction import (
    ReductionConfig,
    SequenceReducer,
    reduce_sequence,
)
from repro.skip.segments import WindowSegmentation
from repro.skip.selection import build_embedding_map, select_useful_segments
from repro.testdata.literature import tsl_improvement
from repro.testdata.profiles import custom_profile
from repro.testdata.synthetic import generate_test_set


# ----------------------------------------------------------------------
# Shared fixture: a small encoded test set (module scoped, it is reused by
# many tests and encoding is the slow part).
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def encoded():
    profile = custom_profile(
        "skip_unit",
        scan_cells=64,
        num_cubes=40,
        max_specified=10,
        mean_specified=4.0,
        scan_chains=8,
        lfsr_size=16,
    )
    test_set = generate_test_set(profile, seed=21)
    encoder = ReseedingEncoder(
        num_cells=64, num_scan_chains=8, lfsr_size=16, window_length=40
    )
    result = encoder.encode(test_set)
    return encoder, test_set, result


class TestWindowSegmentation:
    def test_basic_partition(self):
        seg = WindowSegmentation(window_length=50, segment_size=10)
        assert seg.num_segments == 5
        assert seg.segment_of(0) == 0
        assert seg.segment_of(49) == 4
        assert seg.bounds(2) == (20, 30)
        assert seg.length(2) == 10
        assert seg.positions(0) == list(range(10))

    def test_ragged_last_segment(self):
        seg = WindowSegmentation(window_length=50, segment_size=12)
        assert seg.num_segments == 5
        assert seg.length(4) == 2
        assert seg.bounds(4) == (48, 50)

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowSegmentation(0, 1)
        with pytest.raises(ValueError):
            WindowSegmentation(10, 0)
        with pytest.raises(ValueError):
            WindowSegmentation(10, 11)
        seg = WindowSegmentation(10, 5)
        with pytest.raises(IndexError):
            seg.segment_of(10)
        with pytest.raises(IndexError):
            seg.bounds(2)


class TestEmbeddingAndSelection:
    def test_embedding_map_contains_deterministic_embeddings(self, encoded):
        encoder, test_set, result = encoded
        seg = WindowSegmentation(result.window_length, 5)
        embedding = build_embedding_map(result, test_set, encoder.equations, seg)
        for record in result.seeds:
            for emb in record.embeddings:
                segment = (record.index, seg.segment_of(emb.position))
                assert segment in embedding.segments_of(emb.cube_index)

    def test_selection_covers_every_cube(self, encoded):
        encoder, test_set, result = encoded
        seg = WindowSegmentation(result.window_length, 5)
        embedding = build_embedding_map(result, test_set, encoder.equations, seg)
        selection = select_useful_segments(
            embedding, num_cubes=len(test_set), num_seeds=result.num_seeds
        )
        assert set(selection.covering_segment) == set(range(len(test_set)))
        for cube, segment in selection.covering_segment.items():
            assert segment in selection.useful_segments
            assert cube in embedding.cubes_of(segment)

    def test_first_segments_useful_when_forced(self, encoded):
        encoder, test_set, result = encoded
        seg = WindowSegmentation(result.window_length, 5)
        embedding = build_embedding_map(result, test_set, encoder.equations, seg)
        selection = select_useful_segments(
            embedding, len(test_set), result.num_seeds,
            force_first_segment_useful=True,
        )
        for seed_index in range(result.num_seeds):
            assert (seed_index, 0) in selection.useful_segments

    def test_unforced_selection_never_larger(self, encoded):
        encoder, test_set, result = encoded
        seg = WindowSegmentation(result.window_length, 5)
        embedding = build_embedding_map(result, test_set, encoder.equations, seg)
        forced = select_useful_segments(
            embedding, len(test_set), result.num_seeds,
            force_first_segment_useful=True,
        )
        free = select_useful_segments(
            embedding, len(test_set), result.num_seeds,
            force_first_segment_useful=False,
        )
        assert free.num_useful <= forced.num_useful


class TestReduction:
    def test_reduction_shrinks_tsl(self, encoded):
        encoder, test_set, result = encoded
        reduction = reduce_sequence(
            result, test_set, encoder.equations, segment_size=5, speedup=8
        )
        assert reduction.test_sequence_length < result.test_sequence_length
        assert reduction.test_data_volume == result.test_data_volume
        assert reduction.original_tsl == result.test_sequence_length
        assert 0.0 < reduction.improvement_percent < 100.0
        assert reduction.improvement_percent == pytest.approx(
            tsl_improvement(reduction.test_sequence_length, result.test_sequence_length)
        )

    def test_higher_speedup_never_hurts(self, encoded):
        encoder, test_set, result = encoded
        slow = reduce_sequence(result, test_set, encoder.equations, 5, speedup=3)
        fast = reduce_sequence(result, test_set, encoder.equations, 5, speedup=20)
        assert fast.test_sequence_length <= slow.test_sequence_length

    def test_windows_truncate_after_last_useful_segment(self, encoded):
        encoder, test_set, result = encoded
        reduction = reduce_sequence(result, test_set, encoder.equations, 5, 8)
        for schedule in reduction.schedules:
            if not schedule.useful_segments:
                assert schedule.segments == []
                continue
            last = schedule.segments[-1]
            assert last.useful
            assert last.segment_index == schedule.last_useful_segment
            # No segment beyond the last useful one is traversed.
            assert len(schedule.segments) == schedule.last_useful_segment + 1

    def test_useful_segments_cost_full_vectors(self, encoded):
        encoder, test_set, result = encoded
        reduction = reduce_sequence(result, test_set, encoder.equations, 5, 8)
        seg = reduction.schedules[0].segments[0]
        assert seg.useful
        assert seg.vectors_applied == 5
        assert seg.skip_clocks == 0

    def test_useless_segments_cost_fewer_vectors(self, encoded):
        encoder, test_set, result = encoded
        reduction = reduce_sequence(result, test_set, encoder.equations, 5, 8)
        useless = [
            plan
            for schedule in reduction.schedules
            for plan in schedule.segments
            if not plan.useful
        ]
        assert useless, "expected at least one useless segment in the windows"
        for plan in useless:
            assert plan.vectors_applied < 5
            assert plan.skip_clocks > 0

    def test_ideal_vs_exact_alignment(self, encoded):
        encoder, test_set, result = encoded
        exact = reduce_sequence(
            result, test_set, encoder.equations, 5, 7, alignment="exact"
        )
        ideal = reduce_sequence(
            result, test_set, encoder.equations, 5, 7, alignment="ideal"
        )
        # The ideal model can only be as good or better, and by at most one
        # vector per useless segment.
        assert ideal.test_sequence_length <= exact.test_sequence_length
        num_useless = sum(
            sum(1 for plan in schedule.segments if not plan.useful)
            for schedule in exact.schedules
        )
        assert (
            exact.test_sequence_length - ideal.test_sequence_length <= num_useless
        )

    def test_seed_groups_cover_all_seeds(self, encoded):
        encoder, test_set, result = encoded
        reduction = reduce_sequence(result, test_set, encoder.equations, 5, 8)
        groups = reduction.seed_groups()
        all_seeds = sorted(s for seeds in groups.values() for s in seeds)
        assert all_seeds == list(range(result.num_seeds))
        assert list(groups) == sorted(groups)
        assert sorted(reduction.application_order()) == all_seeds

    def test_summary_fields(self, encoded):
        encoder, test_set, result = encoded
        reduction = reduce_sequence(result, test_set, encoder.equations, 5, 8)
        summary = reduction.summary()
        assert summary["prop_tsl"] == reduction.test_sequence_length
        assert summary["orig_tsl"] == result.test_sequence_length
        assert summary["speedup"] == 8

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReductionConfig(segment_size=0, speedup=4)
        with pytest.raises(ValueError):
            ReductionConfig(segment_size=4, speedup=0)
        with pytest.raises(ValueError):
            ReductionConfig(segment_size=4, speedup=4, alignment="sloppy")

    def test_segment_size_cannot_exceed_window(self, encoded):
        encoder, *_ = encoded
        with pytest.raises(ValueError):
            SequenceReducer(
                encoder.equations, ReductionConfig(segment_size=999, speedup=4)
            )


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=60),
    st.integers(min_value=1, max_value=20),
)
def test_segmentation_partition_property(window, seg_size):
    if seg_size > window:
        seg_size = window
    seg = WindowSegmentation(window, seg_size)
    # Segments partition the window exactly.
    covered = []
    for s in range(seg.num_segments):
        covered.extend(seg.positions(s))
    assert covered == list(range(window))
    for position in range(window):
        start, end = seg.bounds(seg.segment_of(position))
        assert start <= position < end
