"""Tests for GF(2) polynomials and the feedback-polynomial tables."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gf2.polynomial import GF2Polynomial, _prime_divisors
from repro.gf2.primitive import (
    PRIMITIVE_TAPS,
    default_feedback_polynomial,
    irreducible_polynomial,
    known_degrees,
    polynomial_from_taps,
    primitive_polynomial,
)


class TestPolynomialBasics:
    def test_from_exponents(self):
        p = GF2Polynomial.from_exponents([4, 1, 0])
        assert p.value == 0b10011
        assert p.degree == 4
        assert str(p) == "x^4 + x + 1"

    def test_from_coefficients(self):
        p = GF2Polynomial.from_coefficients([1, 1, 0, 0, 1])
        assert p == GF2Polynomial.from_exponents([4, 1, 0])

    def test_from_coefficients_rejects_non_binary(self):
        with pytest.raises(ValueError):
            GF2Polynomial.from_coefficients([1, 2])

    def test_zero_one_x(self):
        assert GF2Polynomial.zero().is_zero()
        assert GF2Polynomial.one().degree == 0
        assert GF2Polynomial.x().degree == 1

    def test_degree_of_zero(self):
        assert GF2Polynomial.zero().degree == -1

    def test_exponents_and_weight(self):
        p = GF2Polynomial.from_exponents([5, 2, 0])
        assert p.exponents() == [5, 2, 0]
        assert p.weight() == 3
        assert p.coefficient(2) == 1
        assert p.coefficient(3) == 0

    def test_addition_is_xor(self):
        a = GF2Polynomial.from_exponents([3, 1])
        b = GF2Polynomial.from_exponents([3, 0])
        assert (a + b) == GF2Polynomial.from_exponents([1, 0])

    def test_multiplication_known(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2)
        p = GF2Polynomial.from_exponents([1, 0])
        assert (p * p) == GF2Polynomial.from_exponents([2, 0])

    def test_divmod(self):
        a = GF2Polynomial.from_exponents([4, 1, 0])
        b = GF2Polynomial.from_exponents([2, 1])
        q, r = a.divmod(b)
        assert q * b + r == a
        assert r.degree < b.degree

    def test_mod_and_floordiv_operators(self):
        a = GF2Polynomial.from_exponents([5, 2])
        b = GF2Polynomial.from_exponents([3, 0])
        assert (a // b) * b + (a % b) == a

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            GF2Polynomial.one() % GF2Polynomial.zero()

    def test_gcd(self):
        # gcd((x+1)(x^2+x+1), (x+1)) = x+1
        a = GF2Polynomial.from_exponents([1, 0]) * GF2Polynomial.from_exponents([2, 1, 0])
        b = GF2Polynomial.from_exponents([1, 0])
        assert a.gcd(b) == b

    def test_evaluate(self):
        p = GF2Polynomial.from_exponents([3, 1, 0])
        assert p.evaluate(0) == 1  # constant term
        assert p.evaluate(1) == 1  # odd number of terms

    def test_str_of_zero(self):
        assert str(GF2Polynomial.zero()) == "0"


class TestIrreducibility:
    def test_known_irreducible(self):
        assert GF2Polynomial.from_exponents([4, 1, 0]).is_irreducible()
        assert GF2Polynomial.from_exponents([2, 1, 0]).is_irreducible()
        assert GF2Polynomial.from_exponents([3, 1, 0]).is_irreducible()

    def test_known_reducible(self):
        # x^2 + 1 = (x+1)^2
        assert not GF2Polynomial.from_exponents([2, 0]).is_irreducible()
        # x^4 + x^3 + x + 1 is divisible by x + 1 (even number of terms)
        assert not GF2Polynomial.from_exponents([4, 3, 1, 0]).is_irreducible()

    def test_degree_one(self):
        assert GF2Polynomial.from_exponents([1, 0]).is_irreducible()
        assert GF2Polynomial.x().is_irreducible()

    def test_constants_not_irreducible(self):
        assert not GF2Polynomial.one().is_irreducible()
        assert not GF2Polynomial.zero().is_irreducible()

    def test_primitivity_small(self):
        # x^4 + x + 1 is primitive; x^4 + x^3 + x^2 + x + 1 is irreducible
        # but has order 5, not 15.
        assert GF2Polynomial.from_exponents([4, 1, 0]).is_primitive()
        non_primitive = GF2Polynomial.from_exponents([4, 3, 2, 1, 0])
        assert non_primitive.is_irreducible()
        assert not non_primitive.is_primitive()

    def test_primitivity_guard_on_large_degree(self):
        with pytest.raises(ValueError):
            GF2Polynomial.from_exponents([40, 38, 21, 19, 0]).is_primitive()


class TestFeedbackPolynomials:
    def test_table_covers_expected_range(self):
        degrees = known_degrees()
        assert degrees[0] == 2
        assert degrees[-1] == 100
        assert degrees == list(range(2, 101))

    @pytest.mark.parametrize("degree", [8, 16, 24, 32, 44, 56, 64, 85, 100])
    def test_table_entries_are_irreducible(self, degree):
        poly = polynomial_from_taps(degree, PRIMITIVE_TAPS[degree])
        assert poly.degree == degree
        assert poly.is_irreducible()

    @pytest.mark.parametrize("degree", list(range(2, 17)))
    def test_small_table_entries_are_primitive(self, degree):
        poly = polynomial_from_taps(degree, PRIMITIVE_TAPS[degree])
        assert poly.is_primitive()

    @pytest.mark.parametrize("degree", [2, 5, 13, 24, 39, 44, 56, 85, 101, 123])
    def test_primitive_polynomial_returns_irreducible(self, degree):
        poly = primitive_polynomial(degree)
        assert poly.degree == degree
        assert poly.is_irreducible()

    def test_irreducible_polynomial_search(self):
        for degree in (3, 9, 21, 33):
            poly = irreducible_polynomial(degree)
            assert poly.degree == degree
            assert poly.is_irreducible()

    def test_irreducible_polynomial_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            irreducible_polynomial(0)

    def test_default_policy(self):
        poly = default_feedback_polynomial(24)
        assert poly.degree == 24
        assert poly.is_irreducible()


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
poly_values = st.integers(min_value=1, max_value=(1 << 20) - 1)


@given(poly_values, poly_values)
@settings(max_examples=60, deadline=None)
def test_divmod_property(a_val, b_val):
    a = GF2Polynomial(a_val)
    b = GF2Polynomial(b_val)
    q, r = a.divmod(b)
    assert q * b + r == a
    assert r.is_zero() or r.degree < b.degree


@given(poly_values, poly_values)
@settings(max_examples=60, deadline=None)
def test_gcd_divides_both(a_val, b_val):
    a = GF2Polynomial(a_val)
    b = GF2Polynomial(b_val)
    g = a.gcd(b)
    assert (a % g).is_zero()
    assert (b % g).is_zero()


@given(poly_values, poly_values)
@settings(max_examples=60, deadline=None)
def test_multiplication_degree_adds(a_val, b_val):
    a = GF2Polynomial(a_val)
    b = GF2Polynomial(b_val)
    assert (a * b).degree == a.degree + b.degree


def test_prime_divisors_helper():
    assert _prime_divisors(1) == []
    assert _prime_divisors(12) == [2, 3]
    assert _prime_divisors(97) == [97]
    assert _prime_divisors(60) == [2, 3, 5]
