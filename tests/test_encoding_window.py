"""Tests for the window-based and classical reseeding encoders."""


import pytest

from repro.encoding.classical import encode_classical
from repro.encoding.encoder import ReseedingEncoder, encode_test_set
from repro.encoding.window import EncodingError, verify_encoding
from repro.testdata.cube import TestCube
from repro.testdata.profiles import custom_profile
from repro.testdata.synthetic import generate_test_set
from repro.testdata.test_set import TestSet


def small_test_set(num_cells=48, num_cubes=30, max_spec=10, seed=7):
    """A small synthetic test set for fast encoder tests."""
    profile = custom_profile(
        "unit",
        scan_cells=num_cells,
        num_cubes=num_cubes,
        max_specified=max_spec,
        mean_specified=max(3.0, max_spec / 3),
    )
    return generate_test_set(profile, seed=seed)


class TestWindowEncoder:
    def test_all_cubes_encoded_and_verified(self):
        ts = small_test_set()
        encoder = ReseedingEncoder(
            num_cells=ts.num_cells,
            num_scan_chains=8,
            lfsr_size=14,
            window_length=12,
        )
        result = encoder.encode(ts)
        assert result.all_cubes_encoded()
        assert result.num_cubes == len(ts)
        assert verify_encoding(result, ts, encoder.equations) == []

    def test_first_embedding_of_every_seed_is_position_zero(self):
        ts = small_test_set(seed=11)
        encoder = ReseedingEncoder(ts.num_cells, 8, 14, window_length=10)
        result = encoder.encode(ts)
        for record in result.seeds:
            assert record.embeddings, "every seed must encode at least one cube"
            assert record.embeddings[0].position == 0

    def test_tdv_and_tsl_accounting(self):
        ts = small_test_set(seed=3)
        result = encode_test_set(ts, window_length=8, num_scan_chains=8, lfsr_size=14)
        assert result.test_data_volume == result.num_seeds * 14
        assert result.test_sequence_length == result.num_seeds * 8
        summary = result.summary()
        assert summary["tdv_bits"] == result.test_data_volume
        assert summary["num_seeds"] == result.num_seeds

    def test_each_cube_encoded_exactly_once(self):
        ts = small_test_set(seed=5)
        result = encode_test_set(ts, window_length=8, num_scan_chains=8, lfsr_size=14)
        seen = []
        for record in result.seeds:
            seen.extend(e.cube_index for e in record.embeddings if e.deterministic)
        assert sorted(seen) == list(range(len(ts)))

    def test_larger_window_needs_no_more_seeds(self):
        """A larger window can only help the encoding (fewer or equal seeds)."""
        ts = small_test_set(num_cubes=40, seed=13)
        small = encode_test_set(ts, window_length=2, num_scan_chains=8, lfsr_size=14)
        large = encode_test_set(ts, window_length=16, num_scan_chains=8, lfsr_size=14)
        assert large.num_seeds <= small.num_seeds

    def test_lfsr_too_small_raises(self):
        ts = small_test_set(max_spec=12, seed=2)
        with pytest.raises(ValueError):
            encode_test_set(ts, window_length=4, num_scan_chains=8, lfsr_size=8)

    def test_width_mismatch_raises(self):
        ts = small_test_set()
        encoder = ReseedingEncoder(
            num_cells=ts.num_cells + 4, num_scan_chains=8, lfsr_size=14,
            window_length=4,
        )
        with pytest.raises(ValueError):
            encoder.encode(ts)

    def test_deterministic_given_same_seeds(self):
        ts = small_test_set(seed=17)
        a = encode_test_set(ts, window_length=6, num_scan_chains=8, lfsr_size=14)
        b = encode_test_set(ts, window_length=6, num_scan_chains=8, lfsr_size=14)
        assert [r.seed for r in a.seeds] == [r.seed for r in b.seeds]
        assert a.cube_assignment() == b.cube_assignment()

    def test_seed_of_cube_lookup(self):
        ts = small_test_set(seed=19)
        result = encode_test_set(ts, window_length=6, num_scan_chains=8, lfsr_size=14)
        for cube_index in range(len(ts)):
            seed_index = result.seed_of_cube(cube_index)
            assert seed_index is not None
            record = result.seeds[seed_index]
            assert cube_index in record.cube_indices()
        assert result.seed_of_cube(10_000) is None


class TestClassicalReseeding:
    def test_classical_is_single_vector_windows(self):
        ts = small_test_set(seed=23)
        result = encode_classical(ts, num_scan_chains=8, lfsr_size=14)
        assert result.window_length == 1
        assert result.test_sequence_length == result.num_seeds
        assert result.all_cubes_encoded()

    def test_classical_uses_more_data_than_windowed(self):
        """The motivation experiment (Table 1): larger L improves TDV."""
        ts = small_test_set(num_cubes=50, seed=29)
        classical = encode_classical(ts, num_scan_chains=8, lfsr_size=14)
        windowed = encode_test_set(
            ts, window_length=20, num_scan_chains=8, lfsr_size=14
        )
        assert windowed.test_data_volume <= classical.test_data_volume
        # ... at the price of much longer test sequences.
        assert windowed.test_sequence_length >= classical.test_sequence_length

    def test_classical_default_lfsr_size(self):
        ts = small_test_set(seed=31)
        result = encode_classical(ts, num_scan_chains=8)
        assert result.lfsr_size == ts.max_specified() + 8


class TestEncodingEdgeCases:
    def test_single_cube_test_set(self):
        cube = TestCube.from_assignments(32, {0: 1, 5: 0, 17: 1})
        ts = TestSet("single", [cube])
        result = encode_test_set(ts, window_length=4, num_scan_chains=4, lfsr_size=8)
        assert result.num_seeds == 1
        assert result.seeds[0].embeddings[0].position == 0

    def test_identical_cubes_share_one_seed(self):
        cube = TestCube.from_assignments(32, {1: 1, 9: 0})
        ts = TestSet("dupes", [cube, cube, cube])
        result = encode_test_set(ts, window_length=4, num_scan_chains=4, lfsr_size=8)
        assert result.num_seeds == 1
        assert result.seeds[0].num_cubes == 3

    def test_conflicting_dense_cubes_need_multiple_seeds(self):
        # Two cubes that disagree on every cell of a single-vector window
        # cannot share a seed when the window has a single vector.
        a = TestCube.from_assignments(16, {i: 1 for i in range(8)})
        b = TestCube.from_assignments(16, {i: 0 for i in range(8)})
        ts = TestSet("conflict", [a, b])
        result = encode_test_set(ts, window_length=1, num_scan_chains=4, lfsr_size=12)
        assert result.num_seeds == 2

    def test_unencodable_cube_raises_encoding_error(self):
        # 24 specified bits cannot be solved with a 12-bit seed through an
        # 8-output phase shifter: the system is overdetermined at every
        # window position, so the encoder must report it.
        dense = TestCube.from_assignments(24, {i: (i * 7) % 2 for i in range(24)})
        filler = TestCube.from_assignments(24, {0: 1})
        ts = TestSet("too_dense", [dense, filler])
        encoder = ReseedingEncoder(
            num_cells=24, num_scan_chains=8, lfsr_size=12, window_length=3
        )
        with pytest.raises((EncodingError, ValueError)):
            encoder.encode(ts)
