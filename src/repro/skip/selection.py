"""Useful-segment selection (the covering step of Section 3.2).

Because most cubes specify only a handful of bits, they are *fortuitously*
embedded in many window vectors besides the one they were deterministically
encoded at.  The paper exploits this to minimise the number of segments that
have to be generated in Normal mode:

1. Build the embedding map: for every cube, every (seed, segment) whose
   expanded vectors cover the cube.
2. **Set A** -- cubes embedded in exactly one segment across all windows.
   Their segments are forced useful; every other cube covered by those
   segments is dropped from further consideration.
3. **Set B** -- the remaining cubes are covered greedily: repeatedly pick the
   segment embedding the most still-uncovered cubes (ties broken towards the
   segment closest to the start of its window), mark it useful and drop the
   cubes it covers.

The result is the set of useful segments per seed, plus the bookkeeping the
decompressor and the reporting need (which segment covers which cube).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.encoding.equations import EquationSystem
from repro.encoding.results import EncodingResult
from repro.skip.segments import WindowSegmentation
from repro.testdata.test_set import TestSet

#: A segment is identified by (seed index, segment index within the window).
SegmentId = Tuple[int, int]


@dataclass
class EmbeddingMap:
    """Which segments embed which cubes (deterministically or fortuitously)."""

    segmentation: WindowSegmentation
    cube_segments: Dict[int, Set[SegmentId]] = field(default_factory=dict)
    segment_cubes: Dict[SegmentId, Set[int]] = field(default_factory=dict)

    def add(self, cube_index: int, segment: SegmentId) -> None:
        self.cube_segments.setdefault(cube_index, set()).add(segment)
        self.segment_cubes.setdefault(segment, set()).add(cube_index)

    def segments_of(self, cube_index: int) -> Set[SegmentId]:
        return self.cube_segments.get(cube_index, set())

    def cubes_of(self, segment: SegmentId) -> Set[int]:
        return self.segment_cubes.get(segment, set())

    def embedding_counts(self) -> Dict[int, int]:
        """Number of embedding segments per cube (fortuitous richness)."""
        return {cube: len(segs) for cube, segs in self.cube_segments.items()}


@dataclass
class UsefulSegmentSelection:
    """Outcome of the useful-segment selection."""

    segmentation: WindowSegmentation
    useful_segments: Set[SegmentId]
    covering_segment: Dict[int, SegmentId]
    set_a_cubes: Set[int]
    greedy_picks: List[SegmentId]

    def useful_per_seed(self, num_seeds: int) -> List[List[int]]:
        """Sorted useful-segment indices for every seed."""
        per_seed: List[List[int]] = [[] for _ in range(num_seeds)]
        for seed_index, segment_index in self.useful_segments:
            per_seed[seed_index].append(segment_index)
        for segments in per_seed:
            segments.sort()
        return per_seed

    @property
    def num_useful(self) -> int:
        return len(self.useful_segments)


#: uint64-entry budget of one broadcast containment intermediate (~32 MB).
#: Cube chunks are sized so ``chunk x positions x words`` stays below it.
_MATCH_CHUNK_BUDGET = 4_000_000


def build_embedding_map(
    result: EncodingResult,
    test_set: TestSet,
    equations: EquationSystem,
    segmentation: WindowSegmentation,
    windows: Optional[List[List[int]]] = None,
    windows_packed: Optional[np.ndarray] = None,
) -> EmbeddingMap:
    """Record every (cube, segment) embedding via packed containment.

    A cube is embedded in a window vector iff ``(vector & care) == value``
    over the uint64 blocks of :meth:`TestCube.packed_words`; broadcasting
    that test over cubes x (seed, position) turns the former triple Python
    loop into a handful of numpy passes.  The produced
    :class:`EmbeddingMap` is identical to
    :func:`build_embedding_map_reference` (the golden tests enforce it).

    ``windows_packed`` may carry the uint64-blocked expansion
    (:meth:`EquationSystem.expand_seeds_packed` /
    :meth:`repro.context.CompressionContext.packed_windows`); ``windows``
    the classic integer form (packed here when it is all that is
    available).  When both are omitted the expansion happens here.
    Passing the context-cached expansion lets an (S, k) sweep over one
    encoding build many embedding maps without ever re-expanding a seed.
    """
    if segmentation.window_length != result.window_length:
        raise ValueError("segmentation window length does not match the encoding")
    embedding = EmbeddingMap(segmentation=segmentation)
    num_cells = equations.architecture.num_cells
    num_words = (num_cells + 63) // 64
    if windows_packed is None:
        if windows is not None:
            windows_packed = _pack_windows(windows, num_words)
        else:
            windows_packed = equations.expand_seeds_packed(
                [record.seed for record in result.seeds]
            )
    num_seeds, window_length, _ = windows_packed.shape
    cubes = test_set.cubes
    if num_seeds and cubes:
        flat = windows_packed.reshape(num_seeds * window_length, num_words)
        words = np.ascontiguousarray(flat.T)  # (W, P): word-major scan
        # Stacked once per test set and cached on it (fingerprint-keyed):
        # repeated builds over one set -- the (S, k) sweep pattern -- skip
        # the per-call np.stack over every cube.
        cares, values = test_set.packed_matrices()
        num_positions = flat.shape[0]
        segment_starts = np.array(
            [segmentation.bounds(s)[0] for s in range(segmentation.num_segments)],
            dtype=np.intp,
        )
        chunk = max(1, _MATCH_CHUNK_BUDGET // max(1, num_positions))
        for start in range(0, len(cubes), chunk):
            care_chunk = cares[start : start + chunk]
            value_chunk = values[start : start + chunk]
            # (chunk, positions): does vector p cover cube c?  Accumulated
            # word by word so the temporaries stay (chunk, P)-sized; words
            # no cube of the chunk cares about are skipped outright (cubes
            # are sparse, so most words are).
            matches = np.ones((care_chunk.shape[0], num_positions), dtype=bool)
            for w in range(num_words):
                care_w = care_chunk[:, w]
                if not care_w.any():
                    continue
                matches &= (
                    words[w][None, :] & care_w[:, None]
                ) == value_chunk[:, w][:, None]
            # Collapse positions to segments in one pass per seed axis.
            per_window = matches.reshape(-1, num_seeds, window_length)
            per_segment = np.logical_or.reduceat(per_window, segment_starts, axis=2)
            cube_idx, seed_idx, seg_idx = np.nonzero(per_segment)
            for cube_index, seed_index, segment in zip(
                cube_idx.tolist(), seed_idx.tolist(), seg_idx.tolist()
            ):
                embedding.add(start + cube_index, (seed_index, segment))
    _check_deterministic_embeddings(embedding, result, segmentation)
    return embedding


def build_embedding_map_reference(
    result: EncodingResult,
    test_set: TestSet,
    equations: EquationSystem,
    segmentation: WindowSegmentation,
    windows: Optional[List[List[int]]] = None,
) -> EmbeddingMap:
    """The pre-packed pure-Python scan over cubes x seeds x positions.

    Kept as the golden reference for :func:`build_embedding_map` (and for
    the ``repro bench embedding`` kernel's pre-PR side): matching a cube
    against a fully specified vector is two integer operations, so this
    stays usable -- just ~an order of magnitude slower than the packed
    containment test on realistic grids.
    """
    if segmentation.window_length != result.window_length:
        raise ValueError("segmentation window length does not match the encoding")
    embedding = EmbeddingMap(segmentation=segmentation)
    if windows is None:
        windows = equations.expand_seeds([record.seed for record in result.seeds])
    cubes = test_set.cubes
    for seed_index, window in enumerate(windows):
        for position, vector in enumerate(window):
            segment = (seed_index, segmentation.segment_of(position))
            for cube_index, cube in enumerate(cubes):
                if cube.matches_vector(vector):
                    embedding.add(cube_index, segment)
    _check_deterministic_embeddings(embedding, result, segmentation)
    return embedding


def _pack_windows(windows: List[List[int]], num_words: int) -> np.ndarray:
    """uint64-blocked form of integer windows (fallback packing path)."""
    num_seeds = len(windows)
    window_length = len(windows[0]) if windows else 0
    buffer = np.zeros(
        (num_seeds, window_length, num_words * 8), dtype=np.uint8
    )
    nbytes = num_words * 8
    for s, window in enumerate(windows):
        for v, vector in enumerate(window):
            buffer[s, v] = np.frombuffer(
                vector.to_bytes(nbytes, "little"), dtype=np.uint8
            )
    return buffer.view("<u8")


def _check_deterministic_embeddings(
    embedding: EmbeddingMap,
    result: EncodingResult,
    segmentation: WindowSegmentation,
) -> None:
    """Sanity: every deterministically encoded cube must be embedded in the
    segment containing its assigned position."""
    for record in result.seeds:
        for emb in record.embeddings:
            if not emb.deterministic:
                continue
            segment = (record.index, segmentation.segment_of(emb.position))
            if segment not in embedding.segments_of(emb.cube_index):
                raise RuntimeError(
                    f"cube {emb.cube_index} is not covered by its own seed "
                    f"{record.index} at position {emb.position}; the encoding "
                    f"is inconsistent"
                )


def select_useful_segments(
    embedding: EmbeddingMap,
    num_cubes: int,
    num_seeds: int = 0,
    force_first_segment_useful: bool = True,
) -> UsefulSegmentSelection:
    """Set-A / set-B partition followed by the greedy covering of Section 3.2.

    ``force_first_segment_useful`` keeps the first segment of every seed
    useful, matching the paper's decompression architecture: the seed-
    computation algorithm always solves the densest cube at the first window
    vector, and the Mode Select unit relies on the first segment of each seed
    needing no decoding logic.  Disabling it yields the unconstrained minimum
    cover (an ablation studied in ``benchmarks/bench_ablation.py``).
    """
    segmentation = embedding.segmentation
    useful: Set[SegmentId] = set()
    covering: Dict[int, SegmentId] = {}
    uncovered = set(range(num_cubes))

    if force_first_segment_useful and num_seeds > 0:
        for seed_index in range(num_seeds):
            useful.add((seed_index, 0))
        for cube in sorted(uncovered):
            for segment in embedding.segments_of(cube):
                if segment in useful:
                    covering[cube] = segment
                    break
        uncovered -= set(covering)

    # Set A: cubes embedded in exactly one segment force that segment useful.
    set_a = {
        cube
        for cube in uncovered
        if len(embedding.segments_of(cube)) == 1
    }
    for cube in sorted(set_a):
        (segment,) = embedding.segments_of(cube)
        useful.add(segment)
        covering[cube] = segment
    # Every cube (from either set) already covered by a useful segment drops out.
    for cube in sorted(uncovered):
        if cube in covering:
            continue
        for segment in embedding.segments_of(cube):
            if segment in useful:
                covering[cube] = segment
                break
    uncovered -= set(covering)

    # Greedy covering of the remaining (set B) cubes.
    greedy_picks: List[SegmentId] = []
    while uncovered:
        best_segment = None
        best_key = None
        for segment, cubes in embedding.segment_cubes.items():
            gain = len(cubes & uncovered)
            if gain == 0:
                continue
            # Most cubes first; ties towards the segment closest to the start
            # of its window, then towards earlier seeds for determinism.
            key = (-gain, segment[1], segment[0])
            if best_key is None or key < best_key:
                best_key = key
                best_segment = segment
        if best_segment is None:
            missing = sorted(uncovered)
            raise RuntimeError(
                f"cubes {missing[:10]} are not embedded in any segment; "
                f"the embedding map is inconsistent with the encoding"
            )
        useful.add(best_segment)
        greedy_picks.append(best_segment)
        for cube in sorted(embedding.cubes_of(best_segment) & uncovered):
            covering[cube] = best_segment
        uncovered -= embedding.cubes_of(best_segment)

    return UsefulSegmentSelection(
        segmentation=segmentation,
        useful_segments=useful,
        covering_segment=covering,
        set_a_cubes=set_a,
        greedy_picks=greedy_picks,
    )
