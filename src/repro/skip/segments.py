"""Window segmentation.

Every seed's ``L``-vector window is partitioned into segments of ``S``
vectors (``S`` is the designer-chosen parameter of Section 3.2; the paper
sweeps 2..50).  Segments are the granularity at which the decompressor
switches between Normal and State Skip mode: a *useful* segment (one that
embeds at least one test cube) is generated in Normal mode, a *useless* one
is fast-forwarded in State Skip mode.

When ``S`` does not divide ``L`` the last segment is simply shorter; the paper
always uses divisors but nothing in the method requires it.
"""

from __future__ import annotations

from typing import List, Tuple


class WindowSegmentation:
    """Partition of an ``L``-vector window into segments of ``S`` vectors."""

    def __init__(self, window_length: int, segment_size: int):
        if window_length < 1:
            raise ValueError("window_length must be positive")
        if not 1 <= segment_size <= window_length:
            raise ValueError(
                "segment_size must be between 1 and the window length"
            )
        self._window_length = window_length
        self._segment_size = segment_size
        self._num_segments = -(-window_length // segment_size)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def window_length(self) -> int:
        return self._window_length

    @property
    def segment_size(self) -> int:
        return self._segment_size

    @property
    def num_segments(self) -> int:
        """Number of segments per window (``ceil(L / S)``)."""
        return self._num_segments

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def segment_of(self, position: int) -> int:
        """Segment index containing a window-vector position."""
        if not 0 <= position < self._window_length:
            raise IndexError(
                f"position {position} out of range for window {self._window_length}"
            )
        return position // self._segment_size

    def bounds(self, segment: int) -> Tuple[int, int]:
        """Half-open vector range ``[start, end)`` of a segment."""
        if not 0 <= segment < self._num_segments:
            raise IndexError(f"segment {segment} out of range")
        start = segment * self._segment_size
        end = min(start + self._segment_size, self._window_length)
        return start, end

    def length(self, segment: int) -> int:
        """Number of vectors in a segment (the last one may be shorter)."""
        start, end = self.bounds(segment)
        return end - start

    def positions(self, segment: int) -> List[int]:
        """Window-vector positions belonging to a segment."""
        start, end = self.bounds(segment)
        return list(range(start, end))

    def __repr__(self) -> str:
        return (
            f"WindowSegmentation(L={self._window_length}, S={self._segment_size}, "
            f"segments={self._num_segments})"
        )
