"""Test-sequence reduction and accounting (Section 3.2 of the paper).

Given a window-based encoding, the reduction pipeline is:

1. segment every window (:class:`~repro.skip.segments.WindowSegmentation`),
2. map every cube to every segment that embeds it
   (:func:`~repro.skip.selection.build_embedding_map`),
3. choose a minimal set of useful segments
   (:func:`~repro.skip.selection.select_useful_segments`),
4. group the seeds by their useful-segment count and truncate each window
   right after its last useful segment,
5. account for the applied vectors: useful segments are generated in Normal
   mode (one vector per ``r`` clocks), useless segments before the last
   useful one are fast-forwarded in State Skip mode.

The result carries both figures of merit (the shortened TSL, the unchanged
TDV) and the per-seed schedule that the decompressor simulation replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.encoding.equations import EquationSystem
from repro.encoding.results import EncodingResult
from repro.skip.segments import WindowSegmentation
from repro.skip.selection import (
    EmbeddingMap,
    UsefulSegmentSelection,
    build_embedding_map,
    select_useful_segments,
)
from repro.testdata.literature import tsl_improvement
from repro.testdata.test_set import TestSet


@dataclass(frozen=True)
class ReductionConfig:
    """Parameters of the State Skip reduction.

    Attributes
    ----------
    segment_size:
        Segment size ``S`` in vectors.
    speedup:
        State Skip speedup factor ``k`` (states advanced per skip clock).
    alignment:
        ``"exact"`` accounts for the skip-mode clocks a real State Skip LFSR
        needs (``floor(cycles/k)`` jumps plus ``cycles mod k`` normal clocks
        so the register lands exactly on the next segment boundary);
        ``"ideal"`` uses the paper's first-order model of ``ceil(S/k)``
        vectors per useless segment.  The two differ by at most one vector
        per useless segment.
    force_first_segment_useful:
        Keep the first segment of every seed useful (the paper's
        architecture assumption); see
        :func:`repro.skip.selection.select_useful_segments`.
    """

    segment_size: int
    speedup: int
    alignment: str = "exact"
    force_first_segment_useful: bool = True

    def __post_init__(self):
        if self.segment_size < 1:
            raise ValueError("segment_size must be positive")
        if self.speedup < 1:
            raise ValueError("speedup must be at least 1")
        if self.alignment not in ("exact", "ideal"):
            raise ValueError("alignment must be 'exact' or 'ideal'")


@dataclass
class SegmentPlan:
    """How one segment of one seed is traversed by the decompressor."""

    segment_index: int
    useful: bool
    vector_range: Tuple[int, int]
    vectors_applied: int
    lfsr_clocks: int
    skip_clocks: int


@dataclass
class SeedSchedule:
    """Traversal plan of one seed's window after reduction."""

    seed_index: int
    useful_segments: List[int]
    segments: List[SegmentPlan] = field(default_factory=list)

    @property
    def num_useful(self) -> int:
        return len(self.useful_segments)

    @property
    def vectors_applied(self) -> int:
        return sum(plan.vectors_applied for plan in self.segments)

    @property
    def last_useful_segment(self) -> Optional[int]:
        return self.useful_segments[-1] if self.useful_segments else None


@dataclass
class ReductionResult:
    """Complete outcome of the State Skip reduction for one encoding.

    ``selection`` and ``embedding`` carry the full analysis maps of a live
    reduction; results rebuilt from :meth:`from_dict` leave them ``None``
    (the schedules alone determine every figure of merit).
    """

    circuit: str
    config: ReductionConfig
    window_length: int
    num_segments_per_window: int
    schedules: List[SeedSchedule]
    original_tsl: int
    test_data_volume: int
    selection: Optional[UsefulSegmentSelection] = None
    embedding: Optional[EmbeddingMap] = None

    @property
    def test_sequence_length(self) -> int:
        """Vectors applied to the CUT by the proposed (State Skip) scheme."""
        return sum(schedule.vectors_applied for schedule in self.schedules)

    @property
    def improvement_percent(self) -> float:
        """Relation (2) of the paper vs the original window-based scheme."""
        return tsl_improvement(self.test_sequence_length, self.original_tsl)

    @property
    def num_useful_segments(self) -> int:
        if self.selection is not None:
            return self.selection.num_useful
        return sum(schedule.num_useful for schedule in self.schedules)

    @property
    def num_seeds(self) -> int:
        return len(self.schedules)

    def seed_groups(self) -> Dict[int, List[int]]:
        """Seeds grouped by useful-segment count (the Group Counter layout)."""
        groups: Dict[int, List[int]] = {}
        for schedule in self.schedules:
            groups.setdefault(schedule.num_useful, []).append(schedule.seed_index)
        return {count: groups[count] for count in sorted(groups)}

    def application_order(self) -> List[int]:
        """Seed application order: groups ascending, original order within."""
        order = []
        for _, seeds in self.seed_groups().items():
            order.extend(seeds)
        return order

    def summary(self) -> Dict[str, float]:
        return {
            "circuit": self.circuit,
            "segment_size": self.config.segment_size,
            "speedup": self.config.speedup,
            "num_seeds": self.num_seeds,
            "tdv_bits": self.test_data_volume,
            "orig_tsl": self.original_tsl,
            "prop_tsl": self.test_sequence_length,
            "improvement_pct": self.improvement_percent,
            "useful_segments": self.num_useful_segments,
        }

    # ------------------------------------------------------------------
    # Serialisation (campaign result store)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe serialisation of the schedules and figures of merit.

        The analysis maps (``selection``, ``embedding``) are not stored;
        a result loaded back with :meth:`from_dict` reports the same TSL,
        improvement and per-seed schedules but cannot answer which cube is
        covered by which segment.
        """
        return {
            "circuit": self.circuit,
            "config": {
                "segment_size": self.config.segment_size,
                "speedup": self.config.speedup,
                "alignment": self.config.alignment,
                "force_first_segment_useful": self.config.force_first_segment_useful,
            },
            "window_length": self.window_length,
            "num_segments_per_window": self.num_segments_per_window,
            "original_tsl": self.original_tsl,
            "test_data_volume": self.test_data_volume,
            "schedules": [
                {
                    "seed_index": schedule.seed_index,
                    "useful_segments": list(schedule.useful_segments),
                    "segments": [
                        [
                            plan.segment_index,
                            plan.useful,
                            list(plan.vector_range),
                            plan.vectors_applied,
                            plan.lfsr_clocks,
                            plan.skip_clocks,
                        ]
                        for plan in schedule.segments
                    ],
                }
                for schedule in self.schedules
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ReductionResult":
        """Rebuild a schedule-level result from :meth:`to_dict` output."""
        schedules = [
            SeedSchedule(
                seed_index=entry["seed_index"],
                useful_segments=list(entry["useful_segments"]),
                segments=[
                    SegmentPlan(
                        segment_index=index,
                        useful=bool(useful),
                        vector_range=(vector_range[0], vector_range[1]),
                        vectors_applied=vectors_applied,
                        lfsr_clocks=lfsr_clocks,
                        skip_clocks=skip_clocks,
                    )
                    for index, useful, vector_range, vectors_applied,
                    lfsr_clocks, skip_clocks in entry["segments"]
                ],
            )
            for entry in data["schedules"]
        ]
        return cls(
            circuit=data["circuit"],
            config=ReductionConfig(**data["config"]),
            window_length=data["window_length"],
            num_segments_per_window=data["num_segments_per_window"],
            schedules=schedules,
            original_tsl=data["original_tsl"],
            test_data_volume=data["test_data_volume"],
        )


class SequenceReducer:
    """Applies the Section 3.2 reduction to a window-based encoding."""

    def __init__(self, equations: EquationSystem, config: ReductionConfig):
        if config.segment_size > equations.window_length:
            raise ValueError("segment_size cannot exceed the window length")
        self._equations = equations
        self._config = config
        self._segmentation = WindowSegmentation(
            equations.window_length, config.segment_size
        )

    @property
    def segmentation(self) -> WindowSegmentation:
        return self._segmentation

    @property
    def config(self) -> ReductionConfig:
        return self._config

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def reduce(
        self,
        result: EncodingResult,
        test_set: TestSet,
        windows: Optional[List[List[int]]] = None,
        windows_packed=None,
    ) -> ReductionResult:
        """Run the full reduction on an encoding result.

        ``windows`` / ``windows_packed`` may carry the already-expanded
        seed windows of the encoding in integer / uint64-blocked form (see
        :func:`repro.skip.selection.build_embedding_map`); the staged
        pipeline passes the context-cached packed expansion so the reducer
        never re-expands a seed.
        """
        embedding = build_embedding_map(
            result,
            test_set,
            self._equations,
            self._segmentation,
            windows=windows,
            windows_packed=windows_packed,
        )
        selection = select_useful_segments(
            embedding,
            num_cubes=result.num_cubes,
            num_seeds=result.num_seeds,
            force_first_segment_useful=self._config.force_first_segment_useful,
        )
        per_seed = selection.useful_per_seed(result.num_seeds)
        schedules = [
            self._schedule_seed(seed_index, useful)
            for seed_index, useful in enumerate(per_seed)
        ]
        return ReductionResult(
            circuit=result.circuit,
            config=self._config,
            window_length=result.window_length,
            num_segments_per_window=self._segmentation.num_segments,
            schedules=schedules,
            selection=selection,
            embedding=embedding,
            original_tsl=result.test_sequence_length,
            test_data_volume=result.test_data_volume,
        )

    # ------------------------------------------------------------------
    # Per-seed scheduling
    # ------------------------------------------------------------------
    def _schedule_seed(
        self, seed_index: int, useful_segments: List[int]
    ) -> SeedSchedule:
        """Traversal plan: segments up to the last useful one, then stop."""
        schedule = SeedSchedule(seed_index=seed_index, useful_segments=useful_segments)
        if not useful_segments:
            return schedule
        last_useful = useful_segments[-1]
        useful_set = set(useful_segments)
        chain_length = self._equations.architecture.chain_length
        for segment in range(last_useful + 1):
            seg_vectors = self._segmentation.length(segment)
            if segment in useful_set:
                plan = SegmentPlan(
                    segment_index=segment,
                    useful=True,
                    vector_range=self._segmentation.bounds(segment),
                    vectors_applied=seg_vectors,
                    lfsr_clocks=seg_vectors * chain_length,
                    skip_clocks=0,
                )
            else:
                plan = self._useless_plan(segment, seg_vectors, chain_length)
            schedule.segments.append(plan)
        return schedule

    def _useless_plan(
        self, segment: int, seg_vectors: int, chain_length: int
    ) -> SegmentPlan:
        """Clock/vector accounting for a segment traversed in State Skip mode."""
        k = self._config.speedup
        total_states = seg_vectors * chain_length
        if self._config.alignment == "ideal":
            vectors = -(-seg_vectors // k)  # ceil(S / k), the paper's model
            skip_clocks = -(-total_states // k)
            clocks = skip_clocks
        else:
            skip_clocks = total_states // k
            remainder = total_states % k
            clocks = skip_clocks + remainder
            vectors = -(-clocks // chain_length)
        return SegmentPlan(
            segment_index=segment,
            useful=False,
            vector_range=self._segmentation.bounds(segment),
            vectors_applied=vectors,
            lfsr_clocks=clocks,
            skip_clocks=skip_clocks,
        )


def reduce_sequence(
    result: EncodingResult,
    test_set: TestSet,
    equations: EquationSystem,
    segment_size: int,
    speedup: int,
    alignment: str = "exact",
    force_first_segment_useful: bool = True,
    windows: Optional[List[List[int]]] = None,
    windows_packed=None,
) -> ReductionResult:
    """One-call State Skip reduction of an encoding result."""
    config = ReductionConfig(
        segment_size=segment_size,
        speedup=speedup,
        alignment=alignment,
        force_first_segment_useful=force_first_segment_useful,
    )
    return SequenceReducer(equations, config).reduce(
        result, test_set, windows=windows, windows_packed=windows_packed
    )
