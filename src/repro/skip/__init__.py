"""Test-sequence reduction with State Skip LFSRs (Section 3.2 of the paper).

The window-based encoder gives excellent compression but applies ``L`` vectors
per seed, most of which are useless.  This package implements the paper's
reduction method:

* :class:`~repro.skip.segments.WindowSegmentation` -- partition each window
  into segments of ``S`` vectors.
* :class:`~repro.skip.selection.EmbeddingMap` /
  :func:`~repro.skip.selection.select_useful_segments` -- find every segment
  in which every cube is (deterministically or fortuitously) embedded, then
  choose a minimal set of *useful* segments covering all cubes (set-A/set-B
  partition followed by the greedy covering step).
* :class:`~repro.skip.reduction.SequenceReducer` -- group seeds by their
  useful-segment count, truncate each window after its last useful segment,
  traverse useless segments in State Skip mode, and account for the resulting
  test sequence length.
"""

from repro.skip.segments import WindowSegmentation
from repro.skip.selection import (
    EmbeddingMap,
    UsefulSegmentSelection,
    build_embedding_map,
    build_embedding_map_reference,
    select_useful_segments,
)
from repro.skip.reduction import (
    ReductionConfig,
    ReductionResult,
    SeedSchedule,
    SequenceReducer,
    reduce_sequence,
)

__all__ = [
    "WindowSegmentation",
    "EmbeddingMap",
    "UsefulSegmentSelection",
    "build_embedding_map",
    "build_embedding_map_reference",
    "select_useful_segments",
    "ReductionConfig",
    "ReductionResult",
    "SeedSchedule",
    "SequenceReducer",
    "reduce_sequence",
]
