"""Plain-text table rendering for examples and the benchmark harness.

The benchmark scripts regenerate the paper's tables; this module renders the
measured-vs-published rows as aligned monospace tables so the output of
``pytest benchmarks/`` (and of the examples) reads like the paper's own
tables.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell) -> str:
    """Render one table cell."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, Cell]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return (title + "\n") if title else ""
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[format_cell(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), max(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in rendered:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines) + "\n"


def comparison_row(
    label: str,
    measured: Dict[str, Cell],
    published: Dict[str, Cell],
    keys: Sequence[str],
) -> Dict[str, Cell]:
    """Merge measured and published values into one row (``key`` / ``key_paper``)."""
    row: Dict[str, Cell] = {"circuit": label}
    for key in keys:
        row[key] = measured.get(key)
        row[f"{key}_paper"] = published.get(key)
    return row


def pivot_rows(
    rows: Sequence[Dict[str, Cell]],
    row_axis: str,
    col_axis: str,
    value: str,
    reduce: str = "max",
) -> Dict[Cell, Dict[Cell, Cell]]:
    """Pivot flat rows into a two-axis grid (``{row -> {col -> value}}``).

    Rows missing either axis are skipped.  When several rows collide on one
    cell, ``reduce`` picks the survivor: ``"max"``, ``"min"`` or ``"last"``.
    """
    if reduce not in ("max", "min", "last"):
        raise ValueError("reduce must be 'max', 'min' or 'last'")
    grid: Dict[Cell, Dict[Cell, Cell]] = {}
    for row in rows:
        if row_axis not in row or col_axis not in row:
            continue
        cell = grid.setdefault(row[row_axis], {})
        current = cell.get(row[col_axis])
        if (
            current is None
            or reduce == "last"
            or (reduce == "max" and row[value] > current)
            or (reduce == "min" and row[value] < current)
        ):
            cell[row[col_axis]] = row[value]
    return grid


def improvement_table(
    circuit: str,
    sweep: Dict[int, Dict[int, float]],
    row_label: str = "k",
    column_label: str = "S",
) -> str:
    """Render a two-parameter sweep (e.g. Fig. 4) as a grid of percentages."""
    columns = sorted({col for by_col in sweep.values() for col in by_col})
    rows = []
    for row_key in sorted(sweep):
        row: Dict[str, Cell] = {row_label: row_key}
        for col in columns:
            row[f"{column_label}={col}"] = sweep[row_key].get(col)
        rows.append(row)
    return format_table(rows, title=f"TSL improvement (%) for {circuit}")
