"""Test sets: ordered collections of test cubes plus their statistics.

A :class:`TestSet` is what the system integrator receives from the core
vendor for an IP core: a list of pre-computed test cubes, all of the same
width, with no structural information attached.  The class also carries the
simple statistics (cube count, maximum and total specified bits) that drive
LFSR sizing and the calibrated synthetic generators, plus a plain-text
serialisation so generated sets can be stored alongside the benchmarks.
"""

from __future__ import annotations

import hashlib
import statistics
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.lru import LRUCache
from repro.testdata.cube import TestCube


@dataclass(frozen=True)
class TestSetStats:
    """Summary statistics of a test set."""

    #: Tell pytest this domain class is not a test-case class.
    __test__ = False

    num_cubes: int
    num_cells: int
    max_specified: int
    min_specified: int
    total_specified: int
    mean_specified: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.num_cubes} cubes x {self.num_cells} cells, "
            f"specified bits: max {self.max_specified}, "
            f"mean {self.mean_specified:.1f}, total {self.total_specified}"
        )


class TestSet:
    """An ordered, width-consistent collection of test cubes."""

    #: Tell pytest this domain class is not a test-case class.
    __test__ = False

    #: Shared cache of stacked packed matrices, keyed by
    #: ``(fingerprint, num_cells)`` so re-parsed copies of one test set
    #: (common across campaign configs) reuse one matrix pair.  Bounded
    #: LRU; see :meth:`packed_matrices`.
    _PACKED_MATRIX_CACHE_SIZE = 8
    _PACKED_MATRIX_CACHE: LRUCache = LRUCache(_PACKED_MATRIX_CACHE_SIZE)

    def __init__(self, name: str, cubes: Sequence[TestCube]):
        if not cubes:
            raise ValueError("a test set needs at least one cube")
        width = cubes[0].num_cells
        for i, cube in enumerate(cubes):
            if cube.num_cells != width:
                raise ValueError(
                    f"cube {i} has {cube.num_cells} cells, expected {width}"
                )
            if cube.is_empty():
                raise ValueError(f"cube {i} has no specified bits")
        self._name = name
        self._cubes = list(cubes)
        self._num_cells = width
        self._fingerprint: Optional[str] = None
        self._packed_matrices: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def num_cells(self) -> int:
        return self._num_cells

    @property
    def cubes(self) -> List[TestCube]:
        return list(self._cubes)

    def __len__(self) -> int:
        return len(self._cubes)

    def __iter__(self) -> Iterator[TestCube]:
        return iter(self._cubes)

    def __getitem__(self, index: int) -> TestCube:
        return self._cubes[index]

    def stats(self) -> TestSetStats:
        counts = [cube.specified_count() for cube in self._cubes]
        return TestSetStats(
            num_cubes=len(self._cubes),
            num_cells=self._num_cells,
            max_specified=max(counts),
            min_specified=min(counts),
            total_specified=sum(counts),
            mean_specified=statistics.fmean(counts),
        )

    def max_specified(self) -> int:
        """``s_max``: the largest specified-bit count over all cubes."""
        return max(cube.specified_count() for cube in self._cubes)

    def total_specified(self) -> int:
        return sum(cube.specified_count() for cube in self._cubes)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def sorted_by_specified(self, descending: bool = True) -> "TestSet":
        """Cubes ordered by specified-bit count (the encoder's base order)."""
        ordered = sorted(
            self._cubes, key=lambda c: c.specified_count(), reverse=descending
        )
        return TestSet(self._name, ordered)

    def compacted(self) -> "TestSet":
        """Greedy static compaction by compatibility merging.

        Repeatedly merges each cube into the first compatible accumulated
        cube.  The paper works with *uncompacted* test sets (and so do the
        benchmarks), but compaction is a common pre-processing step and is
        used by some of the comparison baselines.
        """
        merged: List[TestCube] = []
        for cube in sorted(
            self._cubes, key=lambda c: c.specified_count(), reverse=True
        ):
            for i, existing in enumerate(merged):
                if existing.compatible(cube):
                    merged[i] = existing.merge(cube)
                    break
            else:
                merged.append(cube)
        return TestSet(self._name, merged)

    def subset(self, count: int) -> "TestSet":
        """The first ``count`` cubes (used by scaled-down benchmark runs)."""
        if count < 1:
            raise ValueError("count must be positive")
        return TestSet(self._name, self._cubes[: min(count, len(self._cubes))])

    # ------------------------------------------------------------------
    # Coverage checking
    # ------------------------------------------------------------------
    def uncovered_cubes(self, vectors: Iterable[int]) -> List[int]:
        """Indices of cubes not covered by any of the given packed vectors."""
        vector_list = list(vectors)
        missing = []
        for index, cube in enumerate(self._cubes):
            if not any(cube.matches_vector(v) for v in vector_list):
                missing.append(index)
        return missing

    def all_covered(self, vectors: Iterable[int]) -> bool:
        """True when every cube is covered by at least one vector."""
        return not self.uncovered_cubes(vectors)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash of the test set.

        Covers the name, width and every cube string (in order), so two test
        sets with the same fingerprint encode identically.  Computed with
        SHA-256 over the canonical text form, making it safe to use as a
        cache key across processes and interpreter runs -- the campaign
        result store keys every record by ``(fingerprint, config.cache_key())``.
        Memoised: the instance is immutable, so the hash is computed once.
        """
        fingerprint = self._fingerprint
        if fingerprint is None:
            digest = hashlib.sha256()
            digest.update(f"{self._name}\n{self._num_cells}\n".encode("utf-8"))
            for cube in self._cubes:
                digest.update(cube.to_string().encode("ascii"))
                digest.update(b"\n")
            fingerprint = digest.hexdigest()[:16]
            self._fingerprint = fingerprint
        return fingerprint

    def packed_matrices(self) -> Tuple[np.ndarray, np.ndarray]:
        """The stacked ``(cares, values)`` uint64 matrices of all cubes.

        Row ``i`` is cube ``i``'s :meth:`TestCube.packed_words` pair, so
        the embedding matcher's broadcast containment test reads the whole
        test set as two ``(num_cubes, num_words)`` arrays without
        re-stacking them per :func:`~repro.skip.selection.build_embedding_map`
        call -- an (S, k) sweep builds many embedding maps over one test
        set.  Cached on the instance and, keyed by ``(fingerprint,
        num_cells)``, in a small class-level LRU shared across
        equal-content instances.  The arrays are read-only; treat them as
        immutable.
        """
        cached = self._packed_matrices
        if cached is None:
            key = (self.fingerprint(), self._num_cells)
            cache = TestSet._PACKED_MATRIX_CACHE
            cached = cache.get(key)
            if cached is None:
                cares = np.stack(
                    [cube.packed_words()[0] for cube in self._cubes]
                )
                values = np.stack(
                    [cube.packed_words()[1] for cube in self._cubes]
                )
                cares.setflags(write=False)
                values.setflags(write=False)
                cached = (cares, values)
                cache.put(key, cached)
            self._packed_matrices = cached
        return cached

    def to_text(self) -> str:
        """Serialise as one cube string per line with a small header."""
        lines = [f"# test set {self._name}", f"# cells {self._num_cells}"]
        lines.extend(cube.to_string() for cube in self._cubes)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str, name: Optional[str] = None) -> "TestSet":
        """Parse the :meth:`to_text` format (comments start with ``#``)."""
        cubes = []
        parsed_name = name or "testset"
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if name is None and line.startswith("# test set "):
                    parsed_name = line[len("# test set "):].strip()
                continue
            cubes.append(TestCube.from_string(line))
        return cls(parsed_name, cubes)

    def __repr__(self) -> str:
        return (
            f"TestSet(name={self._name!r}, cubes={len(self._cubes)}, "
            f"cells={self._num_cells})"
        )
