"""Calibrated synthetic test-set generation.

The paper's experiments consume uncompacted stuck-at test sets produced by
Atalanta for the large ISCAS'89 circuits.  Those exact artefacts are not
available here, so the generator in this module produces test sets whose
*statistics* -- cube count, specified-bit distribution, maximum specified
bits, clustering of the care bits -- match a
:class:`~repro.testdata.profiles.CircuitProfile`.  The compression and
embedding algorithms only ever look at those statistics, which is what makes
the substitution faithful (see DESIGN.md).

Two properties of real ATPG cubes matter for reseeding and are modelled
explicitly:

* The specified-bit count is heavily skewed: a few cubes (targeting
  hard-to-test faults) specify close to ``s_max`` bits, while the long tail
  specifies only a handful.  A truncated log-normal distribution reproduces
  this shape.
* Care bits cluster on a subset of "popular" cells (the cone of influence of
  frequently targeted fault sites) rather than being uniformly spread.  A
  Zipf-like cell-popularity weighting reproduces the fortuitous-embedding
  behaviour that the paper's Section 3.2 exploits.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from repro.testdata.cube import TestCube
from repro.testdata.profiles import CircuitProfile
from repro.testdata.test_set import TestSet


class SyntheticTestSetGenerator:
    """Generates reproducible test sets matching a circuit profile."""

    def __init__(self, profile: CircuitProfile, seed: int = 1):
        self._profile = profile
        self._seed = seed

    @property
    def profile(self) -> CircuitProfile:
        return self._profile

    # ------------------------------------------------------------------
    # Distribution helpers
    # ------------------------------------------------------------------
    def _specified_counts(self, rng: random.Random) -> List[int]:
        """Draw the specified-bit count of every cube.

        A log-normal distribution with the profile's mean and sigma,
        truncated to ``[2, max_specified]``; the first cube is forced to
        ``max_specified`` so that ``s_max`` (and hence the required LFSR
        size) is exactly the profile's value.
        """
        profile = self._profile
        mu = math.log(max(profile.mean_specified, 2.0)) - profile.sigma ** 2 / 2.0
        counts = [profile.max_specified]
        for _ in range(profile.num_cubes - 1):
            draw = rng.lognormvariate(mu, profile.sigma)
            count = int(round(draw))
            count = max(2, min(profile.max_specified, count))
            counts.append(count)
        return counts

    def _cell_weights(self) -> List[float]:
        """Zipf-like popularity of scan cells (deterministic per profile)."""
        cells = self._profile.scan_cells
        shuffle_rng = random.Random(self._seed * 7919 + 13)
        ranks = list(range(1, cells + 1))
        shuffle_rng.shuffle(ranks)
        return [1.0 / (rank ** 0.45) for rank in ranks]

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self) -> TestSet:
        """Produce the calibrated test set."""
        profile = self._profile
        rng = random.Random(self._seed)
        counts = self._specified_counts(rng)
        weights = self._cell_weights()
        cells = profile.scan_cells
        cubes = []
        for count in counts:
            chosen = self._weighted_sample(rng, weights, count)
            assignments = {cell: rng.getrandbits(1) for cell in chosen}
            cubes.append(TestCube.from_assignments(cells, assignments))
        return TestSet(profile.name, cubes)

    @staticmethod
    def _weighted_sample(
        rng: random.Random, weights: Sequence[float], count: int
    ) -> List[int]:
        """Sample ``count`` distinct cells with probability ~ weight."""
        population = len(weights)
        count = min(count, population)
        # Efraimidis-Spirakis weighted sampling without replacement:
        # the cells with the largest u^(1/w) keys win.
        keys = []
        for cell, weight in enumerate(weights):
            u = rng.random()
            keys.append((u ** (1.0 / weight), cell))
        keys.sort(reverse=True)
        return [cell for _, cell in keys[:count]]


def generate_test_set(
    profile: CircuitProfile, seed: int = 1, scale: Optional[float] = None
) -> TestSet:
    """Convenience wrapper: generate the calibrated test set for a profile.

    ``scale`` (0, 1] shrinks the cube count proportionally; used by the
    benchmark harness to keep pure-Python run times reasonable while keeping
    every statistic of the individual cubes unchanged.
    """
    if scale is not None:
        profile = profile.scaled(scale)
    return SyntheticTestSetGenerator(profile, seed=seed).generate()
