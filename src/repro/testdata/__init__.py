"""Test cubes, test sets, calibrated benchmark profiles and literature data."""

from repro.testdata.cube import TestCube
from repro.testdata.test_set import TestSet
from repro.testdata.profiles import (
    CircuitProfile,
    ISCAS89_PROFILES,
    get_profile,
    profile_names,
)
from repro.testdata.synthetic import SyntheticTestSetGenerator, generate_test_set
from repro.testdata import literature

__all__ = [
    "TestCube",
    "TestSet",
    "CircuitProfile",
    "ISCAS89_PROFILES",
    "get_profile",
    "profile_names",
    "SyntheticTestSetGenerator",
    "generate_test_set",
    "literature",
]
