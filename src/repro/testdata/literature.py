"""Published reference numbers from the paper and its comparison methods.

The benchmark harness reports our measured results side by side with the
numbers published in the paper, so the values of every table are recorded
here verbatim:

* :data:`TABLE1` -- classical vs window-based reseeding (TDV / TSL).
* :data:`TABLE2` -- test-sequence-length improvements of the proposed method.
* :data:`TABLE3` -- comparison against the test-set-embedding methods [11]
  (Kaseridis et al., ETS 2005) and [22] (Li & Chakrabarty, TCAD 2004).
* :data:`TABLE4` -- comparison against test-data-compression methods for IP
  cores with multiple scan chains.
* :data:`HARDWARE` -- the gate-equivalent figures quoted in Section 4.

Competitor rows are literature constants (the paper itself compares against
published numbers); the "classical" and "proposed" rows are also what our own
implementation regenerates, which is how the benches check the reproduction.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Table 1 -- Classical vs window-based LFSR reseeding.
#: circuit -> {"lfsr": n, L -> {"tdv": bits, "tsl": vectors}}
TABLE1: Dict[str, Dict] = {
    "s9234": {
        "lfsr": 44,
        1: {"tdv": 10692, "tsl": 243},
        50: {"tdv": 8008, "tsl": 9100},
        200: {"tdv": 7128, "tsl": 32400},
        500: {"tdv": 6688, "tsl": 76000},
    },
    "s13207": {
        "lfsr": 24,
        1: {"tdv": 8856, "tsl": 369},
        50: {"tdv": 5328, "tsl": 11100},
        200: {"tdv": 3816, "tsl": 31800},
        500: {"tdv": 2688, "tsl": 56000},
    },
    "s15850": {
        "lfsr": 39,
        1: {"tdv": 11622, "tsl": 298},
        50: {"tdv": 7410, "tsl": 9500},
        200: {"tdv": 6669, "tsl": 34200},
        500: {"tdv": 6201, "tsl": 79500},
    },
    "s38417": {
        "lfsr": 85,
        1: {"tdv": 58225, "tsl": 685},
        50: {"tdv": 50660, "tsl": 29800},
        200: {"tdv": 48110, "tsl": 113200},
        500: {"tdv": 47005, "tsl": 276500},
    },
    "s38584": {
        "lfsr": 56,
        1: {"tdv": 22680, "tsl": 405},
        50: {"tdv": 10584, "tsl": 9450},
        200: {"tdv": 7056, "tsl": 25200},
        500: {"tdv": 5152, "tsl": 46000},
    },
}

#: Table 2 -- TSL of the original window-based method vs the proposed one.
#: circuit -> L -> {"orig": vectors, "prop": vectors, "impr": percent}
TABLE2: Dict[str, Dict[int, Dict[str, float]]] = {
    "s9234": {
        50: {"orig": 9100, "prop": 1082, "impr": 88.0},
        200: {"orig": 32400, "prop": 1784, "impr": 94.0},
        500: {"orig": 76000, "prop": 3055, "impr": 96.0},
    },
    "s13207": {
        50: {"orig": 11100, "prop": 1309, "impr": 88.0},
        200: {"orig": 31800, "prop": 1756, "impr": 94.0},
        500: {"orig": 56000, "prop": 2701, "impr": 95.0},
    },
    "s15850": {
        50: {"orig": 9500, "prop": 1129, "impr": 88.0},
        200: {"orig": 34200, "prop": 1740, "impr": 95.0},
        500: {"orig": 79500, "prop": 2791, "impr": 96.0},
    },
    "s38417": {
        50: {"orig": 29800, "prop": 7626, "impr": 74.0},
        200: {"orig": 113200, "prop": 13113, "impr": 88.0},
        500: {"orig": 276500, "prop": 21865, "impr": 92.0},
    },
    "s38584": {
        50: {"orig": 9450, "prop": 3805, "impr": 60.0},
        200: {"orig": 25200, "prop": 6639, "impr": 74.0},
        500: {"orig": 46000, "prop": 9054, "impr": 80.0},
    },
}

#: Table 3 -- comparison against test set embedding methods, L = 300.
#: circuit -> method -> {"tdv": ..., "tsl": ...}; "prop" is the paper's own.
TABLE3: Dict[str, Dict[str, Dict[str, int]]] = {
    "s9234": {
        "kaseridis05": {"tdv": 7020, "tsl": 24592},
        "li_chakrabarty04": {"tdv": 648, "tsl": 135765},
        "prop": {"tdv": 6864, "tsl": 2163},
    },
    "s13207": {
        "kaseridis05": {"tdv": 3475, "tsl": 24724},
        "li_chakrabarty04": {"tdv": 162, "tsl": 152596},
        "prop": {"tdv": 3336, "tsl": 2072},
    },
    "s15850": {
        "kaseridis05": {"tdv": 6520, "tsl": 27630},
        "li_chakrabarty04": {"tdv": 396, "tsl": 222336},
        "prop": {"tdv": 6357, "tsl": 2138},
    },
    "s38417": {
        "kaseridis05": {"tdv": 48418, "tsl": 85885},
        "li_chakrabarty04": {"tdv": 5440, "tsl": 625273},
        "prop": {"tdv": 47855, "tsl": 18512},
    },
    "s38584": {
        "kaseridis05": {"tdv": 6384, "tsl": 29358},
        "li_chakrabarty04": {"tdv": 228, "tsl": 383009},
        "prop": {"tdv": 6272, "tsl": 7489},
    },
}

#: Table 3 -- published TSL improvements of the proposed method (percent).
TABLE3_IMPROVEMENTS: Dict[str, Dict[str, float]] = {
    "s9234": {"kaseridis05": 91.2, "li_chakrabarty04": 98.4},
    "s13207": {"kaseridis05": 91.6, "li_chakrabarty04": 98.6},
    "s15850": {"kaseridis05": 92.3, "li_chakrabarty04": 99.0},
    "s38417": {"kaseridis05": 78.4, "li_chakrabarty04": 97.0},
    "s38584": {"kaseridis05": 74.5, "li_chakrabarty04": 98.0},
}

#: Table 4 -- test data compression methods for IP cores with multiple scan
#: chains.  Values are (TSL, TDV); ``None`` where the paper prints "-".
#: "classical" is plain LFSR reseeding (L = 1), "prop" the proposed method at
#: L = 200; both are regenerated by our implementation.
TABLE4: Dict[str, Dict[str, Tuple[Optional[int], Optional[int]]]] = {
    "s9234": {
        "balakrishnan06": (170, 15092),
        "krishna_touba02": (205, 12445),
        "lee_touba04": (205, 10302),
        "ward05": (205, None),
        "li05": (159, 30144),
        "reda_orailoglu02": (159, None),
        "krishna_touba03": (None, None),
        "respin02": (161, 17198),
        "classical": (243, 10692),
        "prop": (1784, 7128),
    },
    "s13207": {
        "balakrishnan06": (229, 12798),
        "krishna_touba02": (266, 11859),
        "lee_touba04": (266, 10484),
        "ward05": (266, 10810),
        "li05": (236, 20988),
        "reda_orailoglu02": (236, 74423),
        "krishna_touba03": (266, 14307),
        "respin02": (242, 26004),
        "classical": (369, 8856),
        "prop": (1756, 3816),
    },
    "s15850": {
        "balakrishnan06": (244, 15480),
        "krishna_touba02": (269, 12663),
        "lee_touba04": (269, 11411),
        "ward05": (269, 12405),
        "li05": (126, 25140),
        "reda_orailoglu02": (126, 26021),
        "krishna_touba03": (226, 15067),
        "respin02": (306, 32226),
        "classical": (298, 11622),
        "prop": (1740, 6669),
    },
    "s38417": {
        "balakrishnan06": (376, 37020),
        "krishna_touba02": (376, 36430),
        "lee_touba04": (376, 32152),
        "ward05": (376, 32154),
        "li05": (99, 85225),
        "reda_orailoglu02": (99, 45003),
        "krishna_touba03": (376, 49001),
        "respin02": (854, 89132),
        "classical": (685, 58225),
        "prop": (13113, 48110),
    },
    "s38584": {
        "balakrishnan06": (296, 31574),
        "krishna_touba02": (296, 30355),
        "lee_touba04": (296, 31152),
        "ward05": (296, 31000),
        "li05": (136, 57120),
        "reda_orailoglu02": (136, 73464),
        "krishna_touba03": (296, 28994),
        "respin02": (599, 63232),
        "classical": (405, 22680),
        "prop": (6639, 7056),
    },
}

#: Section 4 hardware-overhead figures (all for gate-equivalent counts).
HARDWARE: Dict[str, object] = {
    # State Skip circuit of s13207's 24-bit LFSR.
    "state_skip_s13207": {12: 52, 32: 119},
    # Decompressor excluding the Mode Select unit (LFSR, phase shifter,
    # counters, control), averaged over L and S.
    "decompressor_rest_s13207": 320,
    # Mode Select unit range over 50 <= L <= 500 and 2 <= S <= 50.
    "mode_select_range": (44, 262),
    # Multi-core SoC experiment: Mode Select per core, L=200, S=10, k=10.
    "soc_mode_select_range": (107, 373),
    # Decompressor area as a fraction of the SoC area.
    "soc_area_fraction": 0.066,
}

#: Fig. 4 -- qualitative envelope of the TSL improvement (percent) on s13207.
FIG4_RANGES: Dict[str, Tuple[float, float]] = {
    # At k = 3 the improvement lies between ~69% and ~78% over the S sweep.
    "k3": (69.0, 78.0),
    # At k = 24 it lies between ~80% and ~93%.
    "k24": (80.0, 93.0),
}


def tsl_improvement(proposed_tsl: float, reference_tsl: float) -> float:
    """Relation (2) of the paper: TSL improvement percentage."""
    if reference_tsl <= 0:
        raise ValueError("reference TSL must be positive")
    return (1.0 - proposed_tsl / reference_tsl) * 100.0
