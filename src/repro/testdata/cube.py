"""Test cubes: partially specified test vectors.

A *test cube* is a test vector in which only some positions carry care bits
(0/1) and the rest are don't-cares (``X``).  Test cubes are the natural output
of ATPG without random fill and the natural input of every reseeding scheme:
only the specified bits generate encoding equations, and the don't-cares are
what makes high compression possible.

Cubes are stored sparsely (two packed integers: the care mask and the care
values) because realistic cubes specify only a few percent of their bits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class TestCube:
    """A partially specified test vector over ``num_cells`` positions."""

    #: Tell pytest this domain class is not a test-case class.
    __test__ = False

    __slots__ = ("_num_cells", "_care_mask", "_care_value", "_packed_words")

    def __init__(self, num_cells: int, care_mask: int = 0, care_value: int = 0):
        if num_cells < 1:
            raise ValueError("num_cells must be positive")
        full = (1 << num_cells) - 1
        care_mask &= full
        self._num_cells = num_cells
        self._care_mask = care_mask
        self._care_value = care_value & care_mask
        self._packed_words: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_string(cls, text: str) -> "TestCube":
        """Parse a cube string of ``0``, ``1`` and ``X``/``x``/``-`` characters.

        Character ``i`` of the string is cell ``i``.
        """
        mask = 0
        value = 0
        for i, ch in enumerate(text):
            if ch in "xX-":
                continue
            if ch == "1":
                mask |= 1 << i
                value |= 1 << i
            elif ch == "0":
                mask |= 1 << i
            else:
                raise ValueError(f"invalid cube character {ch!r} at position {i}")
        if not text:
            raise ValueError("cube string must not be empty")
        return cls(len(text), mask, value)

    @classmethod
    def from_assignments(
        cls, num_cells: int, assignments: Dict[int, int]
    ) -> "TestCube":
        """Build from a mapping ``cell index -> 0/1``."""
        mask = 0
        value = 0
        for cell, bit in assignments.items():
            if not 0 <= cell < num_cells:
                raise IndexError(f"cell {cell} out of range for {num_cells} cells")
            if bit not in (0, 1):
                raise ValueError(f"cell {cell} assigned {bit!r}, expected 0 or 1")
            mask |= 1 << cell
            if bit:
                value |= 1 << cell
        return cls(num_cells, mask, value)

    @classmethod
    def fully_specified(cls, bits: Sequence[int]) -> "TestCube":
        """A cube with every position specified."""
        return cls.from_assignments(len(bits), {i: b for i, b in enumerate(bits)})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return self._num_cells

    @property
    def care_mask(self) -> int:
        """Packed mask of specified positions."""
        return self._care_mask

    @property
    def care_value(self) -> int:
        """Packed values of the specified positions (0 elsewhere)."""
        return self._care_value

    def specified_count(self) -> int:
        """Number of specified (care) bits."""
        return self._care_mask.bit_count()

    def specified_cells(self) -> List[int]:
        """Indices of the specified positions, ascending."""
        out = []
        v = self._care_mask
        while v:
            low = v & -v
            out.append(low.bit_length() - 1)
            v ^= low
        return out

    def assignments(self) -> Dict[int, int]:
        """Mapping ``cell -> bit`` of the specified positions."""
        return {
            cell: (self._care_value >> cell) & 1 for cell in self.specified_cells()
        }

    def bit(self, cell: int) -> Optional[int]:
        """The value at ``cell``: 0, 1 or ``None`` for a don't-care."""
        if not 0 <= cell < self._num_cells:
            raise IndexError(f"cell {cell} out of range")
        if not (self._care_mask >> cell) & 1:
            return None
        return (self._care_value >> cell) & 1

    def density(self) -> float:
        """Fraction of positions that are specified."""
        return self.specified_count() / self._num_cells

    def is_empty(self) -> bool:
        """True when no position is specified."""
        return self._care_mask == 0

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def compatible(self, other: "TestCube") -> bool:
        """True when the cubes agree on every commonly specified position."""
        self._check_width(other)
        common = self._care_mask & other._care_mask
        return (self._care_value ^ other._care_value) & common == 0

    def merge(self, other: "TestCube") -> "TestCube":
        """The intersection cube of two compatible cubes."""
        self._check_width(other)
        if not self.compatible(other):
            raise ValueError("cannot merge incompatible cubes")
        return TestCube(
            self._num_cells,
            self._care_mask | other._care_mask,
            self._care_value | other._care_value,
        )

    def contains(self, other: "TestCube") -> bool:
        """True when every specified bit of ``other`` is specified identically here."""
        self._check_width(other)
        if other._care_mask & ~self._care_mask:
            return False
        return (self._care_value ^ other._care_value) & other._care_mask == 0

    def matches_vector(self, vector_bits: int) -> bool:
        """True when a fully specified vector (packed int) covers this cube."""
        return (vector_bits ^ self._care_value) & self._care_mask == 0

    def packed_words(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(care, value)`` as little-endian uint64 blocks, cached.

        Word ``w`` holds cells ``64*w .. 64*w+63`` (cell index = bit index,
        the same layout as
        :meth:`repro.encoding.equations.EquationSystem.expand_seeds_packed`),
        so cube-vs-vector containment is ``(vector & care) == value`` over
        ``ceil(num_cells / 64)`` words -- the numpy embedding-matching
        kernel broadcasts exactly this test over cubes x window positions.
        The arrays are read-only views; treat them as immutable.
        """
        cached = self._packed_words
        if cached is None:
            nbytes = ((self._num_cells + 63) // 64) * 8
            cached = (
                np.frombuffer(self._care_mask.to_bytes(nbytes, "little"), dtype="<u8"),
                np.frombuffer(self._care_value.to_bytes(nbytes, "little"), dtype="<u8"),
            )
            self._packed_words = cached
        return cached

    def conflicts(self, other: "TestCube") -> List[int]:
        """Cells on which the two cubes disagree."""
        self._check_width(other)
        diff = (self._care_value ^ other._care_value) & self._care_mask & other._care_mask
        out = []
        while diff:
            low = diff & -diff
            out.append(low.bit_length() - 1)
            diff ^= low
        return out

    def _check_width(self, other: "TestCube") -> None:
        if self._num_cells != other._num_cells:
            raise ValueError(
                f"cube width mismatch: {self._num_cells} vs {other._num_cells}"
            )

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def with_bit(self, cell: int, bit: int) -> "TestCube":
        """A copy with one additional/overridden specified bit."""
        if not 0 <= cell < self._num_cells:
            raise IndexError(f"cell {cell} out of range")
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        mask = self._care_mask | (1 << cell)
        value = self._care_value & ~(1 << cell)
        if bit:
            value |= 1 << cell
        return TestCube(self._num_cells, mask, value)

    def fill(self, fill_bits: int) -> int:
        """Fully specify the cube using ``fill_bits`` for the don't-cares.

        Returns the packed fully specified vector.
        """
        full = (1 << self._num_cells) - 1
        return (self._care_value & self._care_mask) | (fill_bits & ~self._care_mask & full)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TestCube):
            return NotImplemented
        return (
            self._num_cells == other._num_cells
            and self._care_mask == other._care_mask
            and self._care_value == other._care_value
        )

    def __hash__(self) -> int:
        return hash((self._num_cells, self._care_mask, self._care_value))

    def __repr__(self) -> str:
        if self._num_cells <= 64:
            return f"TestCube('{self.to_string()}')"
        return (
            f"TestCube(cells={self._num_cells}, "
            f"specified={self.specified_count()})"
        )

    def to_string(self) -> str:
        """Cube as a string of ``0``/``1``/``X`` characters (cell 0 first)."""
        chars = []
        for i in range(self._num_cells):
            if (self._care_mask >> i) & 1:
                chars.append("1" if (self._care_value >> i) & 1 else "0")
            else:
                chars.append("X")
        return "".join(chars)
