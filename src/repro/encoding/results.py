"""Result containers for the reseeding encoders."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gf2.bitvec import BitVector


@dataclass(frozen=True)
class CubeEmbedding:
    """Placement of one test cube inside a seed's window.

    Attributes
    ----------
    cube_index:
        Index of the cube in the encoded test set.
    position:
        Window-vector position (0-based) at which the cube's equations were
        solved (deterministic embedding) or at which it was found to match
        fortuitously.
    deterministic:
        True when the cube was encoded by solving its linear system; False
        when it is only known to match fortuitously.
    """

    cube_index: int
    position: int
    deterministic: bool = True


@dataclass
class SeedRecord:
    """One computed seed and everything embedded in its window."""

    index: int
    seed: BitVector
    embeddings: List[CubeEmbedding] = field(default_factory=list)

    @property
    def num_cubes(self) -> int:
        """Number of test cubes deterministically encoded in this seed."""
        return sum(1 for e in self.embeddings if e.deterministic)

    def positions(self) -> List[int]:
        """Window positions occupied by deterministically encoded cubes."""
        return sorted(e.position for e in self.embeddings if e.deterministic)

    def cube_indices(self) -> List[int]:
        return [e.cube_index for e in self.embeddings]


@dataclass
class EncodingResult:
    """Complete output of a (window-based) reseeding encoder.

    The two paper-level figures of merit are properties:

    * :attr:`test_data_volume` -- bits stored on the tester
      (``num_seeds * lfsr_size``).
    * :attr:`test_sequence_length` -- vectors applied to the CUT by the
      *original* window-based scheme (``num_seeds * window_length``); the
      State Skip reduction of :mod:`repro.skip` shrinks this number.
    """

    circuit: str
    lfsr_size: int
    window_length: int
    num_scan_chains: int
    chain_length: int
    seeds: List[SeedRecord]
    num_cubes: int

    @property
    def num_seeds(self) -> int:
        return len(self.seeds)

    @property
    def test_data_volume(self) -> int:
        """TDV in bits: one ``lfsr_size``-bit seed per computed seed."""
        return self.num_seeds * self.lfsr_size

    @property
    def test_sequence_length(self) -> int:
        """TSL in vectors for the original window-based scheme."""
        return self.num_seeds * self.window_length

    def seed_vectors(self) -> List[BitVector]:
        """The seed values in application order."""
        return [record.seed for record in self.seeds]

    def cube_assignment(self) -> Dict[int, CubeEmbedding]:
        """Mapping ``cube index -> its deterministic embedding``."""
        assignment: Dict[int, CubeEmbedding] = {}
        for record in self.seeds:
            for embedding in record.embeddings:
                if embedding.deterministic:
                    assignment[embedding.cube_index] = embedding
        return assignment

    def seed_of_cube(self, cube_index: int) -> Optional[int]:
        """Index of the seed that deterministically encodes a cube."""
        for record in self.seeds:
            for embedding in record.embeddings:
                if embedding.deterministic and embedding.cube_index == cube_index:
                    return record.index
        return None

    def cubes_per_seed(self) -> List[int]:
        """Deterministically encoded cube count of every seed."""
        return [record.num_cubes for record in self.seeds]

    def all_cubes_encoded(self) -> bool:
        """True when every cube of the test set has a deterministic embedding."""
        return len(self.cube_assignment()) == self.num_cubes

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary used by the reporting helpers."""
        per_seed = self.cubes_per_seed()
        return {
            "circuit": self.circuit,
            "lfsr_size": self.lfsr_size,
            "window_length": self.window_length,
            "num_seeds": self.num_seeds,
            "num_cubes": self.num_cubes,
            "tdv_bits": self.test_data_volume,
            "tsl_vectors": self.test_sequence_length,
            "max_cubes_per_seed": max(per_seed) if per_seed else 0,
            "mean_cubes_per_seed": (
                sum(per_seed) / len(per_seed) if per_seed else 0.0
            ),
        }

    # ------------------------------------------------------------------
    # Serialisation (campaign result store)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Full JSON-safe serialisation (seeds as bit strings)."""
        return {
            "circuit": self.circuit,
            "lfsr_size": self.lfsr_size,
            "window_length": self.window_length,
            "num_scan_chains": self.num_scan_chains,
            "chain_length": self.chain_length,
            "num_cubes": self.num_cubes,
            "seeds": [
                {
                    "index": record.index,
                    "seed": record.seed.to_string(),
                    "embeddings": [
                        [e.cube_index, e.position, e.deterministic]
                        for e in record.embeddings
                    ],
                }
                for record in self.seeds
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EncodingResult":
        """Rebuild an equivalent result from :meth:`to_dict` output."""
        seeds = [
            SeedRecord(
                index=entry["index"],
                seed=BitVector.from_string(entry["seed"]),
                embeddings=[
                    CubeEmbedding(
                        cube_index=cube_index,
                        position=position,
                        deterministic=bool(deterministic),
                    )
                    for cube_index, position, deterministic in entry["embeddings"]
                ],
            )
            for entry in data["seeds"]
        ]
        return cls(
            circuit=data["circuit"],
            lfsr_size=data["lfsr_size"],
            window_length=data["window_length"],
            num_scan_chains=data["num_scan_chains"],
            chain_length=data["chain_length"],
            seeds=seeds,
            num_cubes=data["num_cubes"],
        )
