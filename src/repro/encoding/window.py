"""Window-based multi-cube seed computation (Section 2 of the paper).

Every seed is expanded on-chip into a window of ``L`` pseudo-random vectors,
and as many test cubes as possible are *deterministically* encoded into the
window by solving their linear systems jointly.  The greedy algorithm is the
one the paper adopts from reference [11]:

1. The first seed equation batch is the test cube with the most specified
   bits, solved at the *first* vector of the window (this guarantees that the
   first segment of every seed is useful, which the decompressor exploits).
2. Repeatedly, among the still-unencoded cubes with the maximum number of
   specified bits that have at least one solvable system in the window:

   a. keep the solvable (cube, position) systems whose solution replaces the
      fewest free seed variables (fewest new pivots),
   b. among those, keep the systems of the cube that can be encoded the
      fewest times in the window,
   c. finally take the system nearest to the start of the window.

   The selected system's equations are committed and the cube is marked as
   encoded in this seed.
3. When no remaining cube can be solved anywhere in the window, the seed is
   closed: free variables are filled with pseudo-random values and the next
   seed is started.

The expensive step is the solvability scan.  Three observations keep it
tractable in pure Python: committed constraints only ever grow within a seed,
so a position found unsolvable for a cube stays unsolvable for that seed and
is never re-checked; the per-(cube, position) equations depend only on the
hardware, so they are computed once (in a numpy batch per cube) and cached by
the :class:`~repro.encoding.equations.EquationSystem`; and a trial's residual
rows are themselves valid trial input, so the scan caches each cube's
equations *reduced against the committed basis* and every later selection
step only pays for the pivots committed since (see
:meth:`~repro.gf2.solve.IncrementalSolver.try_augmented`).  The first scan of
a cube within a seed reduces all window positions in one numpy batch
(:meth:`~repro.gf2.solve.IncrementalSolver.try_positions`).  Constructing the
encoder with ``batch_trials=False`` restores the original re-reduce-from-
scratch scan; the two produce bit-identical results (the golden-equivalence
test relies on this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.encoding.equations import EquationSystem
from repro.encoding.results import CubeEmbedding, EncodingResult, SeedRecord
from repro.gf2.solve import IncrementalSolver, SolveOutcome, TrialResult
from repro.testdata.test_set import TestSet


class EncodingError(RuntimeError):
    """Raised when a test cube cannot be encoded at all.

    This happens when a cube's system is inconsistent at every window
    position even with a fresh (unconstrained) seed -- in practice it means
    the LFSR is too small for the cube's specified-bit count, or the phase
    shifter introduces an unlucky linear dependency.  The fix is a larger
    LFSR or a different phase-shifter seed.
    """


@dataclass
class _Candidate:
    """A solvable (cube, position) system considered by one selection step."""

    cube_index: int
    position: int
    trial: TrialResult
    solvable_count: int


class WindowEncoder:
    """Greedy window-based seed computation.

    Parameters
    ----------
    equations:
        The equation system describing the decompressor hardware.
    fill_seed:
        Seed of the pseudo-random filler used for the free seed variables
        (the paper fills don't-cares with pseudo-random data; a fixed seed
        keeps every run reproducible).
    batch_trials:
        Use the batched/residual-cached solvability scan (default).  False
        restores the unbatched reference scan; results are bit-identical
        either way.
    """

    def __init__(
        self,
        equations: EquationSystem,
        fill_seed: int = 2008,
        batch_trials: bool = True,
    ):
        self._equations = equations
        self._fill_seed = fill_seed
        self._batch_trials = batch_trials

    @property
    def equations(self) -> EquationSystem:
        return self._equations

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def encode(self, test_set: TestSet) -> EncodingResult:
        """Compute seeds until every cube of ``test_set`` is encoded."""
        arch = self._equations.architecture
        if test_set.num_cells != arch.num_cells:
            raise ValueError(
                f"test set width {test_set.num_cells} does not match the scan "
                f"architecture ({arch.num_cells} cells)"
            )
        cubes = test_set.cubes
        if self._batch_trials:
            # The hot path works on the packed per-cube row blocks, built
            # for the whole test set in chunked single gemms up front; only
            # the position-0 pair lists are materialised (precheck, first
            # cube).
            self._equations.precompute_cube_words(cubes)
            cube_equations = None
            position0 = [
                self._equations.cube_equations_at(cube, 0) for cube in cubes
            ]
        else:
            self._equations.reserve_cube_capacity(len(cubes))
            cube_equations = [self._equations.cube_equations(cube) for cube in cubes]
            position0 = [equations[0] for equations in cube_equations]
        spec_counts = [cube.specified_count() for cube in cubes]
        self._precheck_encodability(position0)

        remaining = set(range(len(cubes)))
        seeds: List[SeedRecord] = []
        while remaining:
            record = self._build_seed(
                seed_index=len(seeds),
                remaining=remaining,
                cubes=cubes,
                cube_equations=cube_equations,
                position0=position0,
                spec_counts=spec_counts,
            )
            if not record.embeddings:
                unencodable = sorted(remaining)
                raise EncodingError(
                    f"cubes {unencodable[:10]} cannot be encoded anywhere in the "
                    f"window even with an unconstrained seed; increase the LFSR "
                    f"size (currently {self._equations.lfsr_size}) or change the "
                    f"phase shifter"
                )
            for embedding in record.embeddings:
                remaining.discard(embedding.cube_index)
            seeds.append(record)

        return EncodingResult(
            circuit=test_set.name,
            lfsr_size=self._equations.lfsr_size,
            window_length=self._equations.window_length,
            num_scan_chains=arch.num_chains,
            chain_length=arch.chain_length,
            seeds=seeds,
            num_cubes=len(cubes),
        )

    def _precheck_encodability(
        self, position0: List[List[Tuple[int, int]]]
    ) -> None:
        """Fail fast on cubes that no seed can ever encode.

        Linear dependencies among a cube's equation rows are *structural*:
        multiplying every row by ``A^(v*r)`` preserves them, so a cube whose
        system is inconsistent with an unconstrained seed at window position 0
        is inconsistent at every position and in every seed.  Detecting this
        up front costs one cheap solvability check per cube and lets callers
        retry with a different phase shifter (or a larger LFSR) immediately
        instead of after a long encoding run.
        """
        unencodable = []
        for cube_index, equations in enumerate(position0):
            solver = IncrementalSolver(self._equations.lfsr_size)
            if not solver.try_masks(equations).consistent:
                unencodable.append(cube_index)
        if unencodable:
            raise EncodingError(
                f"cubes {unencodable[:10]} have structurally conflicting "
                f"equations (linearly dependent rows with inconsistent values); "
                f"increase the LFSR size (currently {self._equations.lfsr_size}) "
                f"or rebuild the phase shifter with a different seed"
            )

    # ------------------------------------------------------------------
    # Seed construction
    # ------------------------------------------------------------------
    def _build_seed(
        self,
        seed_index: int,
        remaining: set,
        cubes: List,
        cube_equations: Optional[List[List[List[Tuple[int, int]]]]],
        position0: List[List[Tuple[int, int]]],
        spec_counts: List[int],
    ) -> SeedRecord:
        solver = IncrementalSolver(self._equations.lfsr_size)
        window = self._equations.window_length
        embeddings: List[CubeEmbedding] = []
        encoded_here: set = set()
        # Positions still possibly solvable for each cube, for *this* seed.
        open_positions: Dict[int, List[int]] = {}
        # Per-cube trials with equations reduced against the committed basis,
        # tagged with the solver epoch and pivot mask that produced them
        # (refreshed lazily; see _scan_positions).  Reset per seed.
        residuals: Dict[int, Tuple[int, int, Dict[int, Tuple[TrialResult, int]]]] = {}

        first = self._select_first_cube(solver, remaining, position0, spec_counts)
        if first is not None:
            cube_index, trial = first
            solver.commit(trial)
            embeddings.append(CubeEmbedding(cube_index, 0))
            encoded_here.add(cube_index)

        while True:
            candidate = self._select_candidate(
                solver,
                remaining,
                encoded_here,
                cubes,
                cube_equations,
                spec_counts,
                open_positions,
                window,
                residuals,
            )
            if candidate is None:
                break
            solver.commit(candidate.trial)
            embeddings.append(CubeEmbedding(candidate.cube_index, candidate.position))
            encoded_here.add(candidate.cube_index)
            open_positions.pop(candidate.cube_index, None)
            residuals.pop(candidate.cube_index, None)

        seed_value = solver.solution(free_fill=self._free_fill(seed_index))
        return SeedRecord(index=seed_index, seed=seed_value, embeddings=embeddings)

    def _select_first_cube(
        self,
        solver: IncrementalSolver,
        remaining: set,
        position0: List[List[Tuple[int, int]]],
        spec_counts: List[int],
    ) -> Optional[Tuple[int, TrialResult]]:
        """The densest remaining cube solvable at window position 0."""
        order = sorted(remaining, key=lambda i: (-spec_counts[i], i))
        for cube_index in order:
            trial = solver.try_masks(position0[cube_index])
            if trial.consistent:
                return cube_index, trial
        return None

    def _select_candidate(
        self,
        solver: IncrementalSolver,
        remaining: set,
        encoded_here: set,
        cubes: List,
        cube_equations: Optional[List[List[List[Tuple[int, int]]]]],
        spec_counts: List[int],
        open_positions: Dict[int, List[int]],
        window: int,
        residuals: Dict[int, Tuple[int, int, Dict[int, Tuple[TrialResult, int]]]],
    ) -> Optional[_Candidate]:
        """One selection step of the greedy algorithm (criteria a-c)."""
        pending = [i for i in remaining if i not in encoded_here]
        if not pending:
            return None
        # Group by specified-bit count, densest group first.
        by_count: Dict[int, List[int]] = {}
        for cube_index in pending:
            by_count.setdefault(spec_counts[cube_index], []).append(cube_index)

        for count in sorted(by_count, reverse=True):
            candidates: List[_Candidate] = []
            for cube_index in by_count[count]:
                positions = open_positions.setdefault(cube_index, list(range(window)))
                solvable: List[Tuple[int, TrialResult]] = []
                still_open: List[int] = []
                if self._batch_trials:
                    trials = self._scan_positions(
                        solver, cubes[cube_index], positions, residuals, cube_index
                    )
                else:
                    equations = cube_equations[cube_index]
                    trials = [
                        solver.try_masks(equations[position]) for position in positions
                    ]
                for position, trial in zip(positions, trials):
                    if trial.consistent:
                        solvable.append((position, trial))
                        still_open.append(position)
                open_positions[cube_index] = still_open
                for position, trial in solvable:
                    candidates.append(
                        _Candidate(
                            cube_index=cube_index,
                            position=position,
                            trial=trial,
                            solvable_count=len(solvable),
                        )
                    )
            if candidates:
                return self._pick(candidates)
        return None

    def _scan_positions(
        self,
        solver: IncrementalSolver,
        cube,
        positions: List[int],
        residuals: Dict[int, Tuple[int, int, Dict[int, Tuple[TrialResult, int]]]],
        cube_index: int,
    ) -> List[TrialResult]:
        """Solvability trials for a cube's open positions, residual-cached.

        The first scan of a cube within a seed reduces every position's
        hardware equations against the committed basis in one batched numpy
        pass.  Later scans re-try the cached *residual* rows, which only
        pays for pivots committed since the previous scan -- and positions
        whose residual support misses every newly committed pivot column
        (or all of them, when the solver epoch has not advanced) are reused
        without touching the solver at all.  Inconsistent positions never
        recover within a seed, so their residuals (and open slots) are
        dropped by the caller.
        """
        cached = residuals.get(cube_index)
        if cached is not None and cached[0] == solver.epoch:
            return [cached[2][position][0] for position in positions]
        entries: Dict[int, Tuple[TrialResult, int]] = {}
        if cached is None:
            words, rows_each = self._equations.cube_position_words(cube)
            if rows_each == 0:
                trials = [
                    TrialResult(SolveOutcome.CONSISTENT, 0, []) for _ in positions
                ]
                entries = {
                    position: (trial, 0)
                    for position, trial in zip(positions, trials)
                }
                residuals[cube_index] = (solver.epoch, solver.pivot_mask, entries)
                return trials
            if len(positions) != self._equations.window_length:
                rows = np.concatenate(
                    [
                        np.arange(p * rows_each, (p + 1) * rows_each)
                        for p in positions
                    ]
                )
                words = words[rows]
            trials = solver.try_positions_packed(words, rows_each)
        else:
            # Only the pivot columns committed since the cached scan can
            # change a trial; a residual batch whose support misses all of
            # them would reduce to itself, so reuse the cached trial as-is.
            delta = solver.pivot_mask & ~cached[1]
            old_entries = cached[2]
            trials = []
            for position in positions:
                trial, support = old_entries[position]
                if support & delta:
                    trial = solver.try_augmented(trial.reduced_rows)
                else:
                    entries[position] = (trial, support)
                trials.append(trial)
        for position, trial in zip(positions, trials):
            if position not in entries and trial.consistent:
                support = 0
                for row in trial.reduced_rows:
                    support |= row
                entries[position] = (trial, support)
        residuals[cube_index] = (solver.epoch, solver.pivot_mask, entries)
        return trials

    @staticmethod
    def _pick(candidates: List[_Candidate]) -> _Candidate:
        """Tie-breaks b and c: fewest replaced variables, rarest cube, earliest."""
        min_pivots = min(c.trial.new_pivots for c in candidates)
        level1 = [c for c in candidates if c.trial.new_pivots == min_pivots]
        min_solvable = min(c.solvable_count for c in level1)
        level2 = [c for c in level1 if c.solvable_count == min_solvable]
        return min(level2, key=lambda c: (c.position, c.cube_index))

    def _free_fill(self, seed_index: int) -> List[int]:
        """Pseudo-random fill bits for the free variables of one seed."""
        rng = random.Random(self._fill_seed * 1_000_003 + seed_index)
        return [rng.getrandbits(1) for _ in range(self._equations.lfsr_size)]


def verify_encoding(
    result: EncodingResult,
    test_set: TestSet,
    equations: EquationSystem,
    windows: Optional[List[List[int]]] = None,
) -> List[Tuple[int, int, int]]:
    """Check every deterministic embedding against the expanded windows.

    Returns a list of violations ``(seed_index, cube_index, position)``; an
    empty list means every encoded cube is really produced by its seed at its
    assigned window position.  This is the ground-truth correctness check the
    tests and the decompressor simulation rely on.

    ``windows`` may carry the already-expanded seed windows (entry ``[s][v]``
    = packed vector of seed ``s`` at position ``v``, exactly
    :meth:`EquationSystem.expand_seeds` output); when omitted the seeds are
    expanded here.  The staged pipeline passes the
    :class:`~repro.context.CompressionContext`-cached expansion so that
    verification, the sequence reducer and any coverage check share one
    expansion instead of three.
    """
    violations = []
    if windows is None:
        windows = equations.expand_seeds([record.seed for record in result.seeds])
    for record, window in zip(result.seeds, windows):
        for embedding in record.embeddings:
            if not embedding.deterministic:
                continue
            cube = test_set[embedding.cube_index]
            if not cube.matches_vector(window[embedding.position]):
                violations.append(
                    (record.index, embedding.cube_index, embedding.position)
                )
    return violations
