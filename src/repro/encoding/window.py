"""Window-based multi-cube seed computation (Section 2 of the paper).

Every seed is expanded on-chip into a window of ``L`` pseudo-random vectors,
and as many test cubes as possible are *deterministically* encoded into the
window by solving their linear systems jointly.  The greedy algorithm is the
one the paper adopts from reference [11]:

1. The first seed equation batch is the test cube with the most specified
   bits, solved at the *first* vector of the window (this guarantees that the
   first segment of every seed is useful, which the decompressor exploits).
2. Repeatedly, among the still-unencoded cubes with the maximum number of
   specified bits that have at least one solvable system in the window:

   a. keep the solvable (cube, position) systems whose solution replaces the
      fewest free seed variables (fewest new pivots),
   b. among those, keep the systems of the cube that can be encoded the
      fewest times in the window,
   c. finally take the system nearest to the start of the window.

   The selected system's equations are committed and the cube is marked as
   encoded in this seed.
3. When no remaining cube can be solved anywhere in the window, the seed is
   closed: free variables are filled with pseudo-random values and the next
   seed is started.

The expensive step is the solvability scan.  Two observations keep it
tractable in pure Python: committed constraints only ever grow within a seed,
so a position found unsolvable for a cube stays unsolvable for that seed and
is never re-checked; and the per-(cube, position) equations depend only on
the hardware, so they are computed once (in a numpy batch per cube) and
cached by the :class:`~repro.encoding.equations.EquationSystem`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gf2.solve import IncrementalSolver, TrialResult
from repro.encoding.equations import EquationSystem
from repro.encoding.results import CubeEmbedding, EncodingResult, SeedRecord
from repro.testdata.test_set import TestSet


class EncodingError(RuntimeError):
    """Raised when a test cube cannot be encoded at all.

    This happens when a cube's system is inconsistent at every window
    position even with a fresh (unconstrained) seed -- in practice it means
    the LFSR is too small for the cube's specified-bit count, or the phase
    shifter introduces an unlucky linear dependency.  The fix is a larger
    LFSR or a different phase-shifter seed.
    """


@dataclass
class _Candidate:
    """A solvable (cube, position) system considered by one selection step."""

    cube_index: int
    position: int
    trial: TrialResult
    solvable_count: int


class WindowEncoder:
    """Greedy window-based seed computation.

    Parameters
    ----------
    equations:
        The equation system describing the decompressor hardware.
    fill_seed:
        Seed of the pseudo-random filler used for the free seed variables
        (the paper fills don't-cares with pseudo-random data; a fixed seed
        keeps every run reproducible).
    """

    def __init__(self, equations: EquationSystem, fill_seed: int = 2008):
        self._equations = equations
        self._fill_seed = fill_seed

    @property
    def equations(self) -> EquationSystem:
        return self._equations

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def encode(self, test_set: TestSet) -> EncodingResult:
        """Compute seeds until every cube of ``test_set`` is encoded."""
        arch = self._equations.architecture
        if test_set.num_cells != arch.num_cells:
            raise ValueError(
                f"test set width {test_set.num_cells} does not match the scan "
                f"architecture ({arch.num_cells} cells)"
            )
        cubes = test_set.cubes
        cube_equations = [self._equations.cube_equations(cube) for cube in cubes]
        spec_counts = [cube.specified_count() for cube in cubes]
        self._precheck_encodability(cube_equations)

        remaining = set(range(len(cubes)))
        seeds: List[SeedRecord] = []
        while remaining:
            record = self._build_seed(
                seed_index=len(seeds),
                remaining=remaining,
                cube_equations=cube_equations,
                spec_counts=spec_counts,
            )
            if not record.embeddings:
                unencodable = sorted(remaining)
                raise EncodingError(
                    f"cubes {unencodable[:10]} cannot be encoded anywhere in the "
                    f"window even with an unconstrained seed; increase the LFSR "
                    f"size (currently {self._equations.lfsr_size}) or change the "
                    f"phase shifter"
                )
            for embedding in record.embeddings:
                remaining.discard(embedding.cube_index)
            seeds.append(record)

        return EncodingResult(
            circuit=test_set.name,
            lfsr_size=self._equations.lfsr_size,
            window_length=self._equations.window_length,
            num_scan_chains=arch.num_chains,
            chain_length=arch.chain_length,
            seeds=seeds,
            num_cubes=len(cubes),
        )

    def _precheck_encodability(
        self, cube_equations: List[List[List[Tuple[int, int]]]]
    ) -> None:
        """Fail fast on cubes that no seed can ever encode.

        Linear dependencies among a cube's equation rows are *structural*:
        multiplying every row by ``A^(v*r)`` preserves them, so a cube whose
        system is inconsistent with an unconstrained seed at window position 0
        is inconsistent at every position and in every seed.  Detecting this
        up front costs one cheap solvability check per cube and lets callers
        retry with a different phase shifter (or a larger LFSR) immediately
        instead of after a long encoding run.
        """
        unencodable = []
        for cube_index, equations in enumerate(cube_equations):
            solver = IncrementalSolver(self._equations.lfsr_size)
            if not solver.try_masks(equations[0]).consistent:
                unencodable.append(cube_index)
        if unencodable:
            raise EncodingError(
                f"cubes {unencodable[:10]} have structurally conflicting "
                f"equations (linearly dependent rows with inconsistent values); "
                f"increase the LFSR size (currently {self._equations.lfsr_size}) "
                f"or rebuild the phase shifter with a different seed"
            )

    # ------------------------------------------------------------------
    # Seed construction
    # ------------------------------------------------------------------
    def _build_seed(
        self,
        seed_index: int,
        remaining: set,
        cube_equations: List[List[List[Tuple[int, int]]]],
        spec_counts: List[int],
    ) -> SeedRecord:
        solver = IncrementalSolver(self._equations.lfsr_size)
        window = self._equations.window_length
        embeddings: List[CubeEmbedding] = []
        encoded_here: set = set()
        # Positions still possibly solvable for each cube, for *this* seed.
        open_positions: Dict[int, List[int]] = {}

        first = self._select_first_cube(solver, remaining, cube_equations, spec_counts)
        if first is not None:
            cube_index, trial = first
            solver.commit(trial)
            embeddings.append(CubeEmbedding(cube_index, 0))
            encoded_here.add(cube_index)

        while True:
            candidate = self._select_candidate(
                solver,
                remaining,
                encoded_here,
                cube_equations,
                spec_counts,
                open_positions,
                window,
            )
            if candidate is None:
                break
            solver.commit(candidate.trial)
            embeddings.append(CubeEmbedding(candidate.cube_index, candidate.position))
            encoded_here.add(candidate.cube_index)
            open_positions.pop(candidate.cube_index, None)

        seed_value = solver.solution(free_fill=self._free_fill(seed_index))
        return SeedRecord(index=seed_index, seed=seed_value, embeddings=embeddings)

    def _select_first_cube(
        self,
        solver: IncrementalSolver,
        remaining: set,
        cube_equations: List[List[List[Tuple[int, int]]]],
        spec_counts: List[int],
    ) -> Optional[Tuple[int, TrialResult]]:
        """The densest remaining cube solvable at window position 0."""
        order = sorted(remaining, key=lambda i: (-spec_counts[i], i))
        for cube_index in order:
            trial = solver.try_masks(cube_equations[cube_index][0])
            if trial.consistent:
                return cube_index, trial
        return None

    def _select_candidate(
        self,
        solver: IncrementalSolver,
        remaining: set,
        encoded_here: set,
        cube_equations: List[List[List[Tuple[int, int]]]],
        spec_counts: List[int],
        open_positions: Dict[int, List[int]],
        window: int,
    ) -> Optional[_Candidate]:
        """One selection step of the greedy algorithm (criteria a-c)."""
        pending = [i for i in remaining if i not in encoded_here]
        if not pending:
            return None
        # Group by specified-bit count, densest group first.
        by_count: Dict[int, List[int]] = {}
        for cube_index in pending:
            by_count.setdefault(spec_counts[cube_index], []).append(cube_index)

        for count in sorted(by_count, reverse=True):
            candidates: List[_Candidate] = []
            for cube_index in by_count[count]:
                positions = open_positions.setdefault(cube_index, list(range(window)))
                solvable: List[Tuple[int, TrialResult]] = []
                still_open: List[int] = []
                equations = cube_equations[cube_index]
                for position in positions:
                    trial = solver.try_masks(equations[position])
                    if trial.consistent:
                        solvable.append((position, trial))
                        still_open.append(position)
                open_positions[cube_index] = still_open
                for position, trial in solvable:
                    candidates.append(
                        _Candidate(
                            cube_index=cube_index,
                            position=position,
                            trial=trial,
                            solvable_count=len(solvable),
                        )
                    )
            if candidates:
                return self._pick(candidates)
        return None

    @staticmethod
    def _pick(candidates: List[_Candidate]) -> _Candidate:
        """Tie-breaks b and c: fewest replaced variables, rarest cube, earliest."""
        min_pivots = min(c.trial.new_pivots for c in candidates)
        level1 = [c for c in candidates if c.trial.new_pivots == min_pivots]
        min_solvable = min(c.solvable_count for c in level1)
        level2 = [c for c in level1 if c.solvable_count == min_solvable]
        return min(level2, key=lambda c: (c.position, c.cube_index))

    def _free_fill(self, seed_index: int) -> List[int]:
        """Pseudo-random fill bits for the free variables of one seed."""
        rng = random.Random(self._fill_seed * 1_000_003 + seed_index)
        return [rng.getrandbits(1) for _ in range(self._equations.lfsr_size)]


def verify_encoding(
    result: EncodingResult, test_set: TestSet, equations: EquationSystem
) -> List[Tuple[int, int, int]]:
    """Check every deterministic embedding against the expanded windows.

    Returns a list of violations ``(seed_index, cube_index, position)``; an
    empty list means every encoded cube is really produced by its seed at its
    assigned window position.  This is the ground-truth correctness check the
    tests and the decompressor simulation rely on.
    """
    violations = []
    windows = equations.expand_seeds([record.seed for record in result.seeds])
    for record, window in zip(result.seeds, windows):
        for embedding in record.embeddings:
            if not embedding.deterministic:
                continue
            cube = test_set[embedding.cube_index]
            if not cube.matches_vector(window[embedding.position]):
                violations.append(
                    (record.index, embedding.cube_index, embedding.position)
                )
    return violations
