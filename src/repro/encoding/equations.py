"""Linear-equation construction and seed expansion.

The reseeding architecture of Fig. 1 works as follows: an ``n``-bit seed is
loaded into the LFSR, the LFSR free-runs and the phase shifter feeds the ``m``
scan chains, so that after ``r`` shift cycles one complete test vector sits in
the chains.  A window of ``L`` vectors therefore consumes ``L * r`` LFSR
cycles per seed.

Treating the seed as a vector of unknowns ``a = (a0 .. a(n-1))``, the value
scanned into cell ``c`` of window-vector ``v`` is the GF(2) inner product

    row(c, v) . a      with      row(c, v) = P[chain(c)] * A^(v*r + load_cycle(c))

where ``P`` is the phase-shifter matrix and ``A`` the LFSR transition matrix.
Encoding a test cube at window position ``v`` means adding one equation
``row(c, v) . a = bit`` per specified cell ``c``.

:class:`EquationSystem` precomputes the building blocks of those rows and
serves two consumers:

* the encoder, which asks for the packed equations of a cube at every window
  position (computed lazily, in one numpy batch per cube, and cached), and
* the sequence-reduction / verification code, which asks for the fully
  expanded test vectors produced by a list of seeds (bulk numpy expansion).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.gf2.bitvec import BitVector
from repro.gf2.matrix import GF2Matrix
from repro.lfsr.phase_shifter import PhaseShifter
from repro.scan.architecture import ScanArchitecture
from repro.testdata.cube import TestCube


def _matrix_to_numpy(matrix: GF2Matrix) -> np.ndarray:
    """Dense uint8 array of a GF2Matrix (shape nrows x ncols)."""
    out = np.zeros((matrix.nrows, matrix.ncols), dtype=np.uint8)
    for i in range(matrix.nrows):
        row = matrix.row_mask(i)
        while row:
            low = row & -row
            out[i, low.bit_length() - 1] = 1
            row ^= low
    return out


def _pack_rows_to_ints(rows: np.ndarray) -> List[int]:
    """Pack an array of 0/1 rows (shape count x n) into Python ints.

    Bit ``j`` of the returned integer is column ``j`` of the row, matching the
    packing convention of :class:`repro.gf2.bitvec.BitVector`.
    """
    packed = np.packbits(rows.astype(np.uint8), axis=-1, bitorder="little")
    return [int.from_bytes(row.tobytes(), "little") for row in packed]


class EquationSystem:
    """Per-cube encoding equations and seed expansion for one core.

    Parameters
    ----------
    transition:
        LFSR transition matrix ``A`` (``n x n``).
    phase_shifter:
        Phase shifter driving the scan chains.
    architecture:
        Scan architecture of the core under test.
    window_length:
        Number of window vectors ``L`` each seed is expanded into.
    """

    def __init__(
        self,
        transition: GF2Matrix,
        phase_shifter: PhaseShifter,
        architecture: ScanArchitecture,
        window_length: int,
    ):
        if window_length < 1:
            raise ValueError("window_length must be at least 1")
        if transition.nrows != transition.ncols:
            raise ValueError("transition matrix must be square")
        if phase_shifter.lfsr_size != transition.ncols:
            raise ValueError("phase shifter width does not match the LFSR size")
        if phase_shifter.num_outputs < architecture.num_chains:
            raise ValueError(
                "phase shifter must drive at least as many outputs as scan chains"
            )
        self._transition = transition
        self._phase_shifter = phase_shifter
        self._architecture = architecture
        self._window_length = window_length
        self._lfsr_size = transition.ncols

        self._cell_rows = self._build_cell_rows()
        self._position_matrices = self._build_position_matrices()
        self._cube_cache: Dict[Tuple[int, int, int], List[List[Tuple[int, int]]]] = {}

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    def _build_cell_rows(self) -> np.ndarray:
        """Rows ``P[chain(c)] * A^(load_cycle(c))`` for every scan cell."""
        arch = self._architecture
        n = self._lfsr_size
        phase_np = _matrix_to_numpy(self._phase_shifter.matrix)
        transition_np = _matrix_to_numpy(self._transition)

        # chain_rows[t] = P * A^t for every shift cycle t of one vector load.
        chain_rows = np.empty((arch.chain_length, phase_np.shape[0], n), dtype=np.uint8)
        current = phase_np.copy()
        for t in range(arch.chain_length):
            chain_rows[t] = current
            current = (current @ transition_np) % 2

        cell_rows = np.empty((arch.num_cells, n), dtype=np.uint8)
        for cell in range(arch.num_cells):
            chain = cell % arch.num_chains
            cycle = arch.load_cycle(cell)
            cell_rows[cell] = chain_rows[cycle, chain]
        return cell_rows

    def _build_position_matrices(self) -> np.ndarray:
        """``A^(v*r)`` for every window position ``v`` (shape L x n x n)."""
        n = self._lfsr_size
        per_vector = self._transition.power(self._architecture.chain_length)
        per_vector_np = _matrix_to_numpy(per_vector)
        matrices = np.empty((self._window_length, n, n), dtype=np.uint8)
        matrices[0] = np.eye(n, dtype=np.uint8)
        for v in range(1, self._window_length):
            matrices[v] = (matrices[v - 1] @ per_vector_np) % 2
        return matrices

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def lfsr_size(self) -> int:
        return self._lfsr_size

    @property
    def window_length(self) -> int:
        return self._window_length

    @property
    def architecture(self) -> ScanArchitecture:
        return self._architecture

    @property
    def phase_shifter(self) -> PhaseShifter:
        return self._phase_shifter

    @property
    def transition(self) -> GF2Matrix:
        return self._transition

    # ------------------------------------------------------------------
    # Equations
    # ------------------------------------------------------------------
    def cube_equations(self, cube: TestCube) -> List[List[Tuple[int, int]]]:
        """Packed equations of a cube for every window position.

        Entry ``v`` of the result is the list of ``(coefficient_mask, rhs)``
        pairs for encoding the cube at window position ``v``.  Results are
        cached per cube (the equations depend only on the hardware, not on
        any seed), so repeated queries across seeds are free.
        """
        if cube.num_cells != self._architecture.num_cells:
            raise ValueError(
                f"cube width {cube.num_cells} does not match the scan "
                f"architecture ({self._architecture.num_cells} cells)"
            )
        key = (cube.num_cells, cube.care_mask, cube.care_value)
        cached = self._cube_cache.get(key)
        if cached is not None:
            return cached

        cells = cube.specified_cells()
        rhs = [(cube.care_value >> c) & 1 for c in cells]
        spec_rows = self._cell_rows[cells]  # (s, n)
        # rows_all[v, i] = spec_rows[i] @ A^(v*r)  for every position v.
        rows_all = np.matmul(
            spec_rows[np.newaxis, :, :], self._position_matrices
        ) % 2  # (L, s, n)
        equations: List[List[Tuple[int, int]]] = []
        for v in range(self._window_length):
            masks = _pack_rows_to_ints(rows_all[v])
            equations.append(list(zip(masks, rhs)))
        self._cube_cache[key] = equations
        return equations

    def cube_equations_at(self, cube: TestCube, position: int) -> List[Tuple[int, int]]:
        """Equations of a cube at one window position."""
        if not 0 <= position < self._window_length:
            raise IndexError(f"window position {position} out of range")
        return self.cube_equations(cube)[position]

    # ------------------------------------------------------------------
    # Seed expansion
    # ------------------------------------------------------------------
    def expand_seed(self, seed: BitVector) -> List[int]:
        """All ``L`` test vectors of one seed, as packed integers."""
        return self.expand_seeds([seed])[0]

    def expand_seeds(self, seeds: Sequence[BitVector]) -> List[List[int]]:
        """Expand several seeds into their ``L``-vector windows (bulk numpy).

        Entry ``[s][v]`` of the result is the fully specified test vector
        (packed integer over the scan cells) produced by seed ``s`` at window
        position ``v``.
        """
        if not seeds:
            return []
        n = self._lfsr_size
        for seed in seeds:
            if seed.length != n:
                raise ValueError("seed length does not match the LFSR size")
        seed_cols = np.zeros((n, len(seeds)), dtype=np.uint8)
        for j, seed in enumerate(seeds):
            value = seed.value
            while value:
                low = value & -value
                seed_cols[low.bit_length() - 1, j] = 1
                value ^= low

        num_seeds = len(seeds)
        out: List[List[int]] = [[] for _ in range(num_seeds)]
        for v in range(self._window_length):
            # LFSR state at the start of vector v, for every seed.
            states = (self._position_matrices[v] @ seed_cols) % 2  # (n, seeds)
            cell_bits = (self._cell_rows @ states) % 2  # (cells, seeds)
            packed = np.packbits(cell_bits, axis=0, bitorder="little")
            for j in range(num_seeds):
                out[j].append(int.from_bytes(packed[:, j].tobytes(), "little"))
        return out

    def vector_at(self, seed: BitVector, position: int) -> List[int]:
        """The test vector of ``seed`` at one window position, as a bit list."""
        packed = self.expand_seed(seed)[position]
        return [(packed >> c) & 1 for c in range(self._architecture.num_cells)]

    def cube_matches(self, cube: TestCube, seed: BitVector, position: int) -> bool:
        """True when the expanded vector at ``position`` covers ``cube``."""
        return cube.matches_vector(self.expand_seed(seed)[position])

    def clear_cache(self) -> None:
        """Drop the per-cube equation cache (memory housekeeping)."""
        self._cube_cache.clear()
