"""Linear-equation construction and seed expansion.

The reseeding architecture of Fig. 1 works as follows: an ``n``-bit seed is
loaded into the LFSR, the LFSR free-runs and the phase shifter feeds the ``m``
scan chains, so that after ``r`` shift cycles one complete test vector sits in
the chains.  A window of ``L`` vectors therefore consumes ``L * r`` LFSR
cycles per seed.

Treating the seed as a vector of unknowns ``a = (a0 .. a(n-1))``, the value
scanned into cell ``c`` of window-vector ``v`` is the GF(2) inner product

    row(c, v) . a      with      row(c, v) = P[chain(c)] * A^(v*r + load_cycle(c))

where ``P`` is the phase-shifter matrix and ``A`` the LFSR transition matrix.
Encoding a test cube at window position ``v`` means adding one equation
``row(c, v) . a = bit`` per specified cell ``c``.

:class:`EquationSystem` precomputes the building blocks of those rows and
serves two consumers:

* the encoder, which asks for the packed equations of a cube at every window
  position (computed lazily, in one numpy batch per cube, and cached), and
* the sequence-reduction / verification code, which asks for the fully
  expanded test vectors produced by a list of seeds (bulk numpy expansion).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.gf2.bitvec import BitVector
from repro.gf2.matrix import GF2Matrix
from repro.gf2.solve import _words_to_ints
from repro.lfsr.phase_shifter import PhaseShifter
from repro.lfsr.transition import transition_power
from repro.lru import LRUCache
from repro.scan.architecture import ScanArchitecture
from repro.testdata.cube import TestCube


def _matrix_to_numpy(matrix: GF2Matrix) -> np.ndarray:
    """Dense uint8 array of a GF2Matrix (shape nrows x ncols)."""
    if matrix.nrows == 0 or matrix.ncols == 0:
        return np.zeros((matrix.nrows, matrix.ncols), dtype=np.uint8)
    nbytes = (matrix.ncols + 7) // 8
    buffer = b"".join(
        matrix.row_mask(i).to_bytes(nbytes, "little") for i in range(matrix.nrows)
    )
    packed = np.frombuffer(buffer, dtype=np.uint8).reshape(matrix.nrows, nbytes)
    bits = np.unpackbits(packed, axis=1, bitorder="little")
    return np.ascontiguousarray(bits[:, : matrix.ncols])


def windows_from_packed(packed: np.ndarray) -> List[List[int]]:
    """Integer view of a packed window expansion.

    Converts the ``(num_seeds, L, num_words)`` uint64 array of
    :meth:`EquationSystem.expand_seeds_packed` into the classic
    list-of-lists of packed Python integers (entry ``[s][v]``), bit for
    bit identical to what the pre-packed ``expand_seeds`` produced.
    """
    num_seeds, window_length, _ = packed.shape
    as_bytes = packed.view(np.uint8).reshape(num_seeds, window_length, -1)
    return [
        [
            int.from_bytes(as_bytes[s, v].tobytes(), "little")
            for v in range(window_length)
        ]
        for s in range(num_seeds)
    ]


def _gf2_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact GF(2) product of dense 0/1 arrays, via one BLAS sgemm.

    numpy's integer ``matmul`` is a naive C loop; routing the product
    through float32 hits BLAS instead and is exact as long as the inner
    dimension stays below 2**24 (far beyond any LFSR here).
    """
    counts = a.astype(np.float32) @ b.astype(np.float32)
    return (counts.astype(np.uint32) & 1).astype(np.uint8)




class EquationSystem:
    """Per-cube encoding equations and seed expansion for one core.

    Parameters
    ----------
    transition:
        LFSR transition matrix ``A`` (``n x n``).
    phase_shifter:
        Phase shifter driving the scan chains.
    architecture:
        Scan architecture of the core under test.
    window_length:
        Number of window vectors ``L`` each seed is expanded into.
    """

    def __init__(
        self,
        transition: GF2Matrix,
        phase_shifter: PhaseShifter,
        architecture: ScanArchitecture,
        window_length: int,
    ):
        if window_length < 1:
            raise ValueError("window_length must be at least 1")
        if transition.nrows != transition.ncols:
            raise ValueError("transition matrix must be square")
        if phase_shifter.lfsr_size != transition.ncols:
            raise ValueError("phase shifter width does not match the LFSR size")
        if phase_shifter.num_outputs < architecture.num_chains:
            raise ValueError(
                "phase shifter must drive at least as many outputs as scan chains"
            )
        self._transition = transition
        self._phase_shifter = phase_shifter
        self._architecture = architecture
        self._window_length = window_length
        self._lfsr_size = transition.ncols

        # Dense conversions are memoized per EquationSystem: each GF2Matrix
        # is converted exactly once, no matter how many cube batches or seed
        # expansions consult it.
        self._dense_cache: Dict[GF2Matrix, np.ndarray] = {}
        self._cell_rows = self._build_cell_rows()
        n = self._lfsr_size
        # float32 forms feed the BLAS-backed GF(2) matmuls of
        # cube_equations / expand_seeds; built once, reused for every cube.
        # One buffer backs both: A^(v*r) for all v concatenated column-wise
        # (one sgemm computes a cube's rows at every position at once), and
        # its (L, n, n) rearrangement for batched seed expansion is a view.
        self._cell_rows_f32 = self._cell_rows.astype(np.float32)
        self._positions_concat_f32 = np.ascontiguousarray(
            self._build_position_matrices()
            .transpose(1, 0, 2)
            .reshape(n, self._window_length * n)
        ).astype(np.float32)
        self._position_matrices_f32 = self._positions_concat_f32.reshape(
            n, self._window_length, n
        ).transpose(1, 0, 2)
        # Per-cube caches are content-addressed by (width, mask, value) and
        # bounded LRU-style: a substrate kept alive by a long-running
        # CompressionContext sees many test sets over its lifetime, and
        # without the bound every cube ever encoded would stay resident.
        # The bound is far above any single test set (and raised further by
        # reserve_cube_capacity), so an encoding run never evicts its own
        # working set.
        self._cube_cache = LRUCache(self._MAX_CUBE_ENTRIES)
        self._words_cache = LRUCache(self._MAX_CUBE_ENTRIES)

    #: Baseline LRU bound of the per-cube caches -- far above any single
    #: calibrated test set, so one encoding run never evicts its own working
    #: set; it only stops a substrate shared across many test sets from
    #: growing without bound.  :meth:`reserve_cube_capacity` raises the
    #: effective bound when a larger test set shows up, so even a
    #: bigger-than-baseline set gets hit-every-revisit behaviour (the bound
    #: then caps accumulation relative to the largest set seen).
    _MAX_CUBE_ENTRIES = 8192

    def _to_numpy(self, matrix: GF2Matrix) -> np.ndarray:
        """Dense uint8 form of ``matrix``, converted at most once."""
        cached = self._dense_cache.get(matrix)
        if cached is None:
            cached = _matrix_to_numpy(matrix)
            self._dense_cache[matrix] = cached
        return cached

    def reserve_cube_capacity(self, num_cubes: int) -> None:
        """Make sure a test set of ``num_cubes`` cubes fits the caches.

        Called by the encoder before a run so its whole working set stays
        resident across seeds; without this, a test set larger than the
        baseline bound would thrash (every revisit a miss + re-gemm).
        """
        for cache in (self._cube_cache, self._words_cache):
            cache.bound = max(cache.bound, 2 * num_cubes)

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    def _build_cell_rows(self) -> np.ndarray:
        """Rows ``P[chain(c)] * A^(load_cycle(c))`` for every scan cell."""
        arch = self._architecture
        n = self._lfsr_size
        phase_np = self._to_numpy(self._phase_shifter.matrix)
        transition_np = self._to_numpy(self._transition)

        # chain_rows[t] = P * A^t for every shift cycle t of one vector load.
        chain_rows = np.empty((arch.chain_length, phase_np.shape[0], n), dtype=np.uint8)
        current = phase_np.copy()
        for t in range(arch.chain_length):
            chain_rows[t] = current
            current = _gf2_matmul(current, transition_np)

        cell_rows = np.empty((arch.num_cells, n), dtype=np.uint8)
        for cell in range(arch.num_cells):
            chain = cell % arch.num_chains
            cycle = arch.load_cycle(cell)
            cell_rows[cell] = chain_rows[cycle, chain]
        return cell_rows

    def _build_position_matrices(self) -> np.ndarray:
        """``A^(v*r)`` for every window position ``v`` (shape L x n x n)."""
        n = self._lfsr_size
        per_vector = transition_power(self._transition, self._architecture.chain_length)
        per_vector_np = self._to_numpy(per_vector)
        matrices = np.empty((self._window_length, n, n), dtype=np.uint8)
        matrices[0] = np.eye(n, dtype=np.uint8)
        for v in range(1, self._window_length):
            matrices[v] = _gf2_matmul(matrices[v - 1], per_vector_np)
        return matrices

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def lfsr_size(self) -> int:
        return self._lfsr_size

    @property
    def window_length(self) -> int:
        return self._window_length

    @property
    def architecture(self) -> ScanArchitecture:
        return self._architecture

    @property
    def phase_shifter(self) -> PhaseShifter:
        return self._phase_shifter

    @property
    def transition(self) -> GF2Matrix:
        return self._transition

    # ------------------------------------------------------------------
    # Equations
    # ------------------------------------------------------------------
    def cube_position_words(self, cube: TestCube) -> Tuple[np.ndarray, int]:
        """A cube's augmented equation rows for every position, packed.

        Returns ``(words, rows_per_position)`` where ``words`` is an
        ``(L * s, num_words)`` uint64 block -- ``s`` consecutive augmented
        rows (RHS packed as bit ``n``) per window position, in position
        order -- ready for
        :meth:`repro.gf2.solve.IncrementalSolver.try_positions_packed`.
        Cached per cube: the rows depend only on the hardware, so every
        seed (and every encoder sharing this system) reuses the same block.
        Treat the returned array as immutable.
        """
        if cube.num_cells != self._architecture.num_cells:
            raise ValueError(
                f"cube width {cube.num_cells} does not match the scan "
                f"architecture ({self._architecture.num_cells} cells)"
            )
        key = (cube.num_cells, cube.care_mask, cube.care_value)
        cached = self._words_cache.get(key)
        if cached is not None:
            return cached

        cells = cube.specified_cells()
        rhs = np.array([(cube.care_value >> c) & 1 for c in cells], dtype=np.uint8)
        spec_rows = self._cell_rows_f32[cells]  # (s, n)
        # rows_all[v, i] = spec_rows[i] @ A^(v*r) for every position v -- all
        # positions in a single BLAS product against the concatenated
        # position matrices (exact: inner-dimension sums stay < 2**24).
        counts = spec_rows @ self._positions_concat_f32  # (s, L*n)
        result = self._pack_cube_words(counts, rhs, len(cells))
        self._words_cache.put(key, result)
        return result

    def _pack_cube_words(
        self, counts: np.ndarray, rhs: np.ndarray, num_rows: int
    ) -> Tuple[np.ndarray, int]:
        """Pack one cube's gemm output into augmented uint64 row blocks.

        ``counts`` is the ``(s, L*n)`` float32 product of the cube's
        specified-cell rows with the concatenated position matrices --
        whether it came from a per-cube gemm (:meth:`cube_position_words`)
        or as a slice of the test-set-wide batched gemm
        (:meth:`precompute_cube_words`), the packed result is bit-identical.
        """
        n = self._lfsr_size
        window = self._window_length
        rows_all = (
            (counts.astype(np.uint32) & 1)
            .astype(np.uint8)
            .reshape(num_rows, window, n)
            .swapaxes(0, 1)
        )  # (L, s, n)
        augmented = np.concatenate(
            [rows_all, np.broadcast_to(rhs, (window, num_rows))[:, :, None]],
            axis=2,
        )
        packed = np.packbits(augmented, axis=2, bitorder="little")
        num_words = (n + 1 + 63) // 64
        buffer = np.zeros((window, num_rows, num_words * 8), dtype=np.uint8)
        buffer[:, :, : packed.shape[2]] = packed
        words = buffer.view("<u8").reshape(window * num_rows, num_words)
        return (words, num_rows)

    #: Float32 budget of one batched-gemm intermediate (~8 MB).  The cube
    #: batches of :meth:`precompute_cube_words` are chunked to stay below
    #: it: chunk outputs that fit the last-level cache beat both one huge
    #: gemm (cache-thrashing intermediates) and per-cube gemms (fixed BLAS
    #: overhead per call) -- tuned with ``repro bench``.
    _BATCH_GEMM_BUDGET = 2_000_000

    def precompute_cube_words(self, cubes: Sequence[TestCube]) -> None:
        """Populate the packed-row cache for many cubes with batched gemms.

        :meth:`cube_position_words` issues one BLAS product per cube; for a
        whole test set that is hundreds of small gemms whose fixed overhead
        adds up (~15% of encode setup on s9234-L200).  Here the
        specified-cell rows of *all* still-uncached cubes are stacked and
        multiplied against the concatenated position matrices in one gemm
        per memory-bounded chunk, then split and packed per cube.  Sums of
        0/1 floats are exact in float32 regardless of accumulation order,
        so the cached blocks are bit-identical to the per-cube path.
        """
        self.reserve_cube_capacity(len(cubes))
        pending: List[Tuple[Tuple[int, int, int], TestCube, List[int]]] = []
        seen = set()
        for cube in cubes:
            if cube.num_cells != self._architecture.num_cells:
                raise ValueError(
                    f"cube width {cube.num_cells} does not match the scan "
                    f"architecture ({self._architecture.num_cells} cells)"
                )
            key = (cube.num_cells, cube.care_mask, cube.care_value)
            if key in self._words_cache or key in seen:
                continue
            cells = cube.specified_cells()
            if not cells:
                self.cube_position_words(cube)  # trivial: no gemm needed
                continue
            seen.add(key)
            pending.append((key, cube, cells))
        if not pending:
            return
        row_budget = max(
            1,
            self._BATCH_GEMM_BUDGET
            // max(1, self._window_length * self._lfsr_size),
        )
        start = 0
        while start < len(pending):
            chunk = []
            total_rows = 0
            while start < len(pending) and (
                not chunk or total_rows + len(pending[start][2]) <= row_budget
            ):
                chunk.append(pending[start])
                total_rows += len(pending[start][2])
                start += 1
            all_cells = np.concatenate(
                [np.asarray(cells, dtype=np.intp) for _, _, cells in chunk]
            )
            # One gemm for every cube of the chunk at every window position.
            counts = self._cell_rows_f32[all_cells] @ self._positions_concat_f32
            offset = 0
            for key, cube, cells in chunk:
                num_rows = len(cells)
                rhs = np.array(
                    [(cube.care_value >> c) & 1 for c in cells], dtype=np.uint8
                )
                self._words_cache.put(
                    key,
                    self._pack_cube_words(
                        counts[offset : offset + num_rows], rhs, num_rows
                    ),
                )
                offset += num_rows

    def cube_equations(self, cube: TestCube) -> List[List[Tuple[int, int]]]:
        """Packed equations of a cube for every window position.

        Entry ``v`` of the result is the list of ``(coefficient_mask, rhs)``
        pairs for encoding the cube at window position ``v``.  Results are
        cached per cube (the equations depend only on the hardware, not on
        any seed), so repeated queries across seeds are free.
        """
        key = (cube.num_cells, cube.care_mask, cube.care_value)
        cached = self._cube_cache.get(key)
        if cached is not None:
            return cached
        equations = [
            self._position_equations(cube, v) for v in range(self._window_length)
        ]
        self._cube_cache.put(key, equations)
        return equations

    def cube_equations_at(self, cube: TestCube, position: int) -> List[Tuple[int, int]]:
        """Equations of a cube at one window position.

        Unlike :meth:`cube_equations` this does not materialise (or cache)
        the per-position pair lists of the whole window.
        """
        if not 0 <= position < self._window_length:
            raise IndexError(f"window position {position} out of range")
        key = (cube.num_cells, cube.care_mask, cube.care_value)
        cached = self._cube_cache.get(key)
        if cached is not None:
            return cached[position]
        return self._position_equations(cube, position)

    def _position_equations(self, cube: TestCube, position: int) -> List[Tuple[int, int]]:
        """The ``(mask, rhs)`` pairs of one position, from the packed words."""
        words, num_rows = self.cube_position_words(cube)
        rows = _words_to_ints(words[position * num_rows : (position + 1) * num_rows])
        rhs_bit = 1 << self._lfsr_size
        return [(aug & (rhs_bit - 1), 1 if aug & rhs_bit else 0) for aug in rows]

    # ------------------------------------------------------------------
    # Seed expansion
    # ------------------------------------------------------------------
    def expand_seed(self, seed: BitVector) -> List[int]:
        """All ``L`` test vectors of one seed, as packed integers."""
        return self.expand_seeds([seed])[0]

    def expand_seeds_packed(self, seeds: Sequence[BitVector]) -> np.ndarray:
        """Expand seeds into uint64-blocked windows (the packed core form).

        Returns a ``(num_seeds, L, num_words)`` little-endian uint64 array
        with ``num_words = ceil(num_cells / 64)``; bit ``c`` of word ``w``
        of entry ``[s, v]`` is scan cell ``64*w + c`` of the test vector
        produced by seed ``s`` at window position ``v`` -- the same cell
        packing as :meth:`repro.testdata.cube.TestCube.packed_words`, so
        the embedding-matching kernel consumes it directly.  Treat the
        result as immutable (it is shared through the context cache).
        """
        n = self._lfsr_size
        num_cells = self._architecture.num_cells
        num_seeds = len(seeds)
        num_words = (num_cells + 63) // 64
        buffer = np.zeros(
            (num_seeds, self._window_length, num_words * 8), dtype=np.uint8
        )
        if not seeds:
            return buffer.view("<u8")
        for seed in seeds:
            if seed.length != n:
                raise ValueError("seed length does not match the LFSR size")
        seed_cols = np.zeros((n, num_seeds), dtype=np.uint8)
        for j, seed in enumerate(seeds):
            value = seed.value
            while value:
                low = value & -value
                seed_cols[low.bit_length() - 1, j] = 1
                value ^= low

        # LFSR state at the start of every vector, for every seed, then the
        # scanned cell bits -- two batched BLAS products with a mod-2
        # reduction in between (operands must be 0/1 for exactness).  The
        # window dimension is processed in chunks so the intermediate
        # (chunk, cells, seeds) tensors stay bounded (~16 MB of float32)
        # for large windows/cores instead of materialising all L at once.
        seed_cols_f32 = seed_cols.astype(np.float32)
        chunk = max(1, 4_000_000 // max(1, num_cells * num_seeds))
        for start in range(0, self._window_length, chunk):
            positions = self._position_matrices_f32[start : start + chunk]
            states = np.matmul(positions, seed_cols_f32)  # (chunk, n, seeds)
            states = (states.astype(np.uint32) & 1).astype(np.float32)
            cell_bits = np.matmul(self._cell_rows_f32, states)
            cell_bits = (cell_bits.astype(np.uint32) & 1).astype(np.uint8)
            packed = np.packbits(cell_bits, axis=1, bitorder="little")
            # packed: (chunk, nbytes, seeds) -> per-seed rows of the buffer
            buffer[:, start : start + packed.shape[0], : packed.shape[1]] = (
                packed.transpose(2, 0, 1)
            )
        return buffer.view("<u8")

    def expand_seeds(self, seeds: Sequence[BitVector]) -> List[List[int]]:
        """Expand several seeds into their ``L``-vector windows (bulk numpy).

        Entry ``[s][v]`` of the result is the fully specified test vector
        (packed integer over the scan cells) produced by seed ``s`` at window
        position ``v`` -- the integer view of :meth:`expand_seeds_packed`.
        """
        if not seeds:
            return []
        return windows_from_packed(self.expand_seeds_packed(seeds))

    def vector_at(self, seed: BitVector, position: int) -> List[int]:
        """The test vector of ``seed`` at one window position, as a bit list."""
        packed = self.expand_seed(seed)[position]
        return [(packed >> c) & 1 for c in range(self._architecture.num_cells)]

    def cube_matches(self, cube: TestCube, seed: BitVector, position: int) -> bool:
        """True when the expanded vector at ``position`` covers ``cube``."""
        return cube.matches_vector(self.expand_seed(seed)[position])

    def clear_cache(self) -> None:
        """Drop the per-cube equation caches (memory housekeeping)."""
        self._cube_cache.clear()
        self._words_cache.clear()
