"""The algebraic substrate of one decompressor setup.

The substrate is everything about the hardware that the seed computation,
the sequence reduction and the verification share: the scan architecture,
the LFSR, the phase shifter and the precomputed
:class:`~repro.encoding.equations.EquationSystem`.  It depends only on the
:class:`SubstrateKey` -- never on the test cubes, the fill seed or the
State Skip parameters (S, k) -- which is what makes it safe to cache and
share across campaign grid neighbours
(:class:`repro.context.CompressionContext` owns that cache).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.encoding.equations import EquationSystem
from repro.gf2.primitive import default_feedback_polynomial
from repro.lfsr.lfsr import LFSR
from repro.lfsr.phase_shifter import PhaseShifter
from repro.scan.architecture import ScanArchitecture


@dataclass(frozen=True)
class SubstrateKey:
    """Everything that determines the algebraic substrate of one setup.

    Two compression runs with equal keys share the exact same LFSR,
    phase shifter and equation system -- the test cubes, the fill seed and
    the State Skip parameters do not enter the key.
    """

    num_cells: int
    num_scan_chains: int
    lfsr_size: int
    window_length: int
    phase_taps: int = 3
    phase_seed: int = 2008


class EncoderSubstrate:
    """The deterministic hardware model behind one :class:`SubstrateKey`.

    Bundles the scan architecture, the LFSR (library-default primitive
    feedback polynomial), the phase shifter and the
    :class:`~repro.encoding.equations.EquationSystem`.  Construction is the
    dominant cost of encode setup (dense conversions plus the BLAS ladders
    of the position matrices), which is why substrates are what the
    :class:`~repro.context.CompressionContext` caches.
    """

    def __init__(self, key: SubstrateKey):
        if key.lfsr_size < 2:
            raise ValueError("lfsr_size must be at least 2")
        self.key = key
        self.architecture = ScanArchitecture(key.num_cells, key.num_scan_chains)
        self.lfsr = LFSR.fibonacci(default_feedback_polynomial(key.lfsr_size))
        self.phase_shifter = PhaseShifter.construct(
            num_outputs=self.architecture.num_chains,
            lfsr_size=key.lfsr_size,
            taps_per_output=key.phase_taps,
            seed=key.phase_seed,
        )
        self.equations = EquationSystem(
            transition=self.lfsr.transition,
            phase_shifter=self.phase_shifter,
            architecture=self.architecture,
            window_length=key.window_length,
        )
