"""LFSR-reseeding seed computation (classical and window-based).

This package implements the encoding side of the flow:

* :class:`~repro.encoding.equations.EquationSystem` -- turns the LFSR,
  phase shifter and scan architecture into per-(cube, window-position) linear
  systems, and expands seeds back into test vectors.
* :class:`~repro.encoding.window.WindowEncoder` -- the greedy multi-cube
  window-based seed-computation algorithm of Section 2 of the paper (the
  method of reference [11], which is also the "Orig." baseline of the
  evaluation).
* :func:`~repro.encoding.classical.encode_classical` -- classical LFSR
  reseeding where every seed expands into a single test vector (L = 1).
* :class:`~repro.encoding.encoder.ReseedingEncoder` -- the convenience
  front-end that assembles all the pieces for a given test set.
"""

from repro.encoding.equations import EquationSystem
from repro.encoding.results import CubeEmbedding, EncodingResult, SeedRecord
from repro.encoding.window import EncodingError, WindowEncoder
from repro.encoding.classical import encode_classical
from repro.encoding.encoder import ReseedingEncoder, encode_test_set
from repro.encoding.substrate import EncoderSubstrate, SubstrateKey

__all__ = [
    "EquationSystem",
    "CubeEmbedding",
    "EncodingResult",
    "SeedRecord",
    "EncodingError",
    "EncoderSubstrate",
    "SubstrateKey",
    "WindowEncoder",
    "encode_classical",
    "ReseedingEncoder",
    "encode_test_set",
]
