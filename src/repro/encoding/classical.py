"""Classical LFSR reseeding (one seed per test vector, L = 1).

This is the baseline of Table 1 ("Classical Reseeding (L=1)"): every seed is
expanded into exactly one test vector.  As in the paper's experiment, the same
greedy multi-cube algorithm is used so that each seed still encodes every
compatible cube that fits into a single vector -- the comparison against
window-based encoding is therefore about the window, not about smarter cube
packing.
"""

from __future__ import annotations

from typing import Optional

from repro.encoding.results import EncodingResult
from repro.testdata.test_set import TestSet


def encode_classical(
    test_set: TestSet,
    num_scan_chains: int = 32,
    lfsr_size: Optional[int] = None,
    phase_taps: int = 3,
    fill_seed: int = 2008,
    max_phase_retries: int = 4,
) -> EncodingResult:
    """Encode a test set with classical (single-vector) LFSR reseeding."""
    from repro.encoding.encoder import encode_test_set

    return encode_test_set(
        test_set,
        window_length=1,
        num_scan_chains=num_scan_chains,
        lfsr_size=lfsr_size if lfsr_size is not None else _default_size(test_set),
        phase_taps=phase_taps,
        fill_seed=fill_seed,
        max_phase_retries=max_phase_retries,
    )


def _default_size(test_set: TestSet) -> int:
    """``s_max`` plus a small margin, the usual reseeding LFSR sizing rule."""
    return test_set.max_specified() + 8
