"""Convenience front-end assembling the full reseeding encoder.

:class:`ReseedingEncoder` builds (or borrows) the
:class:`~repro.encoding.substrate.EncoderSubstrate` -- the LFSR with the
library's default primitive feedback polynomial, the phase shifter, the
scan architecture and the equation system -- and exposes a single
:meth:`~ReseedingEncoder.encode` call.  Passing a context-cached substrate
skips the expensive setup entirely (see
:class:`repro.context.CompressionContext`); the lower-level classes remain
available for callers that want to substitute their own hardware (e.g. a
custom transition matrix or a hand-crafted phase shifter).
"""

from __future__ import annotations

from typing import Optional

from repro.encoding.equations import EquationSystem
from repro.encoding.results import EncodingResult
from repro.encoding.substrate import EncoderSubstrate, SubstrateKey
from repro.encoding.window import WindowEncoder
from repro.lfsr.lfsr import LFSR
from repro.lfsr.phase_shifter import PhaseShifter
from repro.scan.architecture import ScanArchitecture
from repro.testdata.test_set import TestSet


class ReseedingEncoder:
    """Window-based LFSR-reseeding encoder for a fixed decompressor setup.

    Parameters
    ----------
    num_cells:
        Scan-cell count (test cube width) of the core under test.
    num_scan_chains:
        Number of scan chains (the paper uses 32).
    lfsr_size:
        LFSR size ``n``; must be at least the densest cube's specified-bit
        count for the encoding to succeed.
    window_length:
        Window size ``L`` (1 reproduces classical reseeding).
    phase_taps:
        XOR taps per phase-shifter output.
    phase_seed:
        RNG seed of the phase-shifter construction (fixed for
        reproducibility).
    fill_seed:
        RNG seed of the pseudo-random fill of free seed variables.
    batch_trials:
        Use the batched/residual-cached solvability scan (default); False
        selects the unbatched reference scan (bit-identical results).
    substrate:
        A prebuilt :class:`~repro.context.EncoderSubstrate` (e.g. from a
        :class:`~repro.context.CompressionContext` cache).  Its key must
        match the hardware parameters above; when omitted a fresh substrate
        is constructed.
    """

    def __init__(
        self,
        num_cells: int,
        num_scan_chains: int,
        lfsr_size: int,
        window_length: int,
        phase_taps: int = 3,
        phase_seed: int = 2008,
        fill_seed: int = 2008,
        batch_trials: bool = True,
        substrate: Optional[EncoderSubstrate] = None,
    ):
        key = SubstrateKey(
            num_cells=num_cells,
            num_scan_chains=num_scan_chains,
            lfsr_size=lfsr_size,
            window_length=window_length,
            phase_taps=phase_taps,
            phase_seed=phase_seed,
        )
        if substrate is None:
            substrate = EncoderSubstrate(key)
        elif substrate.key != key:
            raise ValueError(
                f"substrate key {substrate.key} does not match the encoder "
                f"parameters {key}"
            )
        self._substrate = substrate
        self._window_encoder = WindowEncoder(
            substrate.equations, fill_seed=fill_seed, batch_trials=batch_trials
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def substrate(self) -> EncoderSubstrate:
        return self._substrate

    @property
    def architecture(self) -> ScanArchitecture:
        return self._substrate.architecture

    @property
    def lfsr(self) -> LFSR:
        return self._substrate.lfsr

    @property
    def phase_shifter(self) -> PhaseShifter:
        return self._substrate.phase_shifter

    @property
    def equations(self) -> EquationSystem:
        return self._substrate.equations

    @property
    def window_length(self) -> int:
        return self._substrate.equations.window_length

    @property
    def lfsr_size(self) -> int:
        return self._substrate.equations.lfsr_size

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, test_set: TestSet) -> EncodingResult:
        """Run the window-based seed computation on a test set."""
        smax = test_set.max_specified()
        if smax > self.lfsr_size:
            raise ValueError(
                f"the densest cube specifies {smax} bits but the LFSR has only "
                f"{self.lfsr_size} cells; increase lfsr_size"
            )
        return self._window_encoder.encode(test_set)


def encode_test_set(
    test_set: TestSet,
    window_length: int,
    num_scan_chains: int = 32,
    lfsr_size: Optional[int] = None,
    phase_taps: int = 3,
    phase_seed: int = 2008,
    fill_seed: int = 2008,
    max_phase_retries: int = 4,
) -> EncodingResult:
    """One-call window-based encoding of a test set.

    ``lfsr_size`` defaults to ``s_max + 8`` (margin over the densest cube).

    Structural linear dependencies occasionally make one cube unencodable for
    a particular phase shifter (the classical reseeding failure mode that the
    ``s_max`` margin guards against probabilistically).  When that happens
    the phase shifter is rebuilt with the next RNG seed and the encoding is
    retried, up to ``max_phase_retries`` times -- exactly what a DFT engineer
    would do.
    """
    from repro.encoding.window import EncodingError

    if lfsr_size is None:
        lfsr_size = test_set.max_specified() + 8
    last_error: Optional[EncodingError] = None
    for attempt in range(max_phase_retries + 1):
        encoder = ReseedingEncoder(
            num_cells=test_set.num_cells,
            num_scan_chains=num_scan_chains,
            lfsr_size=lfsr_size,
            window_length=window_length,
            phase_taps=phase_taps,
            phase_seed=phase_seed + attempt,
            fill_seed=fill_seed,
        )
        try:
            return encoder.encode(test_set)
        except EncodingError as error:
            last_error = error
    raise last_error
