"""Shared caches for the staged compression pipeline.

Every paper artifact (Tables 1-4, Fig. 4) is a grid of runs over
circuits x (L, S, k), and the expensive work is concentrated in two
invariants that grid neighbours share:

* the **algebraic substrate** of the decompressor -- the LFSR, the phase
  shifter and the :class:`~repro.encoding.equations.EquationSystem` with its
  precomputed cell rows and window-position matrices.  It depends only on
  ``(num_cells, num_scan_chains, lfsr_size, window_length, phase_taps,
  phase_seed)``, never on the test cubes or on the State Skip parameters
  ``(S, k)``;
* the **expanded seed windows** -- the ``L`` fully specified test vectors of
  every computed seed.  Verification, the sequence reducer's embedding map
  and any coverage cross-check all need exactly the same expansion.

:class:`CompressionContext` owns content-addressed caches for both (plus the
encode-stage results built on top of them) and counts hits, misses and
per-stage wall time.  The staged pipeline functions in
:mod:`repro.pipeline` (``encode`` / ``reduce`` / ``hardware`` /
``simulate``) thread a context through the flow; the campaign runner gives
every worker one context per job group so that an (S, k) sweep over one
encoding pays for the substrate and the seed computation exactly once.

All cache keys are content-addressed (plain value tuples), so a context is
safe to share across test sets, configs and campaign grids; caches are
bounded LRU-style so long-lived processes stay flat in memory.  A context is
**not** thread- or process-safe -- use one per worker.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.encoding.substrate import EncoderSubstrate, SubstrateKey
from repro.lru import LRUCache
from repro.telemetry.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.encoding.results import EncodingResult
    from repro.gf2.bitvec import BitVector

__all__ = [
    "CompressionContext",
    "ContextStats",
    "EncoderSubstrate",
    "SubstrateKey",
]


@dataclass
class _EncodingEntry:
    """One cached encode-stage result (see :meth:`CompressionContext`)."""

    substrate: EncoderSubstrate
    encoding: "EncodingResult"
    verified: bool




class ContextStats:
    """Cache hit/miss counters and per-stage wall-time accumulators.

    Since the telemetry subsystem landed this is a compatibility façade
    over a :class:`~repro.telemetry.metrics.MetricsRegistry`: counters are
    registry counters, timings are registry counters named ``<stage>_s``
    (the suffix :meth:`snapshot` always used on the wire).  The public
    surface -- ``count`` / ``add_timing`` / ``counters`` / ``timings`` /
    ``snapshot`` / ``delta`` -- is unchanged, but a context's stats can now
    be bound to a recorder's registry (``ContextStats(registry=...)``) so
    cache activity flows into campaign telemetry with no extra plumbing.
    """

    __slots__ = ("registry",)

    _TIMING_SUFFIX = "_s"

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()

    def count(self, name: str, delta: int = 1) -> None:
        self.registry.inc(name, delta)

    def add_timing(self, stage: str, seconds: float) -> None:
        self.registry.inc(f"{stage}{self._TIMING_SUFFIX}", seconds)

    @property
    def counters(self) -> Dict[str, int]:
        """Copy of the pure counters (timing accumulators excluded)."""
        return {
            name: value
            for name, value in self.registry.counters.items()
            if not name.endswith(self._TIMING_SUFFIX)
        }

    @property
    def timings(self) -> Dict[str, float]:
        """Copy of the per-stage wall-time totals, keyed by stage name."""
        suffix = len(self._TIMING_SUFFIX)
        return {
            name[:-suffix]: value
            for name, value in self.registry.counters.items()
            if name.endswith(self._TIMING_SUFFIX)
        }

    def snapshot(self) -> Dict[str, float]:
        """Flat copy of every counter and timing (timings as ``<stage>_s``)."""
        return self.registry.snapshot_counters()

    @staticmethod
    def delta(
        before: Dict[str, float], after: Dict[str, float]
    ) -> Dict[str, float]:
        """What happened between two :meth:`snapshot` calls (zeros dropped)."""
        out: Dict[str, float] = {}
        for name, value in after.items():
            diff = value - before.get(name, 0)
            if diff:
                out[name] = round(diff, 6) if isinstance(diff, float) else diff
        return out


class CompressionContext:
    """Content-addressed caches shared across staged compression runs.

    Parameters
    ----------
    caching:
        ``False`` turns every cache into a pass-through (each query is
        recomputed and counted as a miss) while keeping the stats and the
        staged API identical -- the cache-on/cache-off golden tests rely on
        this producing bit-identical reports.
    max_substrates / max_encodings / max_windows:
        LRU bounds of the three caches.
    stats:
        An externally owned :class:`ContextStats` to record into --
        campaign workers pass one bound to their recorder's metrics
        registry so cache counters stream back with job telemetry.

    The three caches, from cheapest to most expensive to rebuild:

    * ``substrate``: :class:`EncoderSubstrate` by :class:`SubstrateKey`;
    * ``windows``: expanded seed windows by ``(SubstrateKey, seed values)``
      -- the seed-value tuple is the content fingerprint of the seeds.
      The uint64-blocked form (:meth:`packed_windows`) is the primary
      artifact -- the BLAS expansion happens there -- and the integer form
      (:meth:`expanded_windows`) is a cheap derived view cached alongside
      it, so verification (integers) and the embedding matcher (packed
      blocks) share one expansion;
    * ``encoding``: full encode-stage results (substrate + seeds +
      verification flag) by ``(test-set fingerprint, encode-relevant config
      key)`` -- this is what lets a warm (S, k) sweep skip the seed
      computation entirely.
    """

    def __init__(
        self,
        caching: bool = True,
        max_substrates: int = 8,
        max_encodings: int = 16,
        max_windows: int = 16,
        stats: Optional[ContextStats] = None,
    ):
        self.caching = caching
        self.stats = stats if stats is not None else ContextStats()
        self._substrates = LRUCache(max_substrates)
        self._encodings = LRUCache(max_encodings)
        self._windows = LRUCache(max_windows)
        self._packed_windows = LRUCache(max_windows)

    # ------------------------------------------------------------------
    # Substrate cache
    # ------------------------------------------------------------------
    def substrate(self, key: SubstrateKey) -> EncoderSubstrate:
        """The (possibly cached) substrate of ``key``."""
        cached = self._substrates.get(key) if self.caching else None
        if cached is not None:
            self.stats.count("substrate_hits")
            return cached
        self.stats.count("substrate_misses")
        start = time.perf_counter()
        substrate = EncoderSubstrate(key)
        self.stats.add_timing("substrate_build", time.perf_counter() - start)
        if self.caching:
            self._substrates.put(key, substrate)
        return substrate

    # ------------------------------------------------------------------
    # Encode-stage cache
    # ------------------------------------------------------------------
    def get_encoding(
        self, fingerprint: str, encode_key: str
    ) -> Optional[_EncodingEntry]:
        """Cached encode-stage entry for (test set, encode config), if any."""
        entry = (
            self._encodings.get((fingerprint, encode_key))
            if self.caching
            else None
        )
        if entry is None:
            self.stats.count("encoding_misses")
            return None
        self.stats.count("encoding_hits")
        return entry

    def put_encoding(
        self,
        fingerprint: str,
        encode_key: str,
        substrate: EncoderSubstrate,
        encoding: "EncodingResult",
        verified: bool,
    ) -> _EncodingEntry:
        entry = _EncodingEntry(
            substrate=substrate, encoding=encoding, verified=verified
        )
        if self.caching:
            self._encodings.put((fingerprint, encode_key), entry)
        return entry

    # ------------------------------------------------------------------
    # Expanded-window cache
    # ------------------------------------------------------------------
    def packed_windows(
        self, substrate: EncoderSubstrate, seeds: Sequence["BitVector"]
    ):
        """The uint64-blocked windows of ``seeds``, expanded at most once.

        A ``(num_seeds, L, num_words)`` uint64 array (exactly
        :meth:`~repro.encoding.equations.EquationSystem.expand_seeds_packed`)
        -- the form the vectorized embedding matcher consumes.  This is
        where the BLAS expansion actually runs; :meth:`expanded_windows`
        derives its integers from this cache.  The result is shared --
        treat it as immutable.
        """
        key = (substrate.key, tuple(seed.value for seed in seeds))
        cached = self._packed_windows.get(key) if self.caching else None
        if cached is not None:
            self.stats.count("packed_window_hits")
            return cached
        self.stats.count("packed_window_misses")
        start = time.perf_counter()
        packed = substrate.equations.expand_seeds_packed(list(seeds))
        self.stats.add_timing("expand_seeds", time.perf_counter() - start)
        if self.caching:
            self._packed_windows.put(key, packed)
        return packed

    def expanded_windows(
        self, substrate: EncoderSubstrate, seeds: Sequence["BitVector"]
    ) -> List[List[int]]:
        """The ``L``-vector windows of ``seeds``, expanded at most once.

        Entry ``[s][v]`` is the packed test vector of seed ``s`` at window
        position ``v`` (exactly
        :meth:`~repro.encoding.equations.EquationSystem.expand_seeds`).
        Derived from the :meth:`packed_windows` cache, so the integer and
        the uint64-blocked consumers share one BLAS expansion.  The result
        is shared -- treat it as immutable.
        """
        from repro.encoding.equations import windows_from_packed

        key = (substrate.key, tuple(seed.value for seed in seeds))
        cached = self._windows.get(key) if self.caching else None
        if cached is not None:
            self.stats.count("window_hits")
            return cached
        self.stats.count("window_misses")
        packed = self.packed_windows(substrate, seeds)
        windows = windows_from_packed(packed)
        if self.caching:
            self._windows.put(key, windows)
        return windows

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every cached object (stats are kept)."""
        self._substrates.clear()
        self._encodings.clear()
        self._windows.clear()
        self._packed_windows.clear()
