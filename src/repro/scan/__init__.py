"""Scan-chain architecture of the core under test."""

from repro.scan.architecture import ScanArchitecture, ScanCell

__all__ = ["ScanArchitecture", "ScanCell"]
