"""Scan-chain architecture of the core under test.

The decompressor of Fig. 1/Fig. 3 drives ``m`` balanced scan chains of length
``r``; one test vector is loaded in ``r`` shift cycles (all chains shift in
parallel).  The architecture object owns the mapping between the *flat* test
cube bit positions used by the test-data substrate (cell index
``0 .. num_cells-1``) and the physical (chain, depth) coordinates, and from
there the *shift cycle* at which each cell's value leaves the phase shifter.

Mapping convention
------------------
Cell ``c`` sits on chain ``c mod m`` at depth ``c div m``.  Depth 0 is the
scan-in end of the chain, so the bit destined for depth ``d`` is shifted in at
cycle ``r - 1 - d`` of the vector's load window (the deepest cell receives the
first shifted bit).  The exact convention is irrelevant to the compression
statistics -- any fixed bijection works -- but it is fixed here once and used
consistently by the encoder, the window expander and the decompressor
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


@dataclass(frozen=True)
class ScanCell:
    """Physical placement of one test-cube bit position."""

    index: int
    chain: int
    depth: int
    load_cycle: int


class ScanArchitecture:
    """Balanced multi-chain scan structure.

    Parameters
    ----------
    num_cells:
        Number of meaningful scan cells (primary inputs + state elements of
        the core).  The last chain(s) are padded when ``num_cells`` is not a
        multiple of ``num_chains``; padding positions simply never carry
        specified bits.
    num_chains:
        Number of scan chains ``m`` (the paper uses 32 for every circuit).
    """

    def __init__(self, num_cells: int, num_chains: int = 32):
        if num_cells < 1:
            raise ValueError("num_cells must be positive")
        if num_chains < 1:
            raise ValueError("num_chains must be positive")
        self._num_cells = num_cells
        self._num_chains = min(num_chains, num_cells)
        self._chain_length = -(-num_cells // self._num_chains)  # ceil division

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """Number of meaningful scan cells."""
        return self._num_cells

    @property
    def num_chains(self) -> int:
        """Number of scan chains ``m``."""
        return self._num_chains

    @property
    def chain_length(self) -> int:
        """Scan-chain length ``r`` (cycles needed to load one vector)."""
        return self._chain_length

    @property
    def padded_cells(self) -> int:
        """Total slots including padding (``m * r``)."""
        return self._num_chains * self._chain_length

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def chain_of(self, cell: int) -> int:
        """Scan chain that holds the given cell."""
        self._check_cell(cell)
        return cell % self._num_chains

    def depth_of(self, cell: int) -> int:
        """Depth of the cell within its chain (0 = scan-in end)."""
        self._check_cell(cell)
        return cell // self._num_chains

    def load_cycle(self, cell: int) -> int:
        """Shift cycle (0-based, within one vector load) that fills the cell."""
        return self._chain_length - 1 - self.depth_of(cell)

    def cell_at(self, chain: int, depth: int) -> int:
        """Flat cell index for a (chain, depth) coordinate."""
        if not 0 <= chain < self._num_chains:
            raise IndexError(f"chain {chain} out of range")
        if not 0 <= depth < self._chain_length:
            raise IndexError(f"depth {depth} out of range")
        cell = depth * self._num_chains + chain
        if cell >= self._num_cells:
            raise IndexError(f"(chain={chain}, depth={depth}) is a padding slot")
        return cell

    def cell(self, index: int) -> ScanCell:
        """Full placement record for a cell."""
        return ScanCell(
            index=index,
            chain=self.chain_of(index),
            depth=self.depth_of(index),
            load_cycle=self.load_cycle(index),
        )

    def cells(self) -> Iterator[ScanCell]:
        """Iterate the placement of every meaningful cell."""
        for index in range(self._num_cells):
            yield self.cell(index)

    def cells_per_chain(self) -> List[int]:
        """Number of meaningful cells on each chain."""
        counts = [0] * self._num_chains
        for index in range(self._num_cells):
            counts[index % self._num_chains] += 1
        return counts

    def _check_cell(self, cell: int) -> None:
        if not 0 <= cell < self._num_cells:
            raise IndexError(
                f"cell {cell} out of range for {self._num_cells} scan cells"
            )

    def __repr__(self) -> str:
        return (
            f"ScanArchitecture(cells={self._num_cells}, "
            f"chains={self._num_chains}, length={self._chain_length})"
        )
