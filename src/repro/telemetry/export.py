"""Exporters: Chrome trace-event JSON and human summary tables.

``chrome_trace`` renders a recorder's spans as complete ("ph": "X") trace
events -- the format ``chrome://tracing`` and Perfetto load directly.  Spans
carry a wall-clock ``start_ts`` (epoch seconds) precisely so spans from
campaign worker processes land on one shared timeline; each worker pid
becomes its own track.

``summary_table`` is the terminal-facing view: per-span-name wall totals,
the headline counters grouped by subsystem prefix, cache hit-rates and
histogram digests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from .events import recorder_event_lines, write_event_log
from .metrics import Histogram, MetricsRegistry

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "summary_table",
    "persist_recorder",
]


def chrome_trace(recorder: Any, meta: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
    """Chrome trace-event JSON (dict form) for a recorder's spans."""
    events: List[Dict[str, Any]] = []
    pids = sorted({span.get("pid", 0) for span in recorder.spans})
    for pid in pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    for span in recorder.spans:
        args = dict(span.get("attrs") or {})
        args["span_id"] = span.get("span_id")
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        events.append(
            {
                "name": span.get("name", "?"),
                "cat": "repro",
                "ph": "X",
                "ts": float(span.get("start_ts", 0.0)) * 1e6,
                "dur": max(float(span.get("duration_s", 0.0)), 0.0) * 1e6,
                "pid": span.get("pid", 0),
                "tid": span.get("tid", 0),
                "args": args,
            }
        )
    trace: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"run_id": recorder.run_id},
    }
    if meta:
        trace["otherData"].update(meta)
    return trace


def write_chrome_trace(path: Path, recorder: Any,
                       meta: Optional[Dict[str, Any]] = None) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(recorder, meta)), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Human summary
# ----------------------------------------------------------------------
def _format_rows(rows: List[List[str]], indent: str = "  ") -> List[str]:
    if not rows:
        return []
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    return [
        indent + "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]


def span_rollup(spans: Iterable[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Per-name aggregate: call count, total wall, max wall."""
    rollup: Dict[str, Dict[str, float]] = {}
    for span in spans:
        name = span.get("name", "?")
        entry = rollup.setdefault(name, {"count": 0, "total_s": 0.0, "max_s": 0.0})
        entry["count"] += 1
        duration = float(span.get("duration_s", 0.0))
        entry["total_s"] += duration
        if duration > entry["max_s"]:
            entry["max_s"] = duration
    return rollup


def summary_table(recorder: Any, title: str = "telemetry summary") -> str:
    """Render spans, counters, hit-rates and histograms as one text block."""
    lines: List[str] = [title, "=" * len(title)]

    rollup = span_rollup(recorder.spans)
    if rollup:
        lines.append("")
        lines.append("spans (wall time by name):")
        rows = [["name", "count", "total", "max"]]
        for name in sorted(rollup, key=lambda n: -rollup[n]["total_s"]):
            entry = rollup[name]
            rows.append(
                [
                    name,
                    f"{int(entry['count'])}",
                    f"{entry['total_s'] * 1e3:.2f}ms",
                    f"{entry['max_s'] * 1e3:.2f}ms",
                ]
            )
        lines.extend(_format_rows(rows))

    metrics: MetricsRegistry = recorder.metrics
    rates = metrics.hit_rates()
    if rates:
        lines.append("")
        lines.append("cache hit-rates:")
        rows = [["cache", "hits", "total", "rate"]]
        for kind, (hits, total, rate) in rates.items():
            rows.append([kind, f"{hits:g}", f"{total:g}", f"{rate * 100:.1f}%"])
        lines.extend(_format_rows(rows))

    counters = {
        name: value
        for name, value in sorted(metrics.counters.items())
        if not name.endswith("_hits") and not name.endswith("_misses")
    }
    if counters:
        lines.append("")
        lines.append("counters:")
        rows = [["name", "value"]]
        for name, value in counters.items():
            if name.endswith("_s"):
                rows.append([name, f"{value:.4f}"])
            else:
                rows.append([name, f"{value:g}"])
        lines.extend(_format_rows(rows))

    if metrics.gauges:
        lines.append("")
        lines.append("gauges:")
        rows = [["name", "value"]]
        for name, value in sorted(metrics.gauges.items()):
            rows.append([name, f"{value:g}"])
        lines.extend(_format_rows(rows))

    if metrics.histograms:
        lines.append("")
        lines.append("histograms (log2 buckets):")
        rows = [["name", "count", "mean", "p50", "p95", "max"]]
        for name in sorted(metrics.histograms):
            histogram: Histogram = metrics.histograms[name]
            rows.append(
                [
                    name,
                    f"{histogram.count}",
                    f"{histogram.mean:.2f}",
                    f"{histogram.quantile(0.5):g}",
                    f"{histogram.quantile(0.95):g}",
                    f"{histogram.max:g}" if histogram.max is not None else "-",
                ]
            )
        lines.extend(_format_rows(rows))

    return "\n".join(lines)


def persist_recorder(directory: Path, recorder: Any,
                     meta: Optional[Dict[str, Any]] = None
                     ) -> Dict[str, Path]:
    """Write ``telemetry/<run_id>.events.jsonl`` + ``.trace.json`` under ``directory``.

    Also drops the metrics registry snapshot into the trace's ``otherData``
    so ``repro stats`` can aggregate counters without replaying events.
    """
    directory = Path(directory) / "telemetry"
    directory.mkdir(parents=True, exist_ok=True)
    events_path = directory / f"{recorder.run_id}.events.jsonl"
    trace_path = directory / f"{recorder.run_id}.trace.json"
    write_event_log(events_path, recorder_event_lines(recorder))
    full_meta = dict(meta or {})
    full_meta["metrics"] = recorder.metrics.snapshot_full()
    write_chrome_trace(trace_path, recorder, full_meta)
    return {"events": events_path, "trace": trace_path}
