"""Structured JSONL event log.

One schema for every line: ``{"ts", "run_id", "span_id", "kind", "payload"}``.
Span records are written through the same file with ``kind == "span"`` and the
span dict as payload, so a single ``<run_id>.events.jsonl`` next to the
campaign results replays the whole run: timing tree and discrete events alike.
Reads tolerate a torn trailing line (same contract as the result store).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List

__all__ = ["write_event_log", "read_event_log", "recorder_event_lines"]

EVENT_FIELDS = ("ts", "run_id", "span_id", "kind", "payload")


def _normalise(record: Dict[str, Any]) -> Dict[str, Any]:
    return {field: record.get(field) for field in EVENT_FIELDS}


def recorder_event_lines(recorder: Any) -> List[Dict[str, Any]]:
    """Flatten a recorder into schema-conformant event records.

    Events come through as-is; spans are re-framed as ``kind="span"`` events
    timestamped at span start, ordered by timestamp so the log reads
    chronologically.
    """
    lines: List[Dict[str, Any]] = [_normalise(event) for event in recorder.events]
    for span in recorder.spans:
        lines.append(
            {
                "ts": span.get("start_ts"),
                "run_id": recorder.run_id,
                "span_id": span.get("span_id"),
                "kind": "span",
                "payload": span,
            }
        )
    lines.sort(key=lambda record: record.get("ts") or 0.0)
    return lines


def write_event_log(path: Path, records: Iterable[Dict[str, Any]]) -> int:
    """Write records as JSONL; returns the number of lines written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(_normalise(record), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_event_log(path: Path) -> Iterator[Dict[str, Any]]:
    """Yield event records, skipping a torn (unparseable) trailing line."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                return  # torn tail from an interrupted writer
            raise
