"""Hierarchical spans and the process-wide active recorder.

A :class:`Recorder` collects three things:

* **spans** -- nested timed regions opened with ``recorder.span(name)`` as a
  context manager.  Timing uses ``time.perf_counter`` for durations (monotonic,
  high resolution) and ``time.time`` for the start epoch so spans recorded in
  different processes line up on one Chrome-trace timeline;
* **metrics** -- a :class:`~repro.telemetry.metrics.MetricsRegistry`;
* **events** -- structured log records (ts, run_id, span_id, kind, payload).

Span ids embed the pid (``"<pid:x>-<seq>"``) so batches collected in campaign
workers merge into the parent recorder without id remapping.  The span stack is
thread-local; finished spans, events and metrics are guarded by one lock so
worker threads can report concurrently.

The **disabled path** is :class:`NullRecorder`: ``enabled`` is ``False`` and
``span()`` returns one shared no-op context manager, so instrumented code in
hot loops pays a single attribute check (``if rec.enabled:``) or, at worst, an
empty ``with`` block -- no allocation, no locking.  ``get_recorder()`` returns
the module-global active recorder, a ``NullRecorder`` unless something opted in
via ``set_recorder()`` / ``use_recorder()``.
"""

from __future__ import annotations

import itertools
import os
import platform
import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from .metrics import MetricsRegistry

__all__ = [
    "Span",
    "Recorder",
    "NullRecorder",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "environment_meta",
]


class Span:
    """One finished (or in-flight) timed region."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "start_ts",
        "duration_s",
        "attrs",
        "pid",
        "tid",
        "_t0",
    )

    def __init__(self, span_id: str, parent_id: Optional[str], name: str,
                 attrs: Optional[Dict[str, Any]] = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.start_ts = time.time()
        self.duration_s = 0.0
        self._t0 = time.perf_counter()

    def set(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute on the span."""
        self.attrs[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ts": self.start_ts,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared no-op stand-in for a span on the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, key: str, value: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Allocation-free recorder used when telemetry is off.

    Every method is a no-op; ``span()`` hands back one shared object.  Hot
    loops should still prefer ``if rec.enabled:`` around per-iteration
    counter updates so the disabled path costs one attribute load.
    """

    __slots__ = ()
    enabled = False
    run_id = ""

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str, delta: float = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def event(self, kind: str, payload: Optional[Dict[str, Any]] = None) -> None:
        return None


#: Per-process recorder instance counter.  Span ids embed both the pid and
#: the instance number, so batches from the *same* pool worker serving
#: several recorders in sequence never collide when merged in the parent.
_INSTANCE_SEQ = itertools.count(1)


class Recorder:
    """Collects spans, metrics and events for one run (or one worker)."""

    enabled = True

    def __init__(self, run_id: Optional[str] = None):
        if run_id is None:
            run_id = time.strftime("%Y%m%dT%H%M%S") + f"-{os.getpid():x}"
        self.run_id = run_id
        self.metrics = MetricsRegistry()
        self.spans: List[Dict[str, Any]] = []
        self.events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._seq = 0
        self._span_prefix = f"{os.getpid():x}.{next(_INSTANCE_SEQ):x}"

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def _next_span_id(self) -> str:
        with self._lock:
            self._seq += 1
            return f"{self._span_prefix}-{self._seq}"

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> Optional[str]:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        record = Span(self._next_span_id(), parent_id, name, attrs)
        stack.append(record)
        try:
            yield record
        finally:
            record.duration_s = time.perf_counter() - record._t0
            stack.pop()
            with self._lock:
                self.spans.append(record.to_dict())

    # ------------------------------------------------------------------
    # Metrics (thin registry passthrough, lock-guarded)
    # ------------------------------------------------------------------
    def counter(self, name: str, delta: float = 1) -> None:
        with self._lock:
            self.metrics.inc(name, delta)

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.metrics.observe(name, value)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def event(self, kind: str, payload: Optional[Dict[str, Any]] = None) -> None:
        record = {
            "ts": time.time(),
            "run_id": self.run_id,
            "span_id": self.current_span_id(),
            "kind": kind,
            "payload": payload or {},
        }
        with self._lock:
            self.events.append(record)

    # ------------------------------------------------------------------
    # Cross-process batching
    # ------------------------------------------------------------------
    def mark(self) -> Dict[str, int]:
        """Position marker for a later :meth:`collect` (worker-side batching)."""
        with self._lock:
            return {
                "spans": len(self.spans),
                "events": len(self.events),
                "metrics": self.metrics.snapshot_full(),  # type: ignore[dict-item]
            }

    def collect(self, mark: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """JSON-safe batch of everything recorded since ``mark`` (or ever)."""
        with self._lock:
            span_base = mark["spans"] if mark else 0
            event_base = mark["events"] if mark else 0
            metrics_now = self.metrics.snapshot_full()
            if mark:
                metrics = MetricsRegistry.delta(mark["metrics"], metrics_now)
            else:
                metrics = metrics_now
            return {
                "run_id": self.run_id,
                "spans": list(self.spans[span_base:]),
                "events": list(self.events[event_base:]),
                "metrics": metrics,
            }

    def absorb(self, batch: Optional[Dict[str, Any]]) -> None:
        """Merge a :meth:`collect` batch (e.g. streamed from a worker)."""
        if not batch:
            return
        with self._lock:
            self.spans.extend(batch.get("spans", ()))
            self.events.extend(batch.get("events", ()))
            self.metrics.merge(batch.get("metrics", {}))


# ----------------------------------------------------------------------
# Process-global active recorder
# ----------------------------------------------------------------------
_ACTIVE: Any = NullRecorder()


def get_recorder() -> Any:
    """The process-wide active recorder (a ``NullRecorder`` by default)."""
    return _ACTIVE


def set_recorder(recorder: Any) -> Any:
    """Install ``recorder`` as the active one; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder if recorder is not None else NullRecorder()
    return previous


@contextmanager
def use_recorder(recorder: Any) -> Iterator[Any]:
    """Scoped :func:`set_recorder` that restores the previous on exit."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


def environment_meta() -> Dict[str, Any]:
    """Process-level context stamped onto bench records and trace files."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
    }
