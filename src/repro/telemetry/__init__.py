"""Unified telemetry: spans, metrics, event log and exporters.

Usage sketch::

    from repro.telemetry import Recorder, use_recorder, get_recorder

    recorder = Recorder(run_id="demo")
    with use_recorder(recorder):
        with get_recorder().span("stage.encode", circuit="s13207"):
            ...
    print(summary_table(recorder))

With no recorder installed, ``get_recorder()`` returns a ``NullRecorder``
whose every method is an allocation-free no-op, so instrumented code costs
nothing measurable when telemetry is off (the ``telemetry-overhead`` bench
kernel enforces this).
"""

from .events import read_event_log, recorder_event_lines, write_event_log
from .export import (
    chrome_trace,
    persist_recorder,
    span_rollup,
    summary_table,
    write_chrome_trace,
)
from .metrics import Histogram, MetricsRegistry
from .recorder import (
    NullRecorder,
    Recorder,
    Span,
    environment_meta,
    get_recorder,
    set_recorder,
    use_recorder,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "Recorder",
    "Span",
    "chrome_trace",
    "environment_meta",
    "get_recorder",
    "persist_recorder",
    "read_event_log",
    "recorder_event_lines",
    "set_recorder",
    "span_rollup",
    "summary_table",
    "use_recorder",
    "write_chrome_trace",
    "write_event_log",
]
