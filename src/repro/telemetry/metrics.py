"""Counters, gauges and log-scale histograms behind one registry.

The :class:`MetricsRegistry` is the single store every instrumented layer
writes into: the context caches (through the :class:`~repro.context.ContextStats`
compatibility façade), the pipeline stages, PODEM, the fault simulator, the
GF(2) solver and the campaign runner.  Three metric kinds cover them all:

* **counters** -- monotonically accumulated numbers.  Values are plain
  Python numbers, so counters double as wall-time accumulators (the
  convention throughout the package: a counter whose name ends in ``_s``
  is a seconds total, everything else is a count);
* **gauges** -- last-write-wins observations (worker-pool size, queue
  depth);
* **histograms** -- value distributions over **fixed log-scale buckets**
  (powers of two), so a D-frontier size or an undo-log depth is recorded
  in O(1) with a handful of integers and histograms from different
  processes merge bucket-wise without rebinning.

Everything serialises to plain dicts (:meth:`MetricsRegistry.snapshot_full`
/ :meth:`MetricsRegistry.merge`) so per-job metric deltas can ride the
campaign runner's existing result queue from worker to parent.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

__all__ = ["Histogram", "MetricsRegistry"]

#: Default bucket exponent range: 2^-20 (~1e-6, microsecond-scale walls)
#: up to 2^30 (~1e9).  Values outside clamp into the edge buckets.
_MIN_EXP = -20
_MAX_EXP = 30


def _bucket_exponent(value: float) -> int:
    """The log2 bucket of ``value``: smallest ``e`` with ``value <= 2**e``.

    Non-positive values land in the lowest bucket (they carry no magnitude
    information; the histogram still counts them and tracks them in
    ``min``).
    """
    if value <= 0:
        return _MIN_EXP
    mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exponent
    # frexp keeps 0.5 <= mantissa < 1, so value <= 2**exponent with equality
    # exactly at powers of two -- those stay in their own bucket.
    if mantissa == 0.5:
        exponent -= 1
    return min(max(exponent, _MIN_EXP), _MAX_EXP)


class Histogram:
    """A fixed log2-bucket histogram with count/sum/min/max.

    Bucket ``e`` counts observations in ``(2**(e-1), 2**e]`` (non-positive
    observations fall into the lowest bucket).  Buckets are stored sparsely
    as ``{exponent: count}``, so an unused histogram costs a few dict slots
    and merging two histograms is a per-key addition -- no rebinning, no
    bucket-boundary configuration to keep in sync across processes.
    """

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self):
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        exponent = _bucket_exponent(value)
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket upper bounds (log-scale)."""
        if not self.count:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        seen = 0
        for exponent in sorted(self.buckets):
            seen += self.buckets[exponent]
            if seen >= target:
                return float(2**exponent)
        return float(self.max if self.max is not None else 0.0)

    def to_dict(self) -> Dict[str, object]:
        return {
            "buckets": {str(e): c for e, c in sorted(self.buckets.items())},
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Histogram":
        histogram = cls()
        histogram.buckets = {
            int(e): int(c) for e, c in dict(data.get("buckets", {})).items()
        }
        histogram.count = int(data.get("count", 0))
        histogram.total = float(data.get("sum", 0.0))
        histogram.min = data.get("min")
        histogram.max = data.get("max")
        return histogram

    def merge(self, data: Dict[str, object]) -> None:
        """Fold another histogram's :meth:`to_dict` form into this one."""
        for exponent, count in dict(data.get("buckets", {})).items():
            exponent = int(exponent)
            self.buckets[exponent] = self.buckets.get(exponent, 0) + int(count)
        self.count += int(data.get("count", 0))
        self.total += float(data.get("sum", 0.0))
        other_min = data.get("min")
        if other_min is not None and (self.min is None or other_min < self.min):
            self.min = other_min
        other_max = data.get("max")
        if other_max is not None and (self.max is None or other_max > self.max):
            self.max = other_max

    @staticmethod
    def diff(
        before: Dict[str, object], after: Dict[str, object]
    ) -> Dict[str, object]:
        """What was observed between two :meth:`to_dict` snapshots.

        Bucket counts and count/sum subtract exactly; min/max cannot be
        un-merged, so the *after* values are kept (a superset -- harmless
        for the aggregate views they feed).
        """
        before_buckets = {
            int(e): int(c) for e, c in dict(before.get("buckets", {})).items()
        }
        buckets = {}
        for exponent, count in dict(after.get("buckets", {})).items():
            delta = int(count) - before_buckets.get(int(exponent), 0)
            if delta:
                buckets[str(exponent)] = delta
        return {
            "buckets": buckets,
            "count": int(after.get("count", 0)) - int(before.get("count", 0)),
            "sum": float(after.get("sum", 0.0)) - float(before.get("sum", 0.0)),
            "min": after.get("min"),
            "max": after.get("max"),
        }


class MetricsRegistry:
    """Named counters, gauges and histograms with snapshot/merge support."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self):
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, delta: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + delta

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def counters(self) -> Dict[str, float]:
        """Live view of the counter map (treat as read-only)."""
        return self._counters

    @property
    def gauges(self) -> Dict[str, float]:
        return self._gauges

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return self._histograms

    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0)

    def snapshot_counters(self) -> Dict[str, float]:
        """Flat copy of every counter (the ContextStats snapshot form)."""
        return dict(self._counters)

    def snapshot_full(self) -> Dict[str, object]:
        """JSON-safe copy of the whole registry (counters/gauges/histograms)."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in self._histograms.items()
            },
        }

    @staticmethod
    def delta(
        before: Dict[str, object], after: Dict[str, object]
    ) -> Dict[str, object]:
        """What happened between two :meth:`snapshot_full` calls."""
        counters: Dict[str, float] = {}
        for name, value in after.get("counters", {}).items():
            diff = value - before.get("counters", {}).get(name, 0)
            if diff:
                counters[name] = diff
        histograms: Dict[str, object] = {}
        before_histograms = before.get("histograms", {})
        for name, data in after.get("histograms", {}).items():
            diff = Histogram.diff(before_histograms.get(name, {}), data)
            if diff["count"]:
                histograms[name] = diff
        return {
            "counters": counters,
            "gauges": dict(after.get("gauges", {})),
            "histograms": histograms,
        }

    def merge(self, payload: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot_full` / :meth:`delta` payload into this registry.

        Counters and histogram buckets add; gauges take the payload's value
        (last write wins).  This is how per-job metric deltas streamed from
        campaign workers accumulate in the parent's recorder.
        """
        for name, value in payload.get("counters", {}).items():
            self.inc(name, value)
        for name, value in payload.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, data in payload.get("histograms", {}).items():
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.merge(data)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def hit_rates(self, suffix_hits: str = "_hits", suffix_misses: str = "_misses"
                  ) -> Dict[str, Tuple[float, float, float]]:
        """``{kind: (hits, total, rate)}`` for every ``*_hits``/``*_misses`` pair."""
        kinds: List[str] = sorted(
            {
                name[: -len(suffix_hits)]
                for name in self._counters
                if name.endswith(suffix_hits)
            }
            | {
                name[: -len(suffix_misses)]
                for name in self._counters
                if name.endswith(suffix_misses)
            }
        )
        rates: Dict[str, Tuple[float, float, float]] = {}
        for kind in kinds:
            hits = self._counters.get(f"{kind}{suffix_hits}", 0)
            total = hits + self._counters.get(f"{kind}{suffix_misses}", 0)
            if total:
                rates[kind] = (hits, total, hits / total)
        return rates
