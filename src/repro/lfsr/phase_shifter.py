"""Phase shifters.

With ``m`` scan chains fed from an ``n``-bit LFSR (usually ``m > n``), driving
the chains straight from LFSR cells would make adjacent chains receive the
same bit stream shifted by one cycle, creating heavy structural correlation
and linear dependencies that hurt the encoding.  The classical fix -- used by
essentially every LFSR-reseeding scheme, including the paper's Fig. 1 -- is a
*phase shifter*: a small XOR network in which every scan-chain input is the
XOR of a few LFSR cells.

Formally the phase shifter is an ``m x n`` GF(2) matrix ``P``; at LFSR cycle
``t`` the scan-chain inputs are ``P @ A^t @ seed``, which is exactly the form
the encoding equations need.

The constructor here follows standard practice: every output XORs a fixed
number of distinct cells (3 by default), all tap sets are distinct, and -- as
far as ``m`` and ``n`` allow -- the first ``min(m, n)`` rows are linearly
independent so that single-vector systems of up to ``n`` specified bits remain
solvable with high probability.
"""

from __future__ import annotations

import random
from typing import List

from repro.gf2.bitvec import BitVector
from repro.gf2.matrix import GF2Matrix
from repro.lfsr.state_skip import XOR2_GE


class PhaseShifter:
    """A linear expansion network from LFSR cells to scan-chain inputs."""

    def __init__(self, matrix: GF2Matrix):
        if matrix.nrows == 0:
            raise ValueError("phase shifter needs at least one output")
        for i in range(matrix.nrows):
            if matrix.row(i).is_zero():
                raise ValueError(f"phase shifter output {i} is constant zero")
        self._matrix = matrix

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, size: int) -> "PhaseShifter":
        """Directly wire cell ``i`` to output ``i`` (no XOR network).

        Only valid when the number of scan chains equals the LFSR size; mostly
        useful in unit tests and tiny examples.
        """
        from repro.gf2.matrix import identity as gf2_identity

        return cls(gf2_identity(size))

    @classmethod
    def construct(
        cls,
        num_outputs: int,
        lfsr_size: int,
        taps_per_output: int = 3,
        seed: int = 2008,
        max_attempts: int = 200,
    ) -> "PhaseShifter":
        """Build a phase shifter with ``taps_per_output`` XOR taps per channel.

        The construction draws random distinct tap sets and retries until all
        rows are distinct and the row space has the maximum achievable rank
        (``min(num_outputs, lfsr_size)``).  The default RNG seed makes the
        construction reproducible, which the experiments rely on.
        """
        if num_outputs < 1:
            raise ValueError("num_outputs must be at least 1")
        if lfsr_size < 2:
            raise ValueError("lfsr_size must be at least 2")
        taps = min(taps_per_output, lfsr_size)
        if taps < 1:
            raise ValueError("taps_per_output must be at least 1")
        rng = random.Random(seed)
        target_rank = min(num_outputs, lfsr_size)
        for _ in range(max_attempts):
            rows: List[int] = []
            seen = set()
            for _ in range(num_outputs):
                row = cls._draw_row(rng, lfsr_size, taps, seen)
                seen.add(row)
                rows.append(row)
            matrix = GF2Matrix(num_outputs, lfsr_size, rows)
            if matrix.rank() == target_rank:
                return cls(matrix)
        raise RuntimeError(
            "failed to construct a full-rank phase shifter; "
            "increase max_attempts or taps_per_output"
        )

    @staticmethod
    def _draw_row(rng: random.Random, lfsr_size: int, taps: int, seen) -> int:
        """Draw a tap set not used before (falls back to reuse when exhausted)."""
        for _ in range(64):
            cells = rng.sample(range(lfsr_size), taps)
            row = 0
            for c in cells:
                row |= 1 << c
            if row not in seen:
                return row
        # Tap-set space exhausted (tiny LFSRs): allow a duplicate.
        cells = rng.sample(range(lfsr_size), taps)
        row = 0
        for c in cells:
            row |= 1 << c
        return row

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def matrix(self) -> GF2Matrix:
        """The ``m x n`` phase-shifter matrix ``P``."""
        return self._matrix

    @property
    def num_outputs(self) -> int:
        """Number of scan-chain channels driven."""
        return self._matrix.nrows

    @property
    def lfsr_size(self) -> int:
        return self._matrix.ncols

    def output_taps(self, output: int) -> List[int]:
        """LFSR cells XOR-ed onto the given output."""
        return self._matrix.row(output).support()

    # ------------------------------------------------------------------
    # Operation
    # ------------------------------------------------------------------
    def apply(self, state: BitVector) -> BitVector:
        """Channel values for a given LFSR state."""
        return self._matrix.mul_vector(state)

    def output_rows(self, symbolic_state: GF2Matrix) -> GF2Matrix:
        """Rows ``P @ A^t`` for a symbolic LFSR state ``A^t``.

        Row ``j`` of the result expresses channel ``j`` at that cycle as a
        linear function of the seed variables -- the raw material of the
        encoding equations.
        """
        return self._matrix @ symbolic_state

    # ------------------------------------------------------------------
    # Hardware cost
    # ------------------------------------------------------------------
    def xor_gate_count(self) -> int:
        """Two-input XOR gates needed by the network (w-1 per output of weight w)."""
        total = 0
        for i in range(self._matrix.nrows):
            weight = self._matrix.row(i).weight()
            if weight >= 2:
                total += weight - 1
        return total

    def gate_equivalents(self, xor_ge: float = XOR2_GE) -> float:
        """Gate-equivalent cost of the XOR network."""
        return self.xor_gate_count() * xor_ge

    def __repr__(self) -> str:
        return (
            f"PhaseShifter(outputs={self.num_outputs}, "
            f"lfsr_size={self.lfsr_size})"
        )
