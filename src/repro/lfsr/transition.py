"""LFSR transition matrices and symbolic simulation.

An LFSR with cells ``c0 .. c(n-1)`` is a linear finite-state machine: the next
state is ``A @ state`` for a fixed GF(2) matrix ``A`` determined by the LFSR
structure (Fibonacci or Galois) and its characteristic polynomial.  The linear
expressions ``F_0^k .. F_{n-1}^k`` of the paper (equation (1)) are simply the
rows of ``A^k``: integrating them as a second feedback network is what turns a
normal LFSR into a State Skip LFSR.

Conventions used throughout the library
---------------------------------------
* Cell ``c0`` is the cell whose output feeds the phase shifter first (and, in
  a plain single-output LFSR, the serial output).
* For the **Fibonacci** (external-XOR) form with characteristic polynomial
  ``p(x) = x^n + sum_{t in taps} x^t + 1`` the register shifts from high index
  to low index: ``c_i(t+1) = c_{i+1}(t)`` for ``i < n-1`` and the new value of
  ``c_{n-1}`` is the XOR of the tap cells.
* For the **Galois** (internal-XOR) form the output of ``c_{n-1}`` wraps to
  ``c_0`` and is XOR-ed into the cells selected by the polynomial taps.

The exact structure matters only for hardware-cost book-keeping and for
matching the paper's Fig. 2 example; every algorithm in the library works on
the transition matrix alone.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.gf2.bitvec import BitVector
from repro.gf2.matrix import GF2Matrix, identity
from repro.gf2.polynomial import GF2Polynomial
from repro.lru import LRUCache


class TransitionPowerCache:
    """Memoized powers ``A^k`` of one transition matrix.

    Square-and-multiply on a shared ladder of ``A^(2^i)`` squares: the
    ladder is extended once and reused by every exponent, and fully
    assembled powers are memoized as well.  The equation-system and
    State Skip layers ask for many related exponents of the same matrix
    (``A^r``, ``A^(v*r)``, ``A^k`` for every sweep speedup ``k``), which
    makes both layers of reuse pay off.
    """

    #: Fully assembled powers memoized per matrix; bounded LRU-style so a
    #: long-lived process querying many distinct exponents (e.g. decompressor
    #: replays over many jump distances) cannot grow memory monotonically.
    #: The square ladder itself is only O(log max_exponent) and is kept.
    _MAX_MEMOIZED_POWERS = 512

    def __init__(self, matrix: GF2Matrix):
        if matrix.nrows != matrix.ncols:
            raise ValueError("matrix powers require a square matrix")
        self._matrix = matrix
        self._squares: List[GF2Matrix] = [matrix]
        self._powers: "OrderedDict[int, GF2Matrix]" = OrderedDict([(1, matrix)])

    @property
    def matrix(self) -> GF2Matrix:
        return self._matrix

    def power(self, exponent: int) -> GF2Matrix:
        """``A^exponent`` (non-negative), memoized."""
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        if exponent == 0:
            # Not served from the LRU dict: the square-and-multiply loop
            # below would produce None for an evicted 0-entry.
            return identity(self._matrix.ncols)
        cached = self._powers.get(exponent)
        if cached is not None:
            self._powers.move_to_end(exponent)
            return cached
        while (1 << len(self._squares)) <= exponent:
            last = self._squares[-1]
            self._squares.append(last @ last)
        result = None
        e = exponent
        index = 0
        while e:
            if e & 1:
                square = self._squares[index]
                result = square if result is None else result @ square
            e >>= 1
            index += 1
        self._powers[exponent] = result
        while len(self._powers) > self._MAX_MEMOIZED_POWERS:
            self._powers.popitem(last=False)
        return result


#: Process-wide power caches, keyed by matrix, bounded LRU-style.  The flows
#: touch a handful of distinct transition matrices (one per LFSR size in a
#: campaign), so a small bound keeps memory flat without losing reuse.
_POWER_CACHE_LIMIT = 16
_POWER_CACHES: LRUCache = LRUCache(_POWER_CACHE_LIMIT)


def power_cache(matrix: GF2Matrix) -> TransitionPowerCache:
    """The shared :class:`TransitionPowerCache` of ``matrix``."""
    cache = _POWER_CACHES.get(matrix)
    if cache is None:
        cache = TransitionPowerCache(matrix)
        _POWER_CACHES.put(matrix, cache)
    return cache


def transition_power(matrix: GF2Matrix, exponent: int) -> GF2Matrix:
    """``matrix ** exponent`` through the shared power cache."""
    return power_cache(matrix).power(exponent)


def _validate_polynomial(poly: GF2Polynomial) -> int:
    degree = poly.degree
    if degree < 2:
        raise ValueError("characteristic polynomial must have degree >= 2")
    if poly.coefficient(0) != 1:
        raise ValueError(
            "characteristic polynomial must have a non-zero constant term "
            "(otherwise the LFSR is singular)"
        )
    return degree


def fibonacci_transition_matrix(poly: GF2Polynomial) -> GF2Matrix:
    """Transition matrix of the Fibonacci (external-XOR) LFSR for ``poly``.

    ``c_i(t+1) = c_{i+1}(t)`` for ``i < n-1``;
    ``c_{n-1}(t+1) = XOR of c_t for every tap t of the polynomial`` (the
    constant term contributes cell ``c_0``; the ``x^n`` term is the register
    output itself and does not appear as a tap).
    """
    n = _validate_polynomial(poly)
    rows = []
    for i in range(n - 1):
        rows.append(1 << (i + 1))
    feedback = 0
    for exponent in poly.exponents():
        if exponent == n:
            continue
        feedback |= 1 << exponent
    rows.append(feedback)
    return GF2Matrix(n, n, rows)


def galois_transition_matrix(poly: GF2Polynomial) -> GF2Matrix:
    """Transition matrix of the Galois (internal-XOR) LFSR for ``poly``.

    The register shifts ``c_i(t+1) = c_{i-1}(t)`` with the output of the last
    cell wrapping around to ``c_0``; that same output is XOR-ed into cell
    ``c_i`` for every non-zero tap ``x^i`` of the polynomial (``0 < i < n``).
    """
    n = _validate_polynomial(poly)
    last = n - 1
    rows = []
    for i in range(n):
        if i == 0:
            row = 1 << last
        else:
            row = 1 << (i - 1)
            if poly.coefficient(i):
                row |= 1 << last
        rows.append(row)
    return GF2Matrix(n, n, rows)


def paper_example_matrix() -> GF2Matrix:
    """The 4-bit LFSR of Fig. 2 of the paper.

    The symbolic state table of the figure corresponds to the transition

    ====  ==========================
    cell  next value
    ====  ==========================
    c0    c3
    c1    c0 XOR c3
    c2    c1
    c3    c2 XOR c3
    ====  ==========================
    """
    return GF2Matrix.from_rows(
        [
            [0, 0, 0, 1],  # c0' = c3
            [1, 0, 0, 1],  # c1' = c0 + c3
            [0, 1, 0, 0],  # c2' = c1
            [0, 0, 1, 1],  # c3' = c2 + c3
        ]
    )


def symbolic_states(transition: GF2Matrix, cycles: int) -> List[GF2Matrix]:
    """Symbolic LFSR contents for cycles ``t0 .. t_cycles``.

    Entry ``t`` is the matrix whose row ``i`` gives cell ``c_i`` at cycle
    ``t`` as a linear expression of the initial contents ``a0 .. a(n-1)``
    (exactly the table in Fig. 2 of the paper).  Entry 0 is the identity.
    """
    if transition.nrows != transition.ncols:
        raise ValueError("transition matrix must be square")
    if cycles < 0:
        raise ValueError("cycles must be non-negative")
    states = [identity(transition.ncols)]
    for _ in range(cycles):
        states.append(transition @ states[-1])
    return states


def state_skip_expressions(transition: GF2Matrix, k: int) -> GF2Matrix:
    """The linear expressions ``F_0^k .. F_{n-1}^k`` of equation (1).

    Row ``i`` of the returned matrix gives ``c_i(t_{j+k})`` as a function of
    ``(c_0(t_j) .. c_{n-1}(t_j))`` for *any* cycle ``t_j`` -- this is the
    combinational function the State Skip circuit implements.
    """
    if k < 1:
        raise ValueError("speedup factor k must be at least 1")
    if transition.nrows != transition.ncols:
        raise ValueError("transition matrix must be square")
    return transition_power(transition, k)


def output_sequence(
    transition: GF2Matrix, initial_state: BitVector, cycles: int, cell: int = 0
) -> List[int]:
    """Logic values of one LFSR cell over a number of cycles (cycle 0 first)."""
    if initial_state.length != transition.ncols:
        raise ValueError("initial state length does not match the LFSR size")
    if not 0 <= cell < transition.ncols:
        raise IndexError(f"cell {cell} out of range")
    state = initial_state
    out = []
    for _ in range(cycles):
        out.append(state[cell])
        state = transition.mul_vector(state)
    return out


def characteristic_order(transition: GF2Matrix, limit: int = 1 << 20) -> int:
    """Multiplicative order of the transition matrix (state-sequence period).

    Walks powers of the matrix applied to a unit vector until the identity
    recurs; raises :class:`ValueError` when the order exceeds ``limit`` (which
    protects against accidentally walking a 2^80 state space).
    """
    n = transition.ncols
    state = identity(n)
    for step in range(1, limit + 1):
        state = state @ transition
        if state == identity(n):
            return step
    raise ValueError(f"order exceeds limit {limit}")


def expand_states(
    transition: GF2Matrix, seed: BitVector, count: int
) -> List[BitVector]:
    """The state sequence ``seed, A seed, A^2 seed, ...`` (``count`` entries)."""
    if seed.length != transition.ncols:
        raise ValueError("seed length does not match the LFSR size")
    states = []
    state = seed
    for _ in range(count):
        states.append(state)
        state = transition.mul_vector(state)
    return states
