"""Linear feedback shift registers as linear finite-state machines.

The :class:`LFSR` class keeps the machinery deliberately general: any square
GF(2) transition matrix defines a valid linear FSM, and the reseeding
algorithms never look inside the matrix.  Convenience constructors build the
two standard hardware structures (Fibonacci / Galois) from a characteristic
polynomial, or the standard structure for a given size using the library's
default primitive polynomial table.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Optional

from repro.gf2.bitvec import BitVector
from repro.gf2.matrix import GF2Matrix
from repro.gf2.polynomial import GF2Polynomial
from repro.gf2.primitive import default_feedback_polynomial
from repro.lfsr.transition import (
    fibonacci_transition_matrix,
    galois_transition_matrix,
    transition_power,
)


class LFSRMode(Enum):
    """Operating mode of a (State Skip) LFSR."""

    NORMAL = "normal"
    STATE_SKIP = "state_skip"


@dataclass(frozen=True)
class LFSRStructure:
    """Describes how an LFSR was constructed (for hardware book-keeping)."""

    style: str  # "fibonacci", "galois" or "custom"
    polynomial: Optional[GF2Polynomial]


class LFSR:
    """A linear finite-state machine over GF(2).

    Parameters
    ----------
    transition:
        Square transition matrix ``A``; the next state is ``A @ state``.
    initial_state:
        Optional initial contents; defaults to the all-zero state (callers are
        expected to load a seed before generating useful data).
    structure:
        Optional construction metadata used by the hardware cost model.
    """

    def __init__(
        self,
        transition: GF2Matrix,
        initial_state: Optional[BitVector] = None,
        structure: Optional[LFSRStructure] = None,
    ):
        if transition.nrows != transition.ncols:
            raise ValueError("LFSR transition matrix must be square")
        if transition.ncols < 2:
            raise ValueError("LFSR must have at least 2 cells")
        self._transition = transition
        self._size = transition.ncols
        if initial_state is None:
            initial_state = BitVector(self._size)
        if initial_state.length != self._size:
            raise ValueError("initial state length does not match LFSR size")
        self._state = initial_state
        self._structure = structure or LFSRStructure("custom", None)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def fibonacci(
        cls, polynomial: GF2Polynomial, initial_state: Optional[BitVector] = None
    ) -> "LFSR":
        """External-XOR LFSR for the given characteristic polynomial."""
        return cls(
            fibonacci_transition_matrix(polynomial),
            initial_state,
            LFSRStructure("fibonacci", polynomial),
        )

    @classmethod
    def galois(
        cls, polynomial: GF2Polynomial, initial_state: Optional[BitVector] = None
    ) -> "LFSR":
        """Internal-XOR LFSR for the given characteristic polynomial."""
        return cls(
            galois_transition_matrix(polynomial),
            initial_state,
            LFSRStructure("galois", polynomial),
        )

    @classmethod
    def of_size(cls, size: int, style: str = "fibonacci") -> "LFSR":
        """An LFSR of the given size using the default feedback polynomial."""
        poly = default_feedback_polynomial(size)
        if style == "fibonacci":
            return cls.fibonacci(poly)
        if style == "galois":
            return cls.galois(poly)
        raise ValueError(f"unknown LFSR style {style!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of LFSR cells."""
        return self._size

    @property
    def transition(self) -> GF2Matrix:
        """The transition matrix ``A``."""
        return self._transition

    @property
    def state(self) -> BitVector:
        """Current register contents."""
        return self._state

    @property
    def structure(self) -> LFSRStructure:
        return self._structure

    @property
    def polynomial(self) -> Optional[GF2Polynomial]:
        """The characteristic polynomial when known (Fibonacci/Galois forms)."""
        return self._structure.polynomial

    def copy(self) -> "LFSR":
        """An independent copy sharing the (immutable) transition matrix."""
        return LFSR(self._transition, self._state, self._structure)

    # ------------------------------------------------------------------
    # Operation
    # ------------------------------------------------------------------
    def load(self, seed: BitVector) -> None:
        """Load a seed (parallel load of all cells)."""
        if seed.length != self._size:
            raise ValueError(
                f"seed length {seed.length} does not match LFSR size {self._size}"
            )
        self._state = seed

    def step(self, cycles: int = 1) -> BitVector:
        """Advance the register ``cycles`` clock cycles; return the new state."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        state = self._state
        for _ in range(cycles):
            state = self._transition.mul_vector(state)
        self._state = state
        return state

    def jump(self, cycles: int) -> BitVector:
        """Advance by ``cycles`` using matrix exponentiation (O(log cycles))."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self._state = transition_power(self._transition, cycles).mul_vector(
            self._state
        )
        return self._state

    def states(self, count: int) -> Iterator[BitVector]:
        """Yield the next ``count`` states, starting with the current one.

        The register is left pointing at the state *after* the last yielded
        one, matching the behaviour of free-running hardware.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        for _ in range(count):
            yield self._state
            self._state = self._transition.mul_vector(self._state)

    def run(self, count: int) -> List[BitVector]:
        """Collect the next ``count`` states into a list (see :meth:`states`)."""
        return list(self.states(count))

    def serial_output(self, cycles: int, cell: int = 0) -> List[int]:
        """Logic values of one cell over the next ``cycles`` clock cycles."""
        if not 0 <= cell < self._size:
            raise IndexError(f"cell {cell} out of range")
        return [state[cell] for state in self.states(cycles)]

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def period(self, limit: int = 1 << 20) -> int:
        """Period of the state sequence from the current (non-zero) state."""
        if self._state.is_zero():
            raise ValueError("the all-zero state has period 1 and is never used")
        start = self._state
        state = self._transition.mul_vector(start)
        steps = 1
        while state != start:
            state = self._transition.mul_vector(state)
            steps += 1
            if steps > limit:
                raise ValueError(f"period exceeds limit {limit}")
        return steps

    def is_maximal_length(self, limit: int = 1 << 20) -> bool:
        """True when the period from a non-zero state is ``2^n - 1``."""
        probe = LFSR(self._transition, BitVector.unit(self._size, 0), self._structure)
        return probe.period(limit=limit) == (1 << self._size) - 1

    def __repr__(self) -> str:
        return (
            f"LFSR(size={self._size}, style={self._structure.style!r}, "
            f"state={self._state.to_string()})"
        )
