"""LFSR machinery: normal LFSRs, State Skip LFSRs and phase shifters.

The paper's contribution lives in this package:

* :class:`~repro.lfsr.lfsr.LFSR` -- a linear finite-state machine defined by
  an arbitrary GF(2) transition matrix, with Fibonacci (external-XOR) and
  Galois (internal-XOR) constructors and symbolic simulation.
* :class:`~repro.lfsr.state_skip.StateSkipLFSR` -- an LFSR augmented with the
  State Skip circuit implementing ``A^k``; it can advance either one state per
  clock (Normal mode) or ``k`` states per clock (State Skip mode).
* :class:`~repro.lfsr.phase_shifter.PhaseShifter` -- the linear network that
  spreads the LFSR cells onto the ``m`` scan-chain inputs while breaking the
  structural correlation of adjacent channels.
* :mod:`~repro.lfsr.transition` -- transition-matrix constructors, including
  the exact 4-bit example of Fig. 2 of the paper.
"""

from repro.lfsr.lfsr import LFSR, LFSRMode
from repro.lfsr.phase_shifter import PhaseShifter
from repro.lfsr.state_skip import StateSkipCircuit, StateSkipLFSR
from repro.lfsr.transition import (
    TransitionPowerCache,
    fibonacci_transition_matrix,
    galois_transition_matrix,
    paper_example_matrix,
    power_cache,
    state_skip_expressions,
    symbolic_states,
    transition_power,
)

__all__ = [
    "LFSR",
    "LFSRMode",
    "PhaseShifter",
    "StateSkipCircuit",
    "StateSkipLFSR",
    "TransitionPowerCache",
    "fibonacci_transition_matrix",
    "galois_transition_matrix",
    "paper_example_matrix",
    "power_cache",
    "state_skip_expressions",
    "symbolic_states",
    "transition_power",
]
