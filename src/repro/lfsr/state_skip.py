"""State Skip LFSRs (Section 3.1 of the paper).

A State Skip LFSR is a normal LFSR plus a *State Skip circuit*: a purely
combinational network computing the linear expressions ``F_0^k .. F_{n-1}^k``
of equation (1), i.e. the rows of ``A^k`` where ``A`` is the LFSR transition
matrix.  A 2:1 multiplexer in front of every cell selects which network drives
the cell's next value:

* **Normal mode** -- the characteristic-polynomial feedback (``A``), one state
  per clock.
* **State Skip mode** -- the State Skip circuit (``A^k``), ``k`` states per
  clock, skipping the ``k-1`` intermediate states.

The hardware overhead of the circuit is one XOR tree per cell whose fan-in is
the weight of the corresponding ``A^k`` row, plus the ``n`` multiplexers.  The
gate-equivalent accounting mirrors the numbers reported in Section 4 of the
paper (e.g. 52 GE for s13207's 24-bit LFSR at k = 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.gf2.bitvec import BitVector
from repro.gf2.matrix import GF2Matrix
from repro.lfsr.lfsr import LFSR, LFSRMode
from repro.lfsr.transition import state_skip_expressions

#: Default standard-cell costs in gate equivalents (1 GE = one 2-input NAND).
XOR2_GE = 2.0
MUX2_GE = 2.5
DFF_GE = 5.0


@dataclass(frozen=True)
class StateSkipCost:
    """Gate-level cost breakdown of a State Skip circuit."""

    xor_gates: int
    mux_gates: int
    gate_equivalents: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.xor_gates} XOR2 + {self.mux_gates} MUX2 "
            f"= {self.gate_equivalents:.1f} GE"
        )


class StateSkipCircuit:
    """The combinational network implementing ``A^k``.

    The circuit is characterised entirely by the skip matrix; this class adds
    the hardware book-keeping (XOR-tree sizes, gate equivalents) and the
    single-cycle evaluation used by :class:`StateSkipLFSR`.
    """

    def __init__(self, transition: GF2Matrix, k: int):
        if k < 2:
            raise ValueError(
                "a State Skip circuit needs k >= 2 (k = 1 is the normal feedback)"
            )
        self._k = k
        self._matrix = state_skip_expressions(transition, k)

    @property
    def k(self) -> int:
        """Speedup factor (number of states advanced per clock)."""
        return self._k

    @property
    def matrix(self) -> GF2Matrix:
        """The skip matrix ``A^k``."""
        return self._matrix

    @property
    def size(self) -> int:
        return self._matrix.ncols

    def evaluate(self, state: BitVector) -> BitVector:
        """The state ``k`` cycles after ``state``."""
        return self._matrix.mul_vector(state)

    def xor_gate_count(self) -> int:
        """Number of 2-input XOR gates in the per-cell XOR trees.

        A row of weight ``w`` needs ``w - 1`` two-input XORs (``w = 0`` or 1
        needs none: the cell is driven by constant 0 or a direct wire).
        """
        total = 0
        for i in range(self._matrix.nrows):
            weight = self._matrix.row(i).weight()
            if weight >= 2:
                total += weight - 1
        return total

    def cost(
        self, xor_ge: float = XOR2_GE, mux_ge: float = MUX2_GE
    ) -> StateSkipCost:
        """Gate-equivalent cost of the State Skip circuit plus its muxes."""
        xor_gates = self.xor_gate_count()
        mux_gates = self.size
        return StateSkipCost(
            xor_gates=xor_gates,
            mux_gates=mux_gates,
            gate_equivalents=xor_gates * xor_ge + mux_gates * mux_ge,
        )

    def __repr__(self) -> str:
        return f"StateSkipCircuit(size={self.size}, k={self._k})"


class StateSkipLFSR:
    """An LFSR with selectable Normal / State Skip operation.

    Parameters
    ----------
    lfsr:
        The underlying LFSR (its transition matrix defines Normal mode).
    k:
        Speedup factor of the State Skip circuit.
    """

    def __init__(self, lfsr: LFSR, k: int):
        self._lfsr = lfsr
        self._circuit = StateSkipCircuit(lfsr.transition, k)
        self._mode = LFSRMode.NORMAL

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def of_size(cls, size: int, k: int, style: str = "fibonacci") -> "StateSkipLFSR":
        """Build from the default feedback polynomial for ``size``."""
        return cls(LFSR.of_size(size, style=style), k)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._lfsr.size

    @property
    def k(self) -> int:
        """Speedup factor of the integrated State Skip circuit."""
        return self._circuit.k

    @property
    def mode(self) -> LFSRMode:
        return self._mode

    @property
    def state(self) -> BitVector:
        return self._lfsr.state

    @property
    def lfsr(self) -> LFSR:
        """The underlying normal LFSR."""
        return self._lfsr

    @property
    def skip_circuit(self) -> StateSkipCircuit:
        return self._circuit

    @property
    def transition(self) -> GF2Matrix:
        return self._lfsr.transition

    # ------------------------------------------------------------------
    # Operation
    # ------------------------------------------------------------------
    def load(self, seed: BitVector) -> None:
        """Load a seed into the register."""
        self._lfsr.load(seed)

    def set_mode(self, mode: LFSRMode) -> None:
        """Drive the Normal / State Skip select signal."""
        if not isinstance(mode, LFSRMode):
            raise TypeError("mode must be an LFSRMode")
        self._mode = mode

    def step(self, cycles: int = 1) -> BitVector:
        """Advance ``cycles`` clock cycles in the current mode.

        In Normal mode every clock advances one state; in State Skip mode
        every clock advances ``k`` states.
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        state = self._lfsr.state
        if self._mode is LFSRMode.NORMAL:
            state = self._lfsr.step(cycles)
        else:
            for _ in range(cycles):
                state = self._circuit.evaluate(state)
            self._lfsr.load(state)
        return state

    def states_advanced_per_clock(self) -> int:
        """How many LFSR states one clock cycle advances in the current mode."""
        return 1 if self._mode is LFSRMode.NORMAL else self._circuit.k

    def run_normal(self, count: int) -> List[BitVector]:
        """Collect ``count`` states in Normal mode (starting from the current)."""
        self.set_mode(LFSRMode.NORMAL)
        return self._lfsr.run(count)

    def run_skip(self, count: int) -> List[BitVector]:
        """Collect ``count`` states in State Skip mode (every k-th state)."""
        self.set_mode(LFSRMode.STATE_SKIP)
        out = []
        for _ in range(count):
            out.append(self._lfsr.state)
            self.step()
        return out

    # ------------------------------------------------------------------
    # Verification and cost
    # ------------------------------------------------------------------
    def verify_skip_equivalence(self, seed: BitVector, jumps: int = 8) -> bool:
        """Check that ``jumps`` State Skip steps equal ``jumps * k`` normal steps.

        This is the functional-correctness property of the State Skip circuit
        (equation (1) of the paper holds for every ``i``), verified by direct
        simulation from the given seed.
        """
        normal = LFSR(self._lfsr.transition, seed)
        skip_state = seed
        for _ in range(jumps):
            skip_state = self._circuit.evaluate(skip_state)
        normal.step(jumps * self._circuit.k)
        return normal.state == skip_state

    def skip_cost(
        self, xor_ge: float = XOR2_GE, mux_ge: float = MUX2_GE
    ) -> StateSkipCost:
        """Gate-equivalent cost of the added State Skip hardware."""
        return self._circuit.cost(xor_ge=xor_ge, mux_ge=mux_ge)

    def __repr__(self) -> str:
        return (
            f"StateSkipLFSR(size={self.size}, k={self.k}, mode={self._mode.value})"
        )


def skip_cost_sweep(
    transition: GF2Matrix,
    k_values: List[int],
    xor_ge: float = XOR2_GE,
    mux_ge: float = MUX2_GE,
) -> List[StateSkipCost]:
    """Cost of the State Skip circuit for a sweep of speedup factors.

    Used by the hardware-overhead experiment of Section 4 (State Skip circuit
    GE as a function of ``k``).
    """
    costs = []
    for k in k_values:
        circuit = StateSkipCircuit(transition, k)
        costs.append(circuit.cost(xor_ge=xor_ge, mux_ge=mux_ge))
    return costs
