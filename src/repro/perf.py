"""Hot-kernel benchmarks and the regression harness behind ``repro bench``.

Seven kernels dominate campaign wall time and are measured here, plus one
overhead gate for the telemetry subsystem:

``encoding``
    The window-based solvability scan (batched GF(2) trials, residual
    caching) on calibrated profile test sets -- the optimized scan is timed
    against the in-repo reference scan (``batch_trials=False``) and the two
    results are checked for bit-identity on every run.

``faultsim``
    Parallel-pattern fault simulation (wide words, fanout-cone evaluation)
    on generated benchmark circuits -- timed against the in-repo reference
    simulator (``engine="packed"``, 64-bit words) and checked for identical
    detected-fault sets.

``faultsim-compiled``
    The codegen-compiled backend in isolation: full-block fault simulation
    through the per-netlist compiled evaluator (one local per net, fused
    word ops, inversion folded in; see
    :mod:`repro.circuits.backends.compiled`) against the full-pass packed
    engine at the *same* word width, so the ratio isolates exactly what
    compilation buys.  Detected-fault sets are checked for identity.

``atpg``
    PODEM test generation on the packed two-word ternary core (event-driven
    fanout-cone updates per decision node, batched drop simulation; see
    :mod:`repro.circuits.ternary`) -- timed against the dict-based
    reference engine (``engine="reference"``, per-pattern fills) and
    checked for bit-identical :class:`~repro.circuits.atpg.AtpgResult`\\ s
    (cubes, partitions, coverage).

``atpg-events``
    The incremental step in isolation: event-driven PODEM plus the batched
    fill block against the full-pass packed engine (``engine="packed"``,
    per-pattern fills) -- the PR 4 default, which re-evaluated the whole
    netlist once per decision node and fault-simulated one fill at a
    time.  Results are again checked for bit-identity.

``embedding``
    The warm-sweep embedding-map build: with the seed windows expanded
    once (the context-cached uint64-blocked form), an S-grid of
    :func:`~repro.skip.selection.build_embedding_map` calls (packed numpy
    containment) is timed against the pure-Python reference scan and
    checked for identical maps.

``context``
    Encode reuse through the shared :class:`~repro.context.CompressionContext`:
    a full (S, k) grid over one test set run with a warm shared context
    (substrate + seeds computed once, reused by every grid neighbour --
    exactly what the campaign runner does per job group) is timed against
    the per-job rebuild path (caching disabled, every point re-derives the
    substrate and re-encodes), and the resulting report summaries are
    checked for bit-identity.

``telemetry-overhead``
    The cost of the instrumented-but-disabled telemetry path: the warm
    (S, k) flow sweep and a full PODEM run are timed with the default
    :class:`~repro.telemetry.NullRecorder` installed (``wall_s`` -- what
    every untraced run pays) and with an enabled
    :class:`~repro.telemetry.Recorder` (``reference_wall_s`` -- the
    ``--trace`` cost).  ``detail.overhead_vs_pre_pr_pct`` compares the
    disabled wall against the wall recorded *before* the instrumentation
    landed (same machine, same configuration) -- the <2% budget the
    telemetry PR committed to; CI gates ``wall_s`` against the committed
    baseline.  Outputs of the disabled and enabled runs are checked for
    bit-identity like every other kernel.

Each kernel emits a ``BENCH_<kernel>.json`` report (wall time, throughput
and speedup per case, plus a ``meta`` block with the interpreter/numpy
versions, cpu count and the wall/cpu time of the whole bench run).  Reports can be compared against a committed
baseline directory (the CI smoke job fails on a >2x regression) and can be
appended to a campaign :class:`~repro.campaign.store.ResultStore`, reusing
its ``elapsed_s`` accounting so bench runs sit next to campaign results.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.circuits.fault_sim import FaultSimulator
from repro.circuits.generator import random_netlist
from repro.config import CompressionConfig
from repro.context import CompressionContext
from repro.encoding.encoder import ReseedingEncoder
from repro.encoding.window import EncodingError
from repro.testdata.profiles import get_profile
from repro.testdata.synthetic import generate_test_set

#: Kernel names in report order.
KERNELS = (
    "encoding",
    "faultsim",
    "faultsim-compiled",
    "atpg",
    "atpg-events",
    "embedding",
    "context",
    "telemetry-overhead",
)


@dataclass
class KernelCase:
    """One measured configuration of a kernel."""

    name: str
    wall_s: float
    throughput: float
    unit: str
    reference_wall_s: float
    speedup: float
    verified: bool
    detail: Dict[str, object] = field(default_factory=dict)
    pre_pr_wall_s: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        data = {
            "name": self.name,
            "wall_s": round(self.wall_s, 6),
            "throughput": round(self.throughput, 2),
            "unit": self.unit,
            "reference_wall_s": round(self.reference_wall_s, 6),
            "speedup": round(self.speedup, 2),
            "verified": self.verified,
            "detail": self.detail,
        }
        if self.pre_pr_wall_s is not None and self.wall_s > 0:
            data["pre_pr_wall_s"] = self.pre_pr_wall_s
            data["speedup_vs_pre_pr"] = round(self.pre_pr_wall_s / self.wall_s, 2)
        return data


@dataclass
class KernelReport:
    """All measured cases of one kernel."""

    kernel: str
    mode: str
    cases: List[KernelCase]
    #: Environment + run-cost stamp (interpreter, numpy, cpu count, wall and
    #: cpu seconds of the whole bench invocation); filled by
    #: :func:`run_benchmarks` so every report says where it was measured.
    meta: Optional[Dict[str, object]] = None

    @property
    def filename(self) -> str:
        return f"BENCH_{self.kernel}.json"

    def to_dict(self) -> Dict[str, object]:
        data = {
            "kernel": self.kernel,
            "mode": self.mode,
            "generated_by": "repro bench",
            "cases": [case.to_dict() for case in self.cases],
        }
        if self.meta is not None:
            data["meta"] = self.meta
        return data

    def write(self, out_dir: "str | Path") -> Path:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        path = out / self.filename
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path


def _best_of(repeat: int, run: Callable[[], Tuple[float, object]]) -> Tuple[float, object]:
    """Best wall time (and its result) over ``repeat`` runs."""
    best_time: Optional[float] = None
    best_result: object = None
    for _ in range(max(1, repeat)):
        elapsed, result = run()
        if best_time is None or elapsed < best_time:
            best_time, best_result = elapsed, result
    return best_time, best_result


# ----------------------------------------------------------------------
# Encoding-scan kernel
# ----------------------------------------------------------------------
#: Quick cases are sized for CI: large enough (~0.1 s walls) that the
#: speedup ratio the regression gate compares is not dominated by
#: scheduler noise, small enough to keep the smoke job fast.
_ENCODING_QUICK = [
    ("s9234-L60", "s9234", 0.08, 60),
    ("s13207-L60", "s13207", 0.08, 60),
]
#: Full mode is a superset of quick mode so a full-mode report can serve as
#: the baseline for quick-mode CI comparisons (cases match by name).
_ENCODING_CASES = {
    "quick": _ENCODING_QUICK,
    "full": _ENCODING_QUICK
    + [
        ("s9234-L100", "s9234", 0.10, 100),
        ("s9234-L200", "s9234", 0.20, 200),
        ("s13207-L200", "s13207", 0.20, 200),
        ("s15850-L100", "s15850", 0.10, 100),
        ("s15850-L200", "s15850", 0.15, 200),
    ],
}

#: Wall seconds of the pre-PR implementations on the development machine
#: (recorded once when the vectorized kernels landed; see the README
#: "Performance" section).  Reported alongside fresh measurements so the
#: cumulative speedup stays visible; absolute values are machine-specific.
_PRE_PR_WALL_S = {
    "encoding": {
        "s9234-L100": 0.519,
        "s9234-L200": 2.357,
        "s13207-L200": 0.802,
        "s15850-L100": 0.556,
    },
    "faultsim": {
        "g600-p512": 2.368,
        "g1000-p512": 5.532,
    },
    # Measured immediately before the telemetry instrumentation landed
    # (best of 5, identical harness and configurations as the
    # telemetry-overhead cases), so overhead_vs_pre_pr_pct quantifies
    # exactly what the disabled hooks add.
    "telemetry-overhead": {
        "s13207-flow": 0.0356,
        "g120-atpg": 0.0198,
    },
}


def _encode_timed(profile_name: str, scale: float, window: int, batch: bool):
    """Encode a profile test set; returns (wall seconds, EncodingResult)."""
    profile = get_profile(profile_name)
    test_set = generate_test_set(profile, seed=1, scale=scale)
    last_error: Optional[EncodingError] = None
    for attempt in range(5):
        encoder = ReseedingEncoder(
            num_cells=profile.scan_cells,
            num_scan_chains=profile.scan_chains,
            lfsr_size=profile.lfsr_size,
            window_length=window,
            phase_seed=2008 + attempt,
            batch_trials=batch,
        )
        try:
            start = time.perf_counter()
            result = encoder.encode(test_set)
            return time.perf_counter() - start, result
        except EncodingError as error:
            last_error = error
    raise last_error


def bench_encoding(quick: bool = False, repeat: int = 2) -> KernelReport:
    """Measure the window-encoding solvability-scan kernel."""
    mode = "quick" if quick else "full"
    cases: List[KernelCase] = []
    for name, profile_name, scale, window in _ENCODING_CASES[mode]:
        # Optimized and reference paths get the same best-of-N treatment so
        # the speedup ratio (the regression-gate metric) is not skewed by a
        # one-off stall on either side.
        wall, result = _best_of(
            repeat, lambda: _encode_timed(profile_name, scale, window, True)
        )
        ref_wall, ref_result = _best_of(
            repeat, lambda: _encode_timed(profile_name, scale, window, False)
        )
        verified = ref_result.to_dict() == result.to_dict()
        cases.append(
            KernelCase(
                name=name,
                wall_s=wall,
                throughput=result.num_cubes / wall if wall > 0 else 0.0,
                unit="cubes/s",
                reference_wall_s=ref_wall,
                speedup=ref_wall / wall if wall > 0 else 0.0,
                verified=verified,
                detail={
                    "profile": profile_name,
                    "scale": scale,
                    "window_length": window,
                    "num_cubes": result.num_cubes,
                    "num_seeds": result.num_seeds,
                },
                pre_pr_wall_s=_PRE_PR_WALL_S["encoding"].get(name),
            )
        )
    return KernelReport(kernel="encoding", mode=mode, cases=cases)


# ----------------------------------------------------------------------
# Fault-simulation kernel
# ----------------------------------------------------------------------
_FAULTSIM_QUICK = [
    ("g300-p256", 48, 300, 256),
]
_FAULTSIM_CASES = {
    "quick": _FAULTSIM_QUICK,
    "full": _FAULTSIM_QUICK
    + [
        ("g600-p512", 64, 600, 512),
        ("g1000-p512", 96, 1000, 512),
    ],
}


def _faultsim_timed(
    num_inputs: int,
    num_gates: int,
    num_patterns: int,
    engine: str,
    word_width: int,
):
    """Fault-simulate random patterns; returns (wall, (detected set, faults))."""
    netlist = random_netlist(
        "bench", num_inputs=num_inputs, num_gates=num_gates, seed=7
    )
    rng = random.Random(42)
    vectors = [rng.getrandbits(netlist.num_inputs) for _ in range(num_patterns)]
    simulator = FaultSimulator(netlist, word_width=word_width, engine=engine)
    total_faults = len(simulator.remaining_faults)
    start = time.perf_counter()
    result = simulator.simulate_patterns(
        [
            {
                net: (vector >> index) & 1
                for index, net in enumerate(netlist.inputs)
            }
            for vector in vectors
        ]
    )
    elapsed = time.perf_counter() - start
    return elapsed, (frozenset(result.detected), total_faults)


def bench_faultsim(quick: bool = False, repeat: int = 2) -> KernelReport:
    """Measure the parallel-pattern fault-simulation kernel."""
    mode = "quick" if quick else "full"
    cases: List[KernelCase] = []
    for name, num_inputs, num_gates, num_patterns in _FAULTSIM_CASES[mode]:
        wall, (detected, total_faults) = _best_of(
            repeat,
            lambda: _faultsim_timed(
                num_inputs, num_gates, num_patterns, "events", 256
            ),
        )
        ref_wall, (ref_detected, _) = _best_of(
            repeat,
            lambda: _faultsim_timed(
                num_inputs, num_gates, num_patterns, "packed", 64
            ),
        )
        evaluations = total_faults * num_patterns
        cases.append(
            KernelCase(
                name=name,
                wall_s=wall,
                throughput=evaluations / wall if wall > 0 else 0.0,
                unit="fault-patterns/s",
                reference_wall_s=ref_wall,
                speedup=ref_wall / wall if wall > 0 else 0.0,
                verified=detected == ref_detected,
                detail={
                    "num_inputs": num_inputs,
                    "num_gates": num_gates,
                    "num_patterns": num_patterns,
                    "total_faults": total_faults,
                    "detected": len(detected),
                },
                pre_pr_wall_s=_PRE_PR_WALL_S["faultsim"].get(name),
            )
        )
    return KernelReport(kernel="faultsim", mode=mode, cases=cases)


def bench_faultsim_compiled(quick: bool = False, repeat: int = 2) -> KernelReport:
    """Measure the codegen-compiled backend vs the packed full-pass engine.

    Both sides run full-block fault simulation at the same word width, so
    the ratio isolates what compiling the netlist to straight-line Python
    buys over the interpreted row loop: no per-row tuple unpacking, no list
    indexing, intermediate values living in locals, and the single-fault
    diff evaluated without materializing a faulty copy of the block.
    """
    mode = "quick" if quick else "full"
    cases: List[KernelCase] = []
    for name, num_inputs, num_gates, num_patterns in _FAULTSIM_CASES[mode]:
        wall, (detected, total_faults) = _best_of(
            repeat,
            lambda: _faultsim_timed(
                num_inputs, num_gates, num_patterns, "compiled", 256
            ),
        )
        ref_wall, (ref_detected, _) = _best_of(
            repeat,
            lambda: _faultsim_timed(
                num_inputs, num_gates, num_patterns, "packed", 256
            ),
        )
        evaluations = total_faults * num_patterns
        cases.append(
            KernelCase(
                name=name,
                wall_s=wall,
                throughput=evaluations / wall if wall > 0 else 0.0,
                unit="fault-patterns/s",
                reference_wall_s=ref_wall,
                speedup=ref_wall / wall if wall > 0 else 0.0,
                verified=detected == ref_detected,
                detail={
                    "num_inputs": num_inputs,
                    "num_gates": num_gates,
                    "num_patterns": num_patterns,
                    "total_faults": total_faults,
                    "detected": len(detected),
                    "word_width": 256,
                },
            )
        )
    return KernelReport(kernel="faultsim-compiled", mode=mode, cases=cases)


# ----------------------------------------------------------------------
# ATPG kernel (PODEM on the packed ternary core)
# ----------------------------------------------------------------------
_ATPG_QUICK = [
    ("g200-podem", 40, 200),
]
_ATPG_CASES = {
    "quick": _ATPG_QUICK,
    "full": _ATPG_QUICK
    + [
        ("g300-podem", 48, 300),
        ("g600-podem", 64, 600),
    ],
}


def _atpg_timed(
    num_inputs: int,
    num_gates: int,
    engine: str = "events",
    fills: Optional[str] = None,
):
    """Full PODEM run (generation + drop simulation).

    Returns ``(wall, (result, engine_stats))``; the stats dict carries the
    persistent event engine's lifetime counters (empty on the reference
    engines), so the bench report shows how many bucket-queue events and
    propagation passes the run cost.
    """
    from repro.circuits.atpg import PodemAtpg
    from repro.circuits.generator import random_netlist

    netlist = random_netlist(
        "bench", num_inputs=num_inputs, num_gates=num_gates, seed=7
    )
    atpg = PodemAtpg(netlist, engine=engine)
    start = time.perf_counter()
    result = atpg.run(fills=fills)
    wall = time.perf_counter() - start
    stats: Dict[str, object] = {}
    engine = atpg._engine
    if engine is not None:
        stats = {
            "engine_events": engine.events_processed,
            "engine_passes": engine.propagate_passes,
            "events_per_pass": round(
                engine.events_processed / max(1, engine.propagate_passes), 2
            ),
        }
    return wall, (result, stats)


def _atpg_result_case(
    name: str,
    num_inputs: int,
    num_gates: int,
    wall: float,
    result,
    ref_wall: float,
    ref_result,
    engine_stats: Optional[Dict[str, object]] = None,
) -> KernelCase:
    """A KernelCase comparing two full AtpgResults bit for bit."""
    verified = (
        result.test_set.cubes == ref_result.test_set.cubes
        and result.detected == ref_result.detected
        and result.redundant == ref_result.redundant
        and result.aborted == ref_result.aborted
        and result.total_faults == ref_result.total_faults
    )
    detail: Dict[str, object] = {
        "num_inputs": num_inputs,
        "num_gates": num_gates,
        "total_faults": result.total_faults,
        "num_cubes": len(result.test_set.cubes),
        "coverage_pct": round(result.effective_coverage_percent, 2),
    }
    if engine_stats:
        detail.update(engine_stats)
    return KernelCase(
        name=name,
        wall_s=wall,
        throughput=result.total_faults / wall if wall > 0 else 0.0,
        unit="faults/s",
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall if wall > 0 else 0.0,
        verified=verified,
        detail=detail,
    )


def bench_atpg(quick: bool = False, repeat: int = 2) -> KernelReport:
    """Measure the default ATPG engine vs the dict reference.

    The optimized side is what ``repro atpg`` runs today: PODEM on the
    packed ternary core with event-driven fanout-cone updates and the
    batched fill block.  All engines run the identical objective/backtrace
    decision tree, so the verification compares the complete
    :class:`AtpgResult`: the cube list, the detected/redundant/aborted
    partitions and the fault total.  The reference engine *is* the pre-PR 4
    implementation, so ``speedup`` doubles as the cumulative
    speedup-vs-pre-PR figure.
    """
    mode = "quick" if quick else "full"
    cases: List[KernelCase] = []
    for name, num_inputs, num_gates in _ATPG_CASES[mode]:
        wall, (result, stats) = _best_of(
            repeat, lambda: _atpg_timed(num_inputs, num_gates, "events")
        )
        ref_wall, (ref_result, _) = _best_of(
            repeat,
            lambda: _atpg_timed(
                num_inputs, num_gates, "reference", fills="per-pattern"
            ),
        )
        cases.append(
            _atpg_result_case(
                name,
                num_inputs,
                num_gates,
                wall,
                result,
                ref_wall,
                ref_result,
                engine_stats=stats,
            )
        )
    return KernelReport(kernel="atpg", mode=mode, cases=cases)


# ----------------------------------------------------------------------
# ATPG event-driven kernel (incremental PODEM + batched drop block)
# ----------------------------------------------------------------------
_ATPG_EVENTS_QUICK = [
    ("g300-events", 48, 300),
]
_ATPG_EVENTS_CASES = {
    "quick": _ATPG_EVENTS_QUICK,
    "full": _ATPG_EVENTS_QUICK
    + [
        ("g600-events", 64, 600),
        ("g1000-events", 96, 1000),
    ],
}


def bench_atpg_events(quick: bool = False, repeat: int = 2) -> KernelReport:
    """Measure event-driven PODEM + batched drops vs the full-pass engine.

    Isolates the event-engine steps: the reference side is the full-pass
    packed engine (whole-netlist re-evaluation per decision node, one
    fault-simulation call per fill), the optimized side adds the
    per-level bucket queues with state-table row evaluation, the
    incrementally maintained D-frontier, the persistent per-fault engine
    (checkpoint rewind + overlay re-force) and the word-packed fill
    block.  The per-decision cost becomes proportional to the assigned
    input's fanout cone instead of the netlist, so the win grows with
    circuit size.
    """
    mode = "quick" if quick else "full"
    cases: List[KernelCase] = []
    for name, num_inputs, num_gates in _ATPG_EVENTS_CASES[mode]:
        wall, (result, stats) = _best_of(
            repeat, lambda: _atpg_timed(num_inputs, num_gates, "events")
        )
        ref_wall, (ref_result, _) = _best_of(
            repeat,
            lambda: _atpg_timed(
                num_inputs, num_gates, "packed", fills="per-pattern"
            ),
        )
        cases.append(
            _atpg_result_case(
                name,
                num_inputs,
                num_gates,
                wall,
                result,
                ref_wall,
                ref_result,
                engine_stats=stats,
            )
        )
    return KernelReport(kernel="atpg-events", mode=mode, cases=cases)


# ----------------------------------------------------------------------
# Embedding-map kernel (warm-sweep packed containment)
# ----------------------------------------------------------------------
_EMBEDDING_QUICK = [
    ("s9234-L200-warm", "s9234", 0.3, 200, [4, 5, 10, 20, 25]),
]
_EMBEDDING_CASES = {
    "quick": _EMBEDDING_QUICK,
    "full": _EMBEDDING_QUICK
    + [
        ("s13207-L100-warm", "s13207", 0.2, 100, [4, 5, 10, 20, 25]),
    ],
}


def _embedding_sweep_timed(encoded, segments: List[int], packed: bool):
    """Build the embedding map for every S of a warm sweep.

    ``packed=True`` runs the numpy containment kernel on the context-cached
    uint64-blocked windows; ``packed=False`` the pure-Python reference scan
    on the integer windows.  Both consume pre-expanded windows, so the
    timing isolates exactly the matching kernel an (S, k) sweep repeats.
    """
    from repro.skip.segments import WindowSegmentation
    from repro.skip.selection import (
        build_embedding_map,
        build_embedding_map_reference,
    )

    equations = encoded.substrate.equations
    seeds = [record.seed for record in encoded.encoding.seeds]
    context = encoded.context
    windows_packed = context.packed_windows(encoded.substrate, seeds)
    windows = context.expanded_windows(encoded.substrate, seeds)
    window_length = encoded.encoding.window_length
    maps = []
    start = time.perf_counter()
    for segment_size in segments:
        segmentation = WindowSegmentation(window_length, segment_size)
        if packed:
            embedding = build_embedding_map(
                encoded.encoding,
                encoded.test_set,
                equations,
                segmentation,
                windows_packed=windows_packed,
            )
        else:
            embedding = build_embedding_map_reference(
                encoded.encoding,
                encoded.test_set,
                equations,
                segmentation,
                windows=windows,
            )
        maps.append(embedding)
    elapsed = time.perf_counter() - start
    return elapsed, [
        (embedding.cube_segments, embedding.segment_cubes) for embedding in maps
    ]


def bench_embedding(quick: bool = False, repeat: int = 2) -> KernelReport:
    """Measure the warm-sweep embedding-map build vs the reference loop."""
    from repro.pipeline import encode as encode_stage

    mode = "quick" if quick else "full"
    cases: List[KernelCase] = []
    for name, profile_name, scale, window, segments in _EMBEDDING_CASES[mode]:
        profile = get_profile(profile_name)
        test_set = generate_test_set(profile, seed=1, scale=scale)
        config = CompressionConfig(
            window_length=window,
            segment_size=min(segments),
            num_scan_chains=profile.scan_chains,
            lfsr_size=profile.lfsr_size,
        )
        encoded = encode_stage(
            test_set, config, context=CompressionContext(), verify=False
        )
        wall, maps = _best_of(
            repeat, lambda: _embedding_sweep_timed(encoded, segments, True)
        )
        ref_wall, ref_maps = _best_of(
            repeat, lambda: _embedding_sweep_timed(encoded, segments, False)
        )
        matches = (
            len(test_set) * encoded.encoding.num_seeds * window * len(segments)
        )
        cases.append(
            KernelCase(
                name=name,
                wall_s=wall,
                throughput=matches / wall if wall > 0 else 0.0,
                unit="cube-positions/s",
                reference_wall_s=ref_wall,
                speedup=ref_wall / wall if wall > 0 else 0.0,
                verified=maps == ref_maps,
                detail={
                    "profile": profile_name,
                    "scale": scale,
                    "window_length": window,
                    "segments": segments,
                    "num_cubes": len(test_set),
                    "num_seeds": encoded.encoding.num_seeds,
                },
            )
        )
    return KernelReport(kernel="embedding", mode=mode, cases=cases)


# ----------------------------------------------------------------------
# Context-reuse kernel (encode once, sweep (S, k) many)
# ----------------------------------------------------------------------
#: (name, profile, scale, window, segment sizes, speedups).  The quick case
#: mirrors the CI campaign smoke grid; full mode adds a paper-sized sweep.
_CONTEXT_QUICK = [
    ("s13207-L40-grid8", "s13207", 0.05, 40, [5, 10], [3, 6, 12, 24]),
]
_CONTEXT_CASES = {
    "quick": _CONTEXT_QUICK,
    "full": _CONTEXT_QUICK
    + [
        ("s9234-L100-grid6", "s9234", 0.08, 100, [5, 10], [6, 12, 24]),
    ],
}


def _context_sweep_timed(
    profile_name: str,
    scale: float,
    window: int,
    segments: List[int],
    speedups: List[int],
    warm: bool,
):
    """Run a full (S, k) grid; returns (wall seconds, summary rows).

    ``warm=True`` threads one shared :class:`CompressionContext` through
    every :func:`~repro.pipeline.compress` call, so the substrate, the
    seed computation and the window expansion are paid once for the whole
    grid (the campaign runner's per-group path).  ``warm=False`` gives
    every job a caching-disabled context -- the old per-job rebuild.
    """
    profile = get_profile(profile_name)
    test_set = generate_test_set(profile, seed=1, scale=scale)
    base = CompressionConfig(
        window_length=window,
        num_scan_chains=profile.scan_chains,
        lfsr_size=profile.lfsr_size,
    )
    from repro.pipeline import compress

    shared = CompressionContext() if warm else None
    summaries = []
    start = time.perf_counter()
    for segment_size in segments:
        for speedup in speedups:
            config = base.with_updates(
                segment_size=min(segment_size, window), speedup=speedup
            )
            context = shared if warm else CompressionContext(caching=False)
            report = compress(test_set, config, verify=True, context=context)
            summaries.append(report.summary())
    return time.perf_counter() - start, summaries


def bench_context(quick: bool = False, repeat: int = 2) -> KernelReport:
    """Measure warm-context (S, k) sweeps against the per-job rebuild path."""
    mode = "quick" if quick else "full"
    cases: List[KernelCase] = []
    for name, profile_name, scale, window, segments, speedups in _CONTEXT_CASES[
        mode
    ]:
        num_jobs = len(segments) * len(speedups)
        wall, summaries = _best_of(
            repeat,
            lambda: _context_sweep_timed(
                profile_name, scale, window, segments, speedups, True
            ),
        )
        ref_wall, ref_summaries = _best_of(
            repeat,
            lambda: _context_sweep_timed(
                profile_name, scale, window, segments, speedups, False
            ),
        )
        cases.append(
            KernelCase(
                name=name,
                wall_s=wall,
                throughput=num_jobs / wall if wall > 0 else 0.0,
                unit="jobs/s",
                reference_wall_s=ref_wall,
                speedup=ref_wall / wall if wall > 0 else 0.0,
                verified=summaries == ref_summaries,
                detail={
                    "profile": profile_name,
                    "scale": scale,
                    "window_length": window,
                    "segments": segments,
                    "speedups": speedups,
                    "num_jobs": num_jobs,
                },
            )
        )
    return KernelReport(kernel="context", mode=mode, cases=cases)


# ----------------------------------------------------------------------
# Telemetry-overhead kernel (instrumented-but-disabled vs enabled)
# ----------------------------------------------------------------------
def _flow_overhead_timed(enabled: bool):
    """The warm (S, k) flow sweep under a null or an enabled recorder."""
    from repro.telemetry import NullRecorder, Recorder, use_recorder

    recorder = Recorder(run_id="bench") if enabled else NullRecorder()
    with use_recorder(recorder):
        return _context_sweep_timed("s13207", 0.05, 40, [5, 10], [3, 6], True)


def _atpg_overhead_timed(enabled: bool):
    """A full default PODEM run under a null or an enabled recorder."""
    from repro.circuits.atpg import PodemAtpg
    from repro.telemetry import NullRecorder, Recorder, use_recorder

    netlist = random_netlist("bench", num_inputs=32, num_gates=120, seed=7)
    atpg = PodemAtpg(netlist)
    recorder = Recorder(run_id="bench") if enabled else NullRecorder()
    with use_recorder(recorder):
        start = time.perf_counter()
        result = atpg.run()
        return time.perf_counter() - start, result


def bench_telemetry_overhead(quick: bool = False, repeat: int = 2) -> KernelReport:
    """Measure the disabled-telemetry cost of the instrumented hot paths.

    The roles are inverted relative to the speed kernels: ``wall_s`` is the
    *default* path (NullRecorder installed -- instrumented code, recording
    off) and ``reference_wall_s`` is the same work with recording on, so
    ``speedup`` reads as "how much a ``--trace`` run costs".  The number the
    PR is gated on lives in ``detail.overhead_vs_pre_pr_pct``: disabled
    wall against the pre-instrumentation wall of the identical
    configuration, which must stay within the 2% budget (CI compares
    ``wall_s`` against the committed baseline).
    """
    mode = "quick" if quick else "full"
    # Sub-0.1s walls: always take best-of-3 at least, or scheduler noise
    # would dominate the 2% signal the gate looks for.
    repeat = max(repeat, 3)
    cases: List[KernelCase] = []

    wall, summaries = _best_of(repeat, lambda: _flow_overhead_timed(False))
    ref_wall, ref_summaries = _best_of(repeat, lambda: _flow_overhead_timed(True))
    pre_pr = _PRE_PR_WALL_S["telemetry-overhead"]["s13207-flow"]
    cases.append(
        KernelCase(
            name="s13207-flow",
            wall_s=wall,
            throughput=len(summaries) / wall if wall > 0 else 0.0,
            unit="jobs/s",
            reference_wall_s=ref_wall,
            speedup=ref_wall / wall if wall > 0 else 0.0,
            verified=summaries == ref_summaries,
            detail={
                "profile": "s13207",
                "scale": 0.05,
                "window_length": 40,
                "segments": [5, 10],
                "speedups": [3, 6],
                "overhead_vs_pre_pr_pct": round((wall / pre_pr - 1) * 100, 2),
                "enabled_overhead_pct": (
                    round((ref_wall / wall - 1) * 100, 2) if wall > 0 else None
                ),
            },
            pre_pr_wall_s=pre_pr,
        )
    )

    wall, result = _best_of(repeat, lambda: _atpg_overhead_timed(False))
    ref_wall, ref_result = _best_of(repeat, lambda: _atpg_overhead_timed(True))
    pre_pr = _PRE_PR_WALL_S["telemetry-overhead"]["g120-atpg"]
    verified = (
        result.test_set.cubes == ref_result.test_set.cubes
        and result.detected == ref_result.detected
        and result.redundant == ref_result.redundant
        and result.aborted == ref_result.aborted
        and result.total_faults == ref_result.total_faults
    )
    cases.append(
        KernelCase(
            name="g120-atpg",
            wall_s=wall,
            throughput=result.total_faults / wall if wall > 0 else 0.0,
            unit="faults/s",
            reference_wall_s=ref_wall,
            speedup=ref_wall / wall if wall > 0 else 0.0,
            verified=verified,
            detail={
                "num_inputs": 32,
                "num_gates": 120,
                "total_faults": result.total_faults,
                "num_cubes": len(result.test_set.cubes),
                "overhead_vs_pre_pr_pct": round((wall / pre_pr - 1) * 100, 2),
                "enabled_overhead_pct": (
                    round((ref_wall / wall - 1) * 100, 2) if wall > 0 else None
                ),
            },
            pre_pr_wall_s=pre_pr,
        )
    )
    return KernelReport(kernel="telemetry-overhead", mode=mode, cases=cases)


_BENCHES = {
    "encoding": bench_encoding,
    "faultsim": bench_faultsim,
    "faultsim-compiled": bench_faultsim_compiled,
    "atpg": bench_atpg,
    "atpg-events": bench_atpg_events,
    "embedding": bench_embedding,
    "context": bench_context,
    "telemetry-overhead": bench_telemetry_overhead,
}


def run_benchmarks(
    kernels: Optional[List[str]] = None, quick: bool = False, repeat: int = 2
) -> List[KernelReport]:
    """Run the selected kernels (default: all) and return their reports.

    Every report is stamped with :func:`~repro.telemetry.environment_meta`
    plus the wall and cpu seconds of the whole invocation, so a committed
    ``BENCH_*.json`` baseline records where (and how expensively) it was
    measured.
    """
    from repro.telemetry import environment_meta

    selected = list(kernels) if kernels else list(KERNELS)
    for kernel in selected:
        if kernel not in _BENCHES:
            raise ValueError(f"unknown bench kernel {kernel!r}; choose from {KERNELS}")
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    reports = [_BENCHES[kernel](quick=quick, repeat=repeat) for kernel in selected]
    meta = environment_meta()
    meta["bench_wall_s"] = round(time.perf_counter() - wall_start, 3)
    meta["bench_cpu_s"] = round(time.process_time() - cpu_start, 3)
    for report in reports:
        report.meta = meta
    return reports


# ----------------------------------------------------------------------
# Baseline comparison and campaign-store wiring
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Regression:
    """One kernel case that got slower than the baseline allows."""

    kernel: str
    case: str
    metric: str
    current: float
    baseline: float

    @property
    def ratio(self) -> float:
        if self.metric == "speedup":
            return self.baseline / self.current if self.current else float("inf")
        return self.current / self.baseline

    def __str__(self) -> str:
        return (
            f"{self.kernel}/{self.case}: {self.metric} {self.current:.3f} vs "
            f"baseline {self.baseline:.3f} ({self.ratio:.2f}x worse)"
        )


def compare_to_baseline(
    report: KernelReport,
    baseline_dir: "str | Path",
    max_regression: float = 2.0,
    metric: str = "speedup",
) -> List[Regression]:
    """Regressions of ``report`` against a committed baseline directory.

    The default metric is each case's ``speedup`` over the in-repo
    reference implementation: both sides of that ratio are measured in the
    same run on the same machine, so the committed baseline transfers
    across hardware (CI runners are slower than the machine that produced
    the baseline, but slower for reference and optimized kernels alike).
    ``metric="wall_s"`` compares absolute wall time instead, for tracking a
    dedicated benchmark host.  Cases are matched by name; cases missing
    from the baseline (or a missing baseline file) are ignored, so adding
    a new case never fails CI.
    """
    if metric not in ("speedup", "wall_s"):
        raise ValueError("metric must be 'speedup' or 'wall_s'")
    path = Path(baseline_dir) / report.filename
    if not path.exists():
        return []
    baseline = json.loads(path.read_text())
    baseline_values = {
        case["name"]: case[metric] for case in baseline.get("cases", [])
    }
    regressions = []
    for case in report.cases:
        old = baseline_values.get(case.name)
        if old is None or old <= 0:
            continue
        current = case.speedup if metric == "speedup" else case.wall_s
        candidate = Regression(report.kernel, case.name, metric, current, old)
        if candidate.ratio > max_regression:
            regressions.append(candidate)
    return regressions


def record_in_store(store, reports: List[KernelReport]) -> int:
    """Append bench results to a campaign result store.

    Each case becomes one :class:`~repro.campaign.store.StoredResult` with
    the kernel wall time in the store's existing ``elapsed_s`` field, keyed
    by (kernel, case, mode).  Like campaign jobs, re-running supersedes the
    previous record for the same key (the store index is last-record-wins),
    so the store always holds the latest measurement per case; superseded
    lines remain in the raw JSONL.
    """
    from repro.campaign.store import STATUS_OK, StoredResult

    written = 0
    for report in reports:
        for case in report.cases:
            payload = f"bench:{report.kernel}:{case.name}:{report.mode}"
            key = hashlib.sha256(payload.encode("ascii")).hexdigest()[:20]
            store.put(
                StoredResult(
                    key=key,
                    job_id=f"bench/{report.kernel}/{case.name}",
                    circuit=case.name,
                    fingerprint=f"bench:{report.kernel}",
                    config={"kernel": report.kernel, "mode": report.mode},
                    status=STATUS_OK,
                    summary=case.to_dict(),
                    elapsed_s=case.wall_s,
                )
            )
            written += 1
    return written
