"""GF(2) linear-algebra substrate.

Everything in the State Skip LFSR flow is linear algebra over the two-element
field GF(2): LFSR transition matrices, phase shifters, the seed-computation
linear systems and the State Skip circuit itself (the matrix ``A^k``).

The substrate provides:

* :class:`~repro.gf2.bitvec.BitVector` -- an immutable packed bit vector.
* :class:`~repro.gf2.matrix.GF2Matrix` -- a dense GF(2) matrix with
  multiplication, powers, rank, inversion and kernel computation.
* :class:`~repro.gf2.solve.IncrementalSolver` -- an augmented row-echelon
  basis that accepts equations one at a time, reports consistency and counts
  newly pinned (pivot) variables.  This is the work-horse of the window-based
  seed-computation algorithm.
* :mod:`~repro.gf2.polynomial` -- polynomial arithmetic over GF(2)
  (multiplication, modular exponentiation, gcd, irreducibility testing).
* :mod:`~repro.gf2.primitive` -- a table of known primitive feedback
  polynomials plus a search fallback producing irreducible polynomials of any
  degree.
"""

from repro.gf2.bitvec import BitVector
from repro.gf2.matrix import GF2Matrix, identity, zeros
from repro.gf2.solve import Equation, IncrementalSolver, SolveOutcome, gaussian_solve
from repro.gf2.polynomial import GF2Polynomial
from repro.gf2.primitive import (
    default_feedback_polynomial,
    irreducible_polynomial,
    primitive_polynomial,
)

__all__ = [
    "BitVector",
    "GF2Matrix",
    "identity",
    "zeros",
    "Equation",
    "IncrementalSolver",
    "SolveOutcome",
    "gaussian_solve",
    "GF2Polynomial",
    "default_feedback_polynomial",
    "irreducible_polynomial",
    "primitive_polynomial",
]
