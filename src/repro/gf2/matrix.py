"""Dense matrices over GF(2).

A :class:`GF2Matrix` stores each row as a packed Python integer (bit ``j`` of
row ``i`` is element ``(i, j)``).  This representation makes row operations
(the core of Gaussian elimination and of matrix multiplication by
row-combination) single integer XORs regardless of the column count, which is
ideal for the sizes used in LFSR reseeding (tens to a few hundred columns).

The matrices are the backbone of:

* LFSR transition matrices ``A`` and their powers ``A^k`` (the State Skip
  circuit),
* phase-shifter matrices ``P``,
* the per-cycle output-equation rows ``P · A^t`` used to encode test cubes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.gf2.bitvec import BitVector


class GF2Matrix:
    """A dense matrix over GF(2) with packed-integer rows."""

    __slots__ = ("_rows", "_ncols")

    def __init__(self, nrows: int, ncols: int, rows: Optional[Sequence[int]] = None):
        if nrows < 0 or ncols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        self._ncols = ncols
        if rows is None:
            self._rows: List[int] = [0] * nrows
        else:
            if len(rows) != nrows:
                raise ValueError("row count mismatch")
            mask = (1 << ncols) - 1
            self._rows = [r & mask for r in rows]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Sequence[Sequence[int]]) -> "GF2Matrix":
        """Build from a list of rows, each a list of 0/1 ints."""
        nrows = len(rows)
        ncols = len(rows[0]) if nrows else 0
        packed = []
        for i, row in enumerate(rows):
            if len(row) != ncols:
                raise ValueError(f"row {i} has length {len(row)}, expected {ncols}")
            value = 0
            for j, bit in enumerate(row):
                if bit not in (0, 1):
                    raise ValueError(f"entry ({i},{j}) is {bit!r}, expected 0 or 1")
                if bit:
                    value |= 1 << j
            packed.append(value)
        return cls(nrows, ncols, packed)

    @classmethod
    def from_bitvectors(cls, rows: Sequence[BitVector]) -> "GF2Matrix":
        """Build from a list of equally long :class:`BitVector` rows."""
        nrows = len(rows)
        ncols = rows[0].length if nrows else 0
        for i, row in enumerate(rows):
            if row.length != ncols:
                raise ValueError(f"row {i} has length {row.length}, expected {ncols}")
        return cls(nrows, ncols, [row.value for row in rows])

    @classmethod
    def from_columns(cls, columns: Sequence[Sequence[int]]) -> "GF2Matrix":
        """Build from a list of columns, each a list of 0/1 ints."""
        ncols = len(columns)
        nrows = len(columns[0]) if ncols else 0
        rows = [[columns[j][i] for j in range(ncols)] for i in range(nrows)]
        return cls.from_rows(rows) if nrows else cls(0, ncols)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return len(self._rows)

    @property
    def ncols(self) -> int:
        return self._ncols

    @property
    def shape(self) -> Tuple[int, int]:
        return (len(self._rows), self._ncols)

    def row(self, i: int) -> BitVector:
        """Row ``i`` as a :class:`BitVector`."""
        return BitVector(self._ncols, self._rows[i])

    def row_mask(self, i: int) -> int:
        """Row ``i`` as a packed integer (fast path for inner loops)."""
        return self._rows[i]

    def row_masks(self) -> List[int]:
        """All rows as packed integers (a copy)."""
        return list(self._rows)

    def column(self, j: int) -> BitVector:
        """Column ``j`` as a :class:`BitVector`."""
        if not 0 <= j < self._ncols:
            raise IndexError(f"column {j} out of range")
        value = 0
        for i, row in enumerate(self._rows):
            if (row >> j) & 1:
                value |= 1 << i
        return BitVector(len(self._rows), value)

    def column_masks(self) -> List[int]:
        """All columns as packed integers (bit i of column j is entry (i, j)).

        This is the transposed packed representation, used for fast
        vector-times-matrix products.
        """
        cols = [0] * self._ncols
        for i, row in enumerate(self._rows):
            v = row
            while v:
                low = v & -v
                j = low.bit_length() - 1
                cols[j] |= 1 << i
                v ^= low
        return cols

    def __getitem__(self, index: Tuple[int, int]) -> int:
        i, j = index
        if not 0 <= i < len(self._rows) or not 0 <= j < self._ncols:
            raise IndexError(f"index {index} out of range for shape {self.shape}")
        return (self._rows[i] >> j) & 1

    def to_lists(self) -> List[List[int]]:
        """The matrix as nested lists of 0/1 ints."""
        return [[(row >> j) & 1 for j in range(self._ncols)] for row in self._rows]

    def density(self) -> float:
        """Fraction of entries that are 1."""
        total = len(self._rows) * self._ncols
        if total == 0:
            return 0.0
        ones = sum(row.bit_count() for row in self._rows)
        return ones / total

    def total_weight(self) -> int:
        """Total number of 1 entries."""
        return sum(row.bit_count() for row in self._rows)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GF2Matrix):
            return NotImplemented
        return self._ncols == other._ncols and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._ncols, tuple(self._rows)))

    def __xor__(self, other: "GF2Matrix") -> "GF2Matrix":
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        return GF2Matrix(
            len(self._rows),
            self._ncols,
            [a ^ b for a, b in zip(self._rows, other._rows)],
        )

    __add__ = __xor__

    def __matmul__(self, other: "GF2Matrix") -> "GF2Matrix":
        """Matrix product over GF(2).

        Row ``i`` of the product is the XOR of the rows of ``other`` selected
        by the one-bits of row ``i`` of ``self``, which keeps the inner loop at
        one integer XOR per selected row.
        """
        if self._ncols != other.nrows:
            raise ValueError(
                f"inner dimension mismatch: {self.shape} @ {other.shape}"
            )
        other_rows = other._rows
        out_rows = []
        for row in self._rows:
            acc = 0
            v = row
            while v:
                low = v & -v
                acc ^= other_rows[low.bit_length() - 1]
                v ^= low
            out_rows.append(acc)
        return GF2Matrix(len(self._rows), other.ncols, out_rows)

    def mul_vector(self, vec: BitVector) -> BitVector:
        """Matrix-vector product ``self @ vec``."""
        if vec.length != self._ncols:
            raise ValueError(
                f"vector length {vec.length} does not match {self._ncols} columns"
            )
        value = 0
        mask = vec.value
        for i, row in enumerate(self._rows):
            if (row & mask).bit_count() & 1:
                value |= 1 << i
        return BitVector(len(self._rows), value)

    def vector_mul(self, vec: BitVector) -> BitVector:
        """Row-vector product ``vec @ self``."""
        if vec.length != len(self._rows):
            raise ValueError(
                f"vector length {vec.length} does not match {len(self._rows)} rows"
            )
        acc = 0
        v = vec.value
        while v:
            low = v & -v
            acc ^= self._rows[low.bit_length() - 1]
            v ^= low
        return BitVector(self._ncols, acc)

    def transpose(self) -> "GF2Matrix":
        """The transposed matrix."""
        return GF2Matrix(self._ncols, len(self._rows), self.column_masks())

    def power(self, exponent: int) -> "GF2Matrix":
        """``self`` raised to a non-negative integer power (square matrices)."""
        if len(self._rows) != self._ncols:
            raise ValueError("matrix power requires a square matrix")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        result = identity(self._ncols)
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result @ base
            base = base @ base
            e >>= 1
        return result

    def rank(self) -> int:
        """Rank over GF(2)."""
        rows = list(self._rows)
        rank = 0
        pivot_rows: List[int] = []
        for row in rows:
            cur = row
            for p in pivot_rows:
                high = 1 << (p.bit_length() - 1)
                if cur & high:
                    cur ^= p
            if cur:
                pivot_rows.append(cur)
                pivot_rows.sort(key=int.bit_length, reverse=True)
                rank += 1
        return rank

    def is_invertible(self) -> bool:
        """True when the matrix is square and full rank."""
        return len(self._rows) == self._ncols and self.rank() == self._ncols

    def inverse(self) -> "GF2Matrix":
        """Inverse of a square invertible matrix (Gauss-Jordan)."""
        n = len(self._rows)
        if n != self._ncols:
            raise ValueError("only square matrices can be inverted")
        # Augment each row with the identity in the high bits.
        aug = [self._rows[i] | (1 << (n + i)) for i in range(n)]
        row_idx = 0
        for col in range(n):
            pivot = None
            for r in range(row_idx, n):
                if (aug[r] >> col) & 1:
                    pivot = r
                    break
            if pivot is None:
                raise ValueError("matrix is singular")
            aug[row_idx], aug[pivot] = aug[pivot], aug[row_idx]
            for r in range(n):
                if r != row_idx and ((aug[r] >> col) & 1):
                    aug[r] ^= aug[row_idx]
            row_idx += 1
        mask = (1 << n) - 1
        inv_rows = [(aug[i] >> n) & mask for i in range(n)]
        return GF2Matrix(n, n, inv_rows)

    def kernel_basis(self) -> List[BitVector]:
        """A basis of the right null space ``{x : self @ x = 0}``."""
        n = self._ncols
        # Work on the transpose so that elimination is by columns of self.
        rows = list(self._rows)
        # Reduced row echelon form, tracking pivot columns.
        pivots: List[int] = []
        reduced: List[int] = []
        for row in rows:
            cur = row
            for pcol, prow in zip(pivots, reduced):
                if (cur >> pcol) & 1:
                    cur ^= prow
            if cur:
                pcol = cur.bit_length() - 1
                # Use the highest set bit as pivot; normalise previous rows.
                for k in range(len(reduced)):
                    if (reduced[k] >> pcol) & 1:
                        reduced[k] ^= cur
                pivots.append(pcol)
                reduced.append(cur)
        pivot_set = set(pivots)
        free_cols = [j for j in range(n) if j not in pivot_set]
        basis = []
        for free in free_cols:
            vec = 1 << free
            # Solve for pivot variables so that each reduced row evaluates to 0.
            for pcol, prow in zip(pivots, reduced):
                rest = prow & ~(1 << pcol)
                if (rest & vec).bit_count() & 1:
                    vec |= 1 << pcol
            basis.append(BitVector(n, vec))
        return basis

    # ------------------------------------------------------------------
    # Pretty printing
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"GF2Matrix(shape={self.shape}, density={self.density():.3f})"

    def to_string(self) -> str:
        """Multi-line 0/1 rendering of the matrix."""
        return "\n".join(
            "".join(str((row >> j) & 1) for j in range(self._ncols))
            for row in self._rows
        )


def identity(n: int) -> GF2Matrix:
    """The n-by-n identity matrix."""
    return GF2Matrix(n, n, [1 << i for i in range(n)])


def zeros(nrows: int, ncols: int) -> GF2Matrix:
    """An all-zero matrix."""
    return GF2Matrix(nrows, ncols)


def vandermonde_rows(matrix: GF2Matrix, count: int) -> List[GF2Matrix]:
    """Return ``[I, A, A^2, ..., A^(count-1)]`` computed incrementally."""
    if matrix.nrows != matrix.ncols:
        raise ValueError("vandermonde_rows requires a square matrix")
    out = [identity(matrix.ncols)]
    for _ in range(1, count):
        out.append(out[-1] @ matrix)
    return out
