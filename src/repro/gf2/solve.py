"""Solving linear systems over GF(2), incrementally.

LFSR reseeding computes a seed by solving a linear system whose unknowns are
the ``n`` initial LFSR cells and whose equations come from the specified bits
of the test cubes encoded into the seed (see Koenemann, ETC 1991).  The
window-based algorithm of the paper adds test cubes to a seed *one at a time*,
and for every candidate (cube, window-position) pair it must know

* whether the candidate's equations are *consistent* with everything already
  encoded in the seed, and
* how many previously free seed variables the candidate would pin down
  (the "replaced variables" tie-break criterion of Section 2).

The :class:`IncrementalSolver` supports exactly this usage: it keeps the
accepted equations in reduced row-echelon form (augmented with the right-hand
side), offers a *trial* mode that evaluates a batch of equations without
committing them, and can commit a previously evaluated batch in O(batch)
row operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.gf2.bitvec import BitVector


@dataclass(frozen=True)
class Equation:
    """A single linear equation ``coeffs . x = rhs`` over GF(2).

    ``coeffs`` is the packed integer of coefficient bits (bit ``i`` multiplies
    variable ``x_i``) and ``rhs`` is 0 or 1.
    """

    coeffs: int
    rhs: int

    def __post_init__(self):
        if self.rhs not in (0, 1):
            raise ValueError("rhs must be 0 or 1")

    @classmethod
    def from_bitvector(cls, coeffs: BitVector, rhs: int) -> "Equation":
        return cls(coeffs.value, rhs)


class SolveOutcome(Enum):
    """Result of evaluating a batch of equations against the current basis."""

    CONSISTENT = "consistent"
    INCONSISTENT = "inconsistent"


@dataclass
class TrialResult:
    """Outcome of :meth:`IncrementalSolver.try_equations`.

    Attributes
    ----------
    outcome:
        Whether the batch is consistent with the already committed equations.
    new_pivots:
        Number of previously free variables the batch would pin down (i.e. the
        rank increase).  This is the "replaced variables" count used by the
        seed-computation tie-breaks.
    reduced_rows:
        The non-zero reduced augmented rows, ready to be committed.
    """

    outcome: SolveOutcome
    new_pivots: int
    reduced_rows: List[int] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return self.outcome is SolveOutcome.CONSISTENT


class IncrementalSolver:
    """Reduced row-echelon basis of GF(2) equations with trial evaluation.

    The augmented representation packs the right-hand side as bit ``n`` of each
    row (``n`` = number of variables), so a row reduces to "0 = 1" exactly when
    its value equals ``1 << n``.
    """

    def __init__(self, num_variables: int):
        if num_variables <= 0:
            raise ValueError("num_variables must be positive")
        self._n = num_variables
        self._rhs_bit = 1 << num_variables
        # pivot column -> augmented row with that pivot
        self._pivots: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return self._n

    @property
    def rank(self) -> int:
        """Number of pinned (pivot) variables."""
        return len(self._pivots)

    @property
    def free_variables(self) -> int:
        """Number of variables not yet pinned by any committed equation."""
        return self._n - len(self._pivots)

    def pivot_columns(self) -> List[int]:
        """Sorted list of pivot variable indices."""
        return sorted(self._pivots)

    def copy(self) -> "IncrementalSolver":
        """An independent copy of the solver state."""
        clone = IncrementalSolver(self._n)
        clone._pivots = dict(self._pivots)
        return clone

    # ------------------------------------------------------------------
    # Core reduction
    # ------------------------------------------------------------------
    def _reduce(self, aug: int, extra: Optional[Dict[int, int]] = None) -> int:
        """Reduce an augmented row against the committed (and extra) pivots."""
        pivots = self._pivots
        coeffs = aug & ~self._rhs_bit
        while coeffs:
            high = coeffs.bit_length() - 1
            row = pivots.get(high)
            if row is None and extra is not None:
                row = extra.get(high)
            if row is None:
                break
            aug ^= row
            coeffs = aug & ~self._rhs_bit
        return aug

    def _fully_reduced_rows(self) -> Dict[int, int]:
        """Pivot rows with every *other* pivot column eliminated.

        Stored rows are only leading-bit reduced, so a row may still reference
        lower pivot columns.  Processing pivots in ascending order lets each
        row be cleaned with already-cleaned lower rows, after which every row
        contains its own pivot column, free columns and the RHS bit only.
        """
        reduced: Dict[int, int] = {}
        for pivot in sorted(self._pivots):
            row = self._pivots[pivot]
            rest = row & ~self._rhs_bit & ~(1 << pivot)
            for lower in sorted(reduced, reverse=True):
                if (rest >> lower) & 1:
                    row ^= reduced[lower]
                    rest = row & ~self._rhs_bit & ~(1 << pivot)
            reduced[pivot] = row
        return reduced

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def try_equations(self, equations: Iterable[Equation]) -> TrialResult:
        """Evaluate a batch of equations without committing them."""
        extra: Dict[int, int] = {}
        for eq in equations:
            aug = (eq.coeffs & (self._rhs_bit - 1)) | (self._rhs_bit if eq.rhs else 0)
            aug = self._reduce(aug, extra)
            if aug == self._rhs_bit:
                return TrialResult(SolveOutcome.INCONSISTENT, 0, [])
            if aug == 0:
                continue
            pivot = (aug & ~self._rhs_bit).bit_length() - 1
            extra[pivot] = aug
        return TrialResult(
            SolveOutcome.CONSISTENT, len(extra), list(extra.values())
        )

    def try_masks(self, masks_and_rhs: Iterable[Tuple[int, int]]) -> TrialResult:
        """Fast-path version of :meth:`try_equations` taking packed pairs."""
        extra: Dict[int, int] = {}
        rhs_bit = self._rhs_bit
        for coeffs, rhs in masks_and_rhs:
            aug = (coeffs & (rhs_bit - 1)) | (rhs_bit if rhs else 0)
            aug = self._reduce(aug, extra)
            if aug == rhs_bit:
                return TrialResult(SolveOutcome.INCONSISTENT, 0, [])
            if aug == 0:
                continue
            pivot = (aug & ~rhs_bit).bit_length() - 1
            extra[pivot] = aug
        return TrialResult(
            SolveOutcome.CONSISTENT, len(extra), list(extra.values())
        )

    def commit(self, trial: TrialResult) -> None:
        """Commit a previously evaluated consistent batch.

        The trial must have been produced by :meth:`try_equations` /
        :meth:`try_masks` on the *current* solver state (no other commits in
        between); the reduced rows are inserted directly.
        """
        if not trial.consistent:
            raise ValueError("cannot commit an inconsistent trial")
        for aug in trial.reduced_rows:
            row = self._reduce(aug)
            if row == self._rhs_bit:
                raise ValueError("trial is stale: row became inconsistent")
            if row == 0:
                continue
            pivot = (row & ~self._rhs_bit).bit_length() - 1
            self._pivots[pivot] = row

    def add_equations(self, equations: Iterable[Equation]) -> TrialResult:
        """Evaluate and, if consistent, immediately commit a batch."""
        trial = self.try_equations(equations)
        if trial.consistent:
            self.commit(trial)
        return trial

    def solution(self, free_fill: Optional[Sequence[int]] = None) -> BitVector:
        """An explicit solution of the committed system.

        Free variables are filled with ``free_fill`` values (cycled) or zeros.
        The returned vector is the LFSR *seed* in the reseeding application.
        """
        fill = list(free_fill) if free_fill else [0]
        if any(b not in (0, 1) for b in fill):
            raise ValueError("free_fill entries must be 0 or 1")
        value = 0
        # Assign free variables first.
        pivot_cols = set(self._pivots)
        fill_idx = 0
        for var in range(self._n):
            if var not in pivot_cols:
                if fill[fill_idx % len(fill)]:
                    value |= 1 << var
                fill_idx += 1
        # Assign pivot variables.  Each fully reduced row references only its
        # own pivot and free columns, so the already-assigned free values
        # determine the pivot bit directly.
        for pivot, row in self._fully_reduced_rows().items():
            rhs = 1 if row & self._rhs_bit else 0
            rest = row & ~self._rhs_bit & ~(1 << pivot)
            acc = rhs ^ ((rest & value).bit_count() & 1)
            if acc:
                value |= 1 << pivot
            else:
                value &= ~(1 << pivot)
        return BitVector(self._n, value)

    def is_determined(self, var: int) -> bool:
        """True when variable ``var`` is a pivot (pinned by the system)."""
        return var in self._pivots

    def check_solution(self, candidate: BitVector, equations: Iterable[Equation]) -> bool:
        """Verify that ``candidate`` satisfies every given equation."""
        value = candidate.value
        for eq in equations:
            if ((eq.coeffs & value).bit_count() & 1) != eq.rhs:
                return False
        return True


def gaussian_solve(
    equations: Sequence[Equation], num_variables: int
) -> Optional[BitVector]:
    """One-shot solve of a batch of equations; ``None`` if inconsistent."""
    solver = IncrementalSolver(num_variables)
    trial = solver.add_equations(equations)
    if not trial.consistent:
        return None
    return solver.solution()
