"""Solving linear systems over GF(2), incrementally.

LFSR reseeding computes a seed by solving a linear system whose unknowns are
the ``n`` initial LFSR cells and whose equations come from the specified bits
of the test cubes encoded into the seed (see Koenemann, ETC 1991).  The
window-based algorithm of the paper adds test cubes to a seed *one at a time*,
and for every candidate (cube, window-position) pair it must know

* whether the candidate's equations are *consistent* with everything already
  encoded in the seed, and
* how many previously free seed variables the candidate would pin down
  (the "replaced variables" tie-break criterion of Section 2).

The :class:`IncrementalSolver` supports exactly this usage: it keeps the
accepted equations in reduced row-echelon form (augmented with the right-hand
side), offers a *trial* mode that evaluates a batch of equations without
committing them, and can commit a previously evaluated batch in O(batch)
row operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.gf2.bitvec import BitVector

#: Below this total row count the packed-``uint64`` batch path costs more
#: than it saves and :meth:`IncrementalSolver.try_positions` falls back to
#: the big-int loop (tuned with ``repro bench``).
_BATCH_MIN_ROWS = 64


class _SolverStats:
    """Process-wide solver activity counters (telemetry feed).

    Solvers are created per seed deep inside the encoder, so per-instance
    counters would never surface; a module-level accumulator incremented in
    the leaf methods only (``try_augmented``, the packed batch loop,
    ``commit``) lets the pipeline snapshot/delta around an encode call and
    attribute the work without threading a registry through the encoder.
    The increments are single attribute adds -- negligible next to the row
    reductions they count.
    """

    __slots__ = ("trials", "batches", "commits", "pivots")

    def __init__(self):
        self.trials = 0  # candidate systems evaluated
        self.batches = 0  # vectorized packed-batch passes
        self.commits = 0  # committed trials
        self.pivots = 0  # pivot rows inserted (rank growth)


SOLVER_STATS = _SolverStats()


def solver_stats_snapshot() -> Dict[str, int]:
    """Flat copy of the process-wide solver counters."""
    return {
        "solver_trials": SOLVER_STATS.trials,
        "solver_batches": SOLVER_STATS.batches,
        "solver_commits": SOLVER_STATS.commits,
        "solver_pivots": SOLVER_STATS.pivots,
    }

def _pack_ints_to_words(rows: Sequence[int], num_words: int) -> np.ndarray:
    """Pack big-int rows into a ``(len(rows), num_words)`` uint64 array."""
    if num_words == 1:
        return np.fromiter(rows, dtype=np.uint64, count=len(rows)).reshape(-1, 1)
    nbytes = num_words * 8
    buffer = b"".join(row.to_bytes(nbytes, "little") for row in rows)
    return np.frombuffer(buffer, dtype="<u8").reshape(len(rows), num_words).copy()


def _words_to_ints(words: np.ndarray) -> List[int]:
    """Inverse of :func:`_pack_ints_to_words` (row-wise)."""
    if words.shape[1] == 1:
        return words[:, 0].tolist()
    data = words.astype("<u8", copy=False).tobytes()
    nbytes = words.shape[1] * 8
    return [
        int.from_bytes(data[i * nbytes : (i + 1) * nbytes], "little")
        for i in range(words.shape[0])
    ]


@dataclass(frozen=True)
class Equation:
    """A single linear equation ``coeffs . x = rhs`` over GF(2).

    ``coeffs`` is the packed integer of coefficient bits (bit ``i`` multiplies
    variable ``x_i``) and ``rhs`` is 0 or 1.
    """

    coeffs: int
    rhs: int

    def __post_init__(self):
        if self.rhs not in (0, 1):
            raise ValueError("rhs must be 0 or 1")

    @classmethod
    def from_bitvector(cls, coeffs: BitVector, rhs: int) -> "Equation":
        return cls(coeffs.value, rhs)


class SolveOutcome(Enum):
    """Result of evaluating a batch of equations against the current basis."""

    CONSISTENT = "consistent"
    INCONSISTENT = "inconsistent"


@dataclass
class TrialResult:
    """Outcome of :meth:`IncrementalSolver.try_equations`.

    Attributes
    ----------
    outcome:
        Whether the batch is consistent with the already committed equations.
    new_pivots:
        Number of previously free variables the batch would pin down (i.e. the
        rank increase).  This is the "replaced variables" count used by the
        seed-computation tie-breaks.
    reduced_rows:
        The non-zero reduced augmented rows, ready to be committed.
    """

    outcome: SolveOutcome
    new_pivots: int
    reduced_rows: List[int] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return self.outcome is SolveOutcome.CONSISTENT


class IncrementalSolver:
    """Reduced row-echelon basis of GF(2) equations with trial evaluation.

    The augmented representation packs the right-hand side as bit ``n`` of each
    row (``n`` = number of variables), so a row reduces to "0 = 1" exactly when
    its value equals ``1 << n``.
    """

    def __init__(self, num_variables: int):
        if num_variables <= 0:
            raise ValueError("num_variables must be positive")
        self._n = num_variables
        self._rhs_bit = 1 << num_variables
        # pivot column -> augmented row with that pivot.  Invariant: every
        # stored row is *fully* reduced -- it contains its own pivot column,
        # free columns and the RHS bit only.  :meth:`commit` maintains the
        # invariant incrementally (back-substitution of each new pivot), so
        # the RREF basis is never recomputed from scratch.
        self._pivots: Dict[int, int] = {}
        # Bumped on every state change; lets derived caches (the packed
        # fully-reduced basis, callers' residual caches) know when to refresh.
        self._epoch = 0
        self._pivot_mask = 0
        self._packed_basis: Optional[Tuple[int, np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return self._n

    @property
    def rank(self) -> int:
        """Number of pinned (pivot) variables."""
        return len(self._pivots)

    @property
    def free_variables(self) -> int:
        """Number of variables not yet pinned by any committed equation."""
        return self._n - len(self._pivots)

    @property
    def epoch(self) -> int:
        """Monotonic counter of committed state changes.

        Residuals produced by a trial stay *valid trial inputs* forever (the
        basis only grows), but reducing them again is only worthwhile when
        the epoch has advanced; callers use this to key their caches.
        """
        return self._epoch

    @property
    def pivot_mask(self) -> int:
        """OR of ``1 << pivot`` over all committed pivot columns.

        Re-trying a cached residual batch is the identity whenever the batch
        support does not intersect the pivot columns committed since the
        batch was produced -- callers compare snapshots of this mask to skip
        such no-op trials entirely.
        """
        return self._pivot_mask

    def pivot_columns(self) -> List[int]:
        """Sorted list of pivot variable indices."""
        return sorted(self._pivots)

    def copy(self) -> "IncrementalSolver":
        """An independent copy of the solver state."""
        clone = IncrementalSolver(self._n)
        clone._pivots = dict(self._pivots)
        clone._epoch = self._epoch
        clone._pivot_mask = self._pivot_mask
        return clone

    # ------------------------------------------------------------------
    # Core reduction
    # ------------------------------------------------------------------
    def _reduce(self, aug: int, extra: Optional[Dict[int, int]] = None) -> int:
        """Reduce an augmented row against the committed (and extra) pivots."""
        pivots = self._pivots
        coeffs = aug & ~self._rhs_bit
        while coeffs:
            high = coeffs.bit_length() - 1
            row = pivots.get(high)
            if row is None and extra is not None:
                row = extra.get(high)
            if row is None:
                break
            aug ^= row
            coeffs = aug & ~self._rhs_bit
        return aug

    def _fully_reduced_rows(self) -> Dict[int, int]:
        """Pivot rows with every *other* pivot column eliminated.

        The stored basis *is* fully reduced (:meth:`commit` back-substitutes
        every new pivot into the existing rows instead of leaving them
        leading-bit reduced), so this is a constant-time accessor rather
        than the per-epoch O(rank^2) RREF rebuild it used to be.  Treat the
        returned mapping as read-only.
        """
        return self._pivots

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def try_equations(self, equations: Iterable[Equation]) -> TrialResult:
        """Evaluate a batch of equations without committing them."""
        rhs_bit = self._rhs_bit
        return self.try_augmented(
            (eq.coeffs & (rhs_bit - 1)) | (rhs_bit if eq.rhs else 0)
            for eq in equations
        )

    def try_masks(self, masks_and_rhs: Iterable[Tuple[int, int]]) -> TrialResult:
        """Fast-path version of :meth:`try_equations` taking packed pairs."""
        rhs_bit = self._rhs_bit
        return self.try_augmented(
            (coeffs & (rhs_bit - 1)) | (rhs_bit if rhs else 0)
            for coeffs, rhs in masks_and_rhs
        )

    def try_augmented(self, aug_rows: Iterable[int]) -> TrialResult:
        """Trial evaluation of pre-augmented rows (RHS packed as bit ``n``).

        Accepts the residual rows of an earlier :class:`TrialResult`
        unchanged: residuals are already reduced against the basis of the
        epoch that produced them, so re-trying them after further commits
        only pays for the *newly* committed pivots -- this is what makes the
        encoder's per-epoch residual cache incremental.
        """
        SOLVER_STATS.trials += 1
        extra: Dict[int, int] = {}
        rhs_bit = self._rhs_bit
        for aug in aug_rows:
            aug = self._reduce(aug, extra)
            if aug == rhs_bit:
                return TrialResult(SolveOutcome.INCONSISTENT, 0, [])
            if aug == 0:
                continue
            pivot = (aug & ~rhs_bit).bit_length() - 1
            extra[pivot] = aug
        return TrialResult(
            SolveOutcome.CONSISTENT, len(extra), list(extra.values())
        )

    # ------------------------------------------------------------------
    # Batched trials (numpy-packed uint64 fast path)
    # ------------------------------------------------------------------
    def _packed_full_basis(self) -> Tuple[np.ndarray, np.ndarray]:
        """The fully reduced basis as ``(pivot_columns, uint64 row blocks)``.

        Cached per epoch; both arrays are treated as immutable by callers.
        """
        cached = self._packed_basis
        if cached is not None and cached[0] == self._epoch:
            return cached[1], cached[2]
        reduced = self._fully_reduced_rows()
        pivot_cols = np.array(sorted(reduced), dtype=np.int64)
        num_words = (self._n + 1 + 63) // 64
        rows = _pack_ints_to_words([reduced[p] for p in sorted(reduced)], num_words)
        self._packed_basis = (self._epoch, pivot_cols, rows)
        return pivot_cols, rows

    def try_positions(
        self, position_rows: Sequence[Sequence[int]]
    ) -> List[TrialResult]:
        """Trial-evaluate many candidate systems against the same basis.

        ``position_rows[v]`` is the augmented-row batch of candidate ``v``
        (for the window encoder: one batch per window position of a cube).
        Equivalent to ``[self.try_augmented(rows) for rows in position_rows]``
        but runs the whole computation -- committed-basis reduction *and* the
        per-candidate elimination -- as vectorized passes over numpy-packed
        uint64 row blocks.  Tiny or ragged batches fall back to the big-int
        path.
        """
        num_candidates = len(position_rows)
        if num_candidates == 0:
            return []
        rows_each = len(position_rows[0])
        if rows_each == 0 or any(len(rows) != rows_each for rows in position_rows):
            return [self.try_augmented(rows) for rows in position_rows]
        num_words = (self._n + 1 + 63) // 64
        flat: List[int] = []
        for rows in position_rows:
            flat.extend(rows)
        return self.try_positions_packed(
            _pack_ints_to_words(flat, num_words), rows_each
        )

    def try_positions_packed(
        self, words: np.ndarray, rows_each: int
    ) -> List[TrialResult]:
        """:meth:`try_positions` on pre-packed uint64 row blocks.

        ``words`` holds the augmented rows of all candidates, ``rows_each``
        consecutive rows per candidate; the array is not modified (callers
        cache it across seeds -- see
        :meth:`repro.encoding.equations.EquationSystem.cube_position_words`).
        """
        total_rows = words.shape[0]
        if rows_each <= 0 or total_rows % rows_each:
            raise ValueError(
                f"row count {total_rows} is not a multiple of rows_each "
                f"({rows_each})"
            )
        num_candidates = total_rows // rows_each
        if total_rows < _BATCH_MIN_ROWS:
            ints = _words_to_ints(words)
            return [
                self.try_augmented(ints[base : base + rows_each])
                for base in range(0, total_rows, rows_each)
            ]
        SOLVER_STATS.batches += 1
        SOLVER_STATS.trials += num_candidates
        words = words.copy()

        # Pass 1: eliminate every committed pivot column.  The basis is kept
        # fully reduced (each pivot column appears in exactly one basis row),
        # so the eliminations are independent and order does not matter; the
        # result is the canonical residual with *all* pivot columns zeroed.
        if self._pivots:
            pivot_cols, basis = self._packed_full_basis()
            word_index = pivot_cols >> 6
            bit_offset = (pivot_cols & 63).astype(np.uint64)
            for j in range(len(pivot_cols)):
                selected = (words[:, word_index[j]] >> bit_offset[j]) & np.uint64(1)
                words ^= selected[:, None] * basis[j]
        reduced_flat = _words_to_ints(words)

        # Pass 2: per-candidate elimination on the residuals.  Committed
        # pivot columns are gone, so only the candidate's own (few) batch
        # pivots participate; the loop is ``try_augmented`` inlined to skip
        # the per-row call overhead, which dominates at this batch size.
        rhs_bit = self._rhs_bit
        not_rhs = ~rhs_bit
        results: List[TrialResult] = []
        base = 0
        for _ in range(num_candidates):
            extra: Dict[int, int] = {}
            consistent = True
            for aug in reduced_flat[base : base + rows_each]:
                coeffs = aug & not_rhs
                while coeffs:
                    row = extra.get(coeffs.bit_length() - 1)
                    if row is None:
                        break
                    aug ^= row
                    coeffs = aug & not_rhs
                if coeffs:
                    extra[coeffs.bit_length() - 1] = aug
                elif aug:
                    consistent = False
                    break
            base += rows_each
            if consistent:
                results.append(
                    TrialResult(
                        SolveOutcome.CONSISTENT, len(extra), list(extra.values())
                    )
                )
            else:
                results.append(TrialResult(SolveOutcome.INCONSISTENT, 0, []))
        return results

    def commit(self, trial: TrialResult) -> None:
        """Commit a previously evaluated consistent batch.

        The trial must have been produced by :meth:`try_equations` /
        :meth:`try_masks` on the *current* solver state (no other commits in
        between); the reduced rows are inserted directly.

        Each inserted row is brought to fully reduced form (every other
        pivot column eliminated) and back-substituted into the existing
        basis rows, so the RREF invariant of ``_pivots`` is maintained
        incrementally -- O(rank) big-int XORs per new pivot instead of the
        O(rank^2) per-epoch rebuild the packed basis and
        :meth:`solution` used to pay.
        """
        if not trial.consistent:
            raise ValueError("cannot commit an inconsistent trial")
        rhs_bit = self._rhs_bit
        changed = False
        for aug in trial.reduced_rows:
            row = self._reduce(aug)
            if row == rhs_bit:
                raise ValueError("trial is stale: row became inconsistent")
            if row == 0:
                continue
            pivot = (row & ~rhs_bit).bit_length() - 1
            pivot_bit = 1 << pivot
            # Fully reduce: the leading-bit pass above only stops at the new
            # pivot; pivot columns below it may survive.  Basis rows carry
            # no bits above their own pivot, so each XOR strictly shrinks
            # the referenced-pivot set.
            rest = row & ~rhs_bit & ~pivot_bit & self._pivot_mask
            while rest:
                row ^= self._pivots[rest.bit_length() - 1]
                rest = row & ~rhs_bit & ~pivot_bit & self._pivot_mask
            # Back-substitute the new pivot out of every existing row.
            for other, other_row in self._pivots.items():
                if other_row & pivot_bit:
                    self._pivots[other] = other_row ^ row
            self._pivots[pivot] = row
            self._pivot_mask |= pivot_bit
            SOLVER_STATS.pivots += 1
            changed = True
        SOLVER_STATS.commits += 1
        if changed:
            self._epoch += 1

    def add_equations(self, equations: Iterable[Equation]) -> TrialResult:
        """Evaluate and, if consistent, immediately commit a batch."""
        trial = self.try_equations(equations)
        if trial.consistent:
            self.commit(trial)
        return trial

    def solution(self, free_fill: Optional[Sequence[int]] = None) -> BitVector:
        """An explicit solution of the committed system.

        Free variables are filled with ``free_fill`` values (cycled) or zeros.
        The returned vector is the LFSR *seed* in the reseeding application.
        """
        fill = list(free_fill) if free_fill else [0]
        if any(b not in (0, 1) for b in fill):
            raise ValueError("free_fill entries must be 0 or 1")
        value = 0
        # Assign free variables first.
        pivot_cols = set(self._pivots)
        fill_idx = 0
        for var in range(self._n):
            if var not in pivot_cols:
                if fill[fill_idx % len(fill)]:
                    value |= 1 << var
                fill_idx += 1
        # Assign pivot variables.  Each fully reduced row references only its
        # own pivot and free columns, so the already-assigned free values
        # determine the pivot bit directly.
        for pivot, row in self._fully_reduced_rows().items():
            rhs = 1 if row & self._rhs_bit else 0
            rest = row & ~self._rhs_bit & ~(1 << pivot)
            acc = rhs ^ ((rest & value).bit_count() & 1)
            if acc:
                value |= 1 << pivot
            else:
                value &= ~(1 << pivot)
        return BitVector(self._n, value)

    def is_determined(self, var: int) -> bool:
        """True when variable ``var`` is a pivot (pinned by the system)."""
        return var in self._pivots

    def check_solution(self, candidate: BitVector, equations: Iterable[Equation]) -> bool:
        """Verify that ``candidate`` satisfies every given equation."""
        value = candidate.value
        for eq in equations:
            if ((eq.coeffs & value).bit_count() & 1) != eq.rhs:
                return False
        return True


def gaussian_solve(
    equations: Sequence[Equation], num_variables: int
) -> Optional[BitVector]:
    """One-shot solve of a batch of equations; ``None`` if inconsistent."""
    solver = IncrementalSolver(num_variables)
    trial = solver.add_equations(equations)
    if not trial.consistent:
        return None
    return solver.solution()
