"""Feedback polynomials for LFSRs.

LFSR reseeding wants maximum-length (primitive) characteristic polynomials so
that a window of ``L`` vectors never revisits a state and the pseudo-random
fill looks uniform.  This module provides:

* :data:`PRIMITIVE_TAPS` -- a curated table of feedback tap sets for degrees
  2..100, taken from the standard maximal-length LFSR tap tables (the same
  tables circulated in Xilinx XAPP 052 and textbooks).  Taps are given in the
  conventional 1-indexed form; entry ``[n, a, b, c]`` denotes the polynomial
  ``x^n + x^a + x^b + x^c + 1``.
* :func:`primitive_polynomial` -- return the table polynomial for a degree,
  verified irreducible; if the table entry is missing or fails verification,
  fall back to searching for an irreducible polynomial (irreducible
  non-primitive polynomials still have huge periods and are perfectly adequate
  for reseeding windows of a few thousand states).
* :func:`irreducible_polynomial` -- deterministic search for an irreducible
  polynomial of a given degree.
* :func:`default_feedback_polynomial` -- the policy used by the rest of the
  library (table first, search fallback).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.gf2.polynomial import GF2Polynomial

# Degree -> feedback taps (1-indexed, highest tap == degree implied in poly).
# Entry [a, b, ...] for degree n denotes x^n + x^a + x^b + ... + 1.
PRIMITIVE_TAPS: Dict[int, Tuple[int, ...]] = {
    2: (1,),
    3: (2,),
    4: (3,),
    5: (3,),
    6: (5,),
    7: (6,),
    8: (6, 5, 4),
    9: (5,),
    10: (7,),
    11: (9,),
    12: (6, 4, 1),
    13: (4, 3, 1),
    14: (5, 3, 1),
    15: (14,),
    16: (15, 13, 4),
    17: (14,),
    18: (11,),
    19: (6, 2, 1),
    20: (17,),
    21: (19,),
    22: (21,),
    23: (18,),
    24: (23, 22, 17),
    25: (22,),
    26: (6, 2, 1),
    27: (5, 2, 1),
    28: (25,),
    29: (27,),
    30: (6, 4, 1),
    31: (28,),
    32: (22, 2, 1),
    33: (20,),
    34: (27, 2, 1),
    35: (33,),
    36: (25,),
    37: (5, 4, 3, 2, 1),
    38: (6, 5, 1),
    39: (35,),
    40: (38, 21, 19),
    41: (38,),
    42: (41, 20, 19),
    43: (42, 38, 37),
    44: (43, 18, 17),
    45: (44, 42, 41),
    46: (45, 26, 25),
    47: (42,),
    48: (47, 21, 20),
    49: (40,),
    50: (49, 24, 23),
    51: (50, 36, 35),
    52: (49,),
    53: (52, 38, 37),
    54: (53, 18, 17),
    55: (31,),
    56: (55, 35, 34),
    57: (50,),
    58: (39,),
    59: (58, 38, 37),
    60: (59,),
    61: (60, 46, 45),
    62: (61, 6, 5),
    63: (62,),
    64: (63, 61, 60),
    65: (47,),
    66: (65, 57, 56),
    67: (66, 58, 57),
    68: (59,),
    69: (67, 42, 40),
    70: (69, 55, 54),
    71: (65,),
    72: (66, 25, 19),
    73: (48,),
    74: (73, 59, 58),
    75: (74, 65, 64),
    76: (75, 41, 40),
    77: (76, 47, 46),
    78: (77, 59, 58),
    79: (70,),
    80: (79, 43, 42),
    81: (77,),
    82: (79, 47, 44),
    83: (82, 38, 37),
    84: (71,),
    85: (84, 58, 57),
    86: (85, 74, 73),
    87: (74,),
    88: (87, 17, 16),
    89: (51,),
    90: (89, 72, 71),
    91: (90, 8, 7),
    92: (91, 80, 79),
    93: (91,),
    94: (73,),
    95: (84,),
    96: (94, 49, 47),
    97: (91,),
    98: (87,),
    99: (97, 54, 52),
    100: (63,),
}


def polynomial_from_taps(degree: int, taps: Tuple[int, ...]) -> GF2Polynomial:
    """Build ``x^degree + sum(x^tap) + 1`` from a tap tuple."""
    exponents = [degree, 0] + list(taps)
    return GF2Polynomial.from_exponents(exponents)


def irreducible_polynomial(degree: int, start: int = 0) -> GF2Polynomial:
    """Deterministically find an irreducible polynomial of the given degree.

    Candidates ``x^degree + (low-order part)`` are enumerated in increasing
    order of the low-order part, starting after ``start``; the first
    irreducible one is returned.
    """
    if degree < 1:
        raise ValueError("degree must be at least 1")
    if degree == 1:
        return GF2Polynomial.from_exponents([1, 0])  # x + 1
    high = 1 << degree
    # Low part must be odd (constant term 1) otherwise divisible by x.
    low = max(1, start | 1)
    while low < high:
        candidate = GF2Polynomial(high | low)
        if candidate.is_irreducible():
            return candidate
        low += 2
    raise RuntimeError(f"no irreducible polynomial of degree {degree} found")


def primitive_polynomial(degree: int) -> GF2Polynomial:
    """A maximum-length feedback polynomial for the given degree.

    The curated table entry is used when it verifies as irreducible (a cheap
    guard against transcription errors); otherwise an irreducible polynomial
    is searched.  For degrees up to 20 primitivity of the table entry is
    verified exhaustively.
    """
    taps = PRIMITIVE_TAPS.get(degree)
    if taps is not None:
        poly = polynomial_from_taps(degree, taps)
        if poly.is_irreducible():
            if degree <= 20:
                if poly.is_primitive():
                    return poly
            else:
                return poly
    return irreducible_polynomial(degree)


def default_feedback_polynomial(degree: int) -> GF2Polynomial:
    """The feedback polynomial policy used across the library."""
    return primitive_polynomial(degree)


def known_degrees() -> List[int]:
    """Degrees covered by the curated tap table."""
    return sorted(PRIMITIVE_TAPS)
