"""Polynomials over GF(2).

Characteristic (feedback) polynomials of LFSRs live here.  A polynomial is
stored as a packed integer where bit ``i`` is the coefficient of ``x^i``, e.g.
``x^4 + x + 1`` is ``0b10011``.

The module provides multiplication, division with remainder, gcd, modular
exponentiation of ``x`` (used by the irreducibility test) and a Rabin-style
irreducibility test, all with plain integer bit tricks so that degrees in the
hundreds remain instantaneous.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def _poly_degree(value: int) -> int:
    """Degree of a packed polynomial; -1 for the zero polynomial."""
    return value.bit_length() - 1


def _poly_mul(a: int, b: int) -> int:
    """Carry-less (GF(2)) multiplication of packed polynomials."""
    result = 0
    shift = 0
    while b:
        if b & 1:
            result ^= a << shift
        b >>= 1
        shift += 1
    return result


def _poly_divmod(a: int, b: int) -> Tuple[int, int]:
    """Quotient and remainder of packed polynomial division."""
    if b == 0:
        raise ZeroDivisionError("polynomial division by zero")
    deg_b = _poly_degree(b)
    quotient = 0
    remainder = a
    while True:
        deg_r = _poly_degree(remainder)
        if deg_r < deg_b:
            break
        shift = deg_r - deg_b
        quotient ^= 1 << shift
        remainder ^= b << shift
    return quotient, remainder


def _poly_mod(a: int, b: int) -> int:
    return _poly_divmod(a, b)[1]


def _poly_gcd(a: int, b: int) -> int:
    while b:
        a, b = b, _poly_mod(a, b)
    return a


def _poly_mulmod(a: int, b: int, modulus: int) -> int:
    return _poly_mod(_poly_mul(a, b), modulus)


def _poly_powmod_x(exponent: int, modulus: int) -> int:
    """Compute ``x^exponent mod modulus`` by repeated squaring."""
    result = 1  # the polynomial "1"
    base = 2  # the polynomial "x"
    e = exponent
    while e:
        if e & 1:
            result = _poly_mulmod(result, base, modulus)
        base = _poly_mulmod(base, base, modulus)
        e >>= 1
    return result


class GF2Polynomial:
    """A polynomial over GF(2) in packed-integer representation."""

    __slots__ = ("_value",)

    def __init__(self, value: int):
        if value < 0:
            raise ValueError("polynomial value must be non-negative")
        self._value = value

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_exponents(cls, exponents: Iterable[int]) -> "GF2Polynomial":
        """Build from the exponents with non-zero coefficients.

        ``from_exponents([4, 1, 0])`` is ``x^4 + x + 1``.
        """
        value = 0
        for e in exponents:
            if e < 0:
                raise ValueError("exponents must be non-negative")
            value ^= 1 << e
        return cls(value)

    @classmethod
    def from_coefficients(cls, coefficients: Sequence[int]) -> "GF2Polynomial":
        """Build from a coefficient list, index ``i`` multiplying ``x^i``."""
        value = 0
        for i, c in enumerate(coefficients):
            if c not in (0, 1):
                raise ValueError(f"coefficient {i} is {c!r}, expected 0 or 1")
            if c:
                value |= 1 << i
        return cls(value)

    @classmethod
    def zero(cls) -> "GF2Polynomial":
        return cls(0)

    @classmethod
    def one(cls) -> "GF2Polynomial":
        return cls(1)

    @classmethod
    def x(cls) -> "GF2Polynomial":
        return cls(2)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def value(self) -> int:
        """Packed integer representation."""
        return self._value

    @property
    def degree(self) -> int:
        """Degree of the polynomial; -1 for the zero polynomial."""
        return _poly_degree(self._value)

    def exponents(self) -> List[int]:
        """Exponents with non-zero coefficients, descending."""
        out = []
        v = self._value
        while v:
            low = v & -v
            out.append(low.bit_length() - 1)
            v ^= low
        return sorted(out, reverse=True)

    def coefficient(self, exponent: int) -> int:
        """Coefficient of ``x^exponent``."""
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        return (self._value >> exponent) & 1

    def weight(self) -> int:
        """Number of non-zero terms."""
        return self._value.bit_count()

    def is_zero(self) -> bool:
        return self._value == 0

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "GF2Polynomial") -> "GF2Polynomial":
        return GF2Polynomial(self._value ^ other._value)

    __sub__ = __add__
    __xor__ = __add__

    def __mul__(self, other: "GF2Polynomial") -> "GF2Polynomial":
        return GF2Polynomial(_poly_mul(self._value, other._value))

    def __mod__(self, other: "GF2Polynomial") -> "GF2Polynomial":
        return GF2Polynomial(_poly_mod(self._value, other._value))

    def __floordiv__(self, other: "GF2Polynomial") -> "GF2Polynomial":
        return GF2Polynomial(_poly_divmod(self._value, other._value)[0])

    def divmod(self, other: "GF2Polynomial") -> Tuple["GF2Polynomial", "GF2Polynomial"]:
        q, r = _poly_divmod(self._value, other._value)
        return GF2Polynomial(q), GF2Polynomial(r)

    def gcd(self, other: "GF2Polynomial") -> "GF2Polynomial":
        return GF2Polynomial(_poly_gcd(self._value, other._value))

    def evaluate(self, point: int) -> int:
        """Evaluate at a point of GF(2) (0 or 1)."""
        if point not in (0, 1):
            raise ValueError("point must be 0 or 1")
        if point == 0:
            return self._value & 1
        return self._value.bit_count() & 1

    # ------------------------------------------------------------------
    # Structure tests
    # ------------------------------------------------------------------
    def is_irreducible(self) -> bool:
        """Rabin irreducibility test over GF(2).

        ``p`` of degree ``n`` is irreducible iff ``x^(2^n) == x (mod p)`` and,
        for every prime divisor ``q`` of ``n``, ``gcd(x^(2^(n/q)) - x, p) = 1``.
        """
        n = self.degree
        if n <= 0:
            return False
        if n == 1:
            return True
        if not (self._value & 1):
            return False  # divisible by x
        modulus = self._value
        # x^(2^n) mod p must equal x.
        t = 2  # polynomial "x"
        for _ in range(n):
            t = _poly_mulmod(t, t, modulus)
        if t != 2:
            return False
        for q in _prime_divisors(n):
            k = n // q
            t = 2
            for _ in range(k):
                t = _poly_mulmod(t, t, modulus)
            if _poly_gcd(t ^ 2, modulus) != 1:
                return False
        return True

    def is_primitive(self, max_order_check: int = 1 << 22) -> bool:
        """Check primitivity by exhaustive order computation.

        Only feasible for moderate degrees (the state space ``2^n - 1`` is
        walked); for larger degrees the curated table in
        :mod:`repro.gf2.primitive` is trusted and only irreducibility is
        verified.  Raises :class:`ValueError` when the order walk would exceed
        ``max_order_check`` steps.
        """
        n = self.degree
        if n <= 0 or not self.is_irreducible():
            return False
        period = (1 << n) - 1
        if period > max_order_check:
            raise ValueError(
                f"primitivity check for degree {n} needs {period} steps; "
                f"raise max_order_check to allow it"
            )
        modulus = self._value
        t = 2
        for step in range(1, period):
            if t == 1:
                return False  # order divides step < period
            t = _poly_mulmod(t, 2, modulus)
        return t == 1

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GF2Polynomial):
            return NotImplemented
        return self._value == other._value

    def __hash__(self) -> int:
        return hash(("GF2Polynomial", self._value))

    def __repr__(self) -> str:
        return f"GF2Polynomial({self})"

    def __str__(self) -> str:
        if self._value == 0:
            return "0"
        terms = []
        for e in self.exponents():
            if e == 0:
                terms.append("1")
            elif e == 1:
                terms.append("x")
            else:
                terms.append(f"x^{e}")
        return " + ".join(terms)


def _prime_divisors(n: int) -> List[int]:
    """Distinct prime divisors of a positive integer."""
    out = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            out.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        out.append(n)
    return out
