"""Packed bit vectors over GF(2).

A :class:`BitVector` stores ``length`` bits packed into a single Python
integer.  Bit ``i`` of the vector is bit ``i`` of the integer, i.e. the least
significant bit is element 0.  Python integers give us arbitrary width,
constant-time XOR/AND, and a fast population count via ``int.bit_count`` --
which is exactly the profile the seed-computation inner loops need.

The class is immutable: every operation returns a new vector.  For the hot
loops of the encoder the raw integer masks are used directly (see
:mod:`repro.gf2.solve`), but the public API always exposes ``BitVector``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence


class BitVector:
    """An immutable vector of bits over GF(2).

    Parameters
    ----------
    length:
        Number of bits in the vector.
    value:
        Packed integer value.  Bits above ``length`` are masked off.
    """

    __slots__ = ("_length", "_value")

    def __init__(self, length: int, value: int = 0):
        if length < 0:
            raise ValueError("BitVector length must be non-negative")
        self._length = length
        self._value = value & ((1 << length) - 1) if length else 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "BitVector":
        """Build a vector from an iterable of 0/1 values (index 0 first)."""
        value = 0
        length = 0
        for i, bit in enumerate(bits):
            if bit not in (0, 1):
                raise ValueError(f"bit {i} is {bit!r}, expected 0 or 1")
            if bit:
                value |= 1 << i
            length += 1
        return cls(length, value)

    @classmethod
    def from_indices(cls, length: int, indices: Iterable[int]) -> "BitVector":
        """Build a vector with ones exactly at the given indices."""
        value = 0
        for idx in indices:
            if not 0 <= idx < length:
                raise IndexError(f"index {idx} out of range for length {length}")
            value |= 1 << idx
        return cls(length, value)

    @classmethod
    def ones(cls, length: int) -> "BitVector":
        """The all-ones vector of the given length."""
        return cls(length, (1 << length) - 1)

    @classmethod
    def unit(cls, length: int, index: int) -> "BitVector":
        """The standard basis vector ``e_index``."""
        if not 0 <= index < length:
            raise IndexError(f"index {index} out of range for length {length}")
        return cls(length, 1 << index)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of bits in the vector."""
        return self._length

    @property
    def value(self) -> int:
        """Packed integer value (bit i of the int is element i)."""
        return self._value

    def weight(self) -> int:
        """Hamming weight (number of ones)."""
        return self._value.bit_count()

    def is_zero(self) -> bool:
        """True when every element is 0."""
        return self._value == 0

    def support(self) -> List[int]:
        """Indices of the one-bits, ascending."""
        out = []
        v = self._value
        while v:
            low = v & -v
            out.append(low.bit_length() - 1)
            v ^= low
        return out

    def to_bits(self) -> List[int]:
        """The vector as a plain list of 0/1 ints."""
        return [(self._value >> i) & 1 for i in range(self._length)]

    # ------------------------------------------------------------------
    # Element access
    # ------------------------------------------------------------------
    def __getitem__(self, index: int) -> int:
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range for length {self._length}")
        return (self._value >> index) & 1

    def __iter__(self) -> Iterator[int]:
        for i in range(self._length):
            yield (self._value >> i) & 1

    def __len__(self) -> int:
        return self._length

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _check_length(self, other: "BitVector") -> None:
        if self._length != other._length:
            raise ValueError(
                f"length mismatch: {self._length} vs {other._length}"
            )

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_length(other)
        return BitVector(self._length, self._value ^ other._value)

    __add__ = __xor__  # addition over GF(2) is XOR

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_length(other)
        return BitVector(self._length, self._value & other._value)

    def dot(self, other: "BitVector") -> int:
        """Inner product over GF(2) (parity of the AND)."""
        self._check_length(other)
        return (self._value & other._value).bit_count() & 1

    def set(self, index: int, bit: int) -> "BitVector":
        """Return a copy with element ``index`` set to ``bit``."""
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range for length {self._length}")
        if bit:
            return BitVector(self._length, self._value | (1 << index))
        return BitVector(self._length, self._value & ~(1 << index))

    def concat(self, other: "BitVector") -> "BitVector":
        """Concatenate ``self`` (low indices) with ``other`` (high indices)."""
        return BitVector(
            self._length + other._length,
            self._value | (other._value << self._length),
        )

    def slice(self, start: int, stop: int) -> "BitVector":
        """Elements ``start..stop-1`` as a new vector."""
        if not 0 <= start <= stop <= self._length:
            raise IndexError(f"invalid slice [{start}:{stop}] for length {self._length}")
        width = stop - start
        mask = (1 << width) - 1
        return BitVector(width, (self._value >> start) & mask)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._length == other._length and self._value == other._value

    def __hash__(self) -> int:
        return hash((self._length, self._value))

    def __repr__(self) -> str:
        return f"BitVector('{self.to_string()}')"

    def to_string(self) -> str:
        """Bits as a string, element 0 first (e.g. ``'1011'``)."""
        return "".join(str((self._value >> i) & 1) for i in range(self._length))

    @classmethod
    def from_string(cls, text: str) -> "BitVector":
        """Parse a string of ``0``/``1`` characters (element 0 first)."""
        bits = []
        for ch in text:
            if ch not in "01":
                raise ValueError(f"invalid character {ch!r} in bit string")
            bits.append(int(ch))
        return cls.from_bits(bits)


def parity(value: int) -> int:
    """Parity (XOR of all bits) of a non-negative integer."""
    return value.bit_count() & 1
