"""IR verifiers: structural validation of netlists, plans and codegen.

Three static validators, each returning a list of human-readable problems
(empty = valid) so callers can aggregate, and a raising wrapper for the
hot hook in the compiled backend:

* :func:`verify_netlist` -- the :class:`~repro.circuits.netlist.Netlist`
  invariants re-checked from scratch (no trust in the cached topo order):
  driven nets, library-op arity, acyclicity, and coherence of the memoised
  evaluation order.  ``Netlist.__init__`` enforces most of this on
  construction; the verifier exists because plans, caches and tests hold
  netlists long after construction, and a corrupted instance (or a future
  in-place editing API) must be caught before a simulator trusts it.
* :func:`verify_packed_plan` -- the derived
  :class:`~repro.circuits.ternary.PackedPlan` arrays cross-checked against
  each other and against the netlist: topological levelization
  (``row_levels``/``num_levels``), def-before-use operand ordering, operand
  and fanout index bounds, and exact coherence of the ``fused_rows``,
  ``table_rows`` and ``reader_rows`` mirrors that the event engine's hot
  loops trust blindly.
* :func:`verify_generated_source` -- the compiled backend's generated
  Python AST-parsed and validated *before* ``exec()``: single-assignment
  net locals, def-before-use operand ordering, no name collisions with the
  template scope, per-net overlay targeting and output-word completeness.

The ``ir-verify`` lint rule runs all three over representative circuits on
every ``repro lint`` invocation, so a broken generator or plan builder
fails CI without any simulation running.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set

from repro.circuits.netlist import UNARY_GATES, Netlist
from repro.circuits.ternary import (
    OP_AND,
    OP_BUF,
    OP_OR,
    OP_XOR,
    PackedPlan,
    _F_BUF,
    _FUSED_2IN,
    _FUSED_3IN,
    _fused_tables,
    _OPCODE,
)
from repro.staticcheck.registry import Rule, Violation, register_rule


class IrVerificationError(ValueError):
    """A verifier found problems; ``problems`` holds one message each."""

    def __init__(self, subject: str, problems: Sequence[str]):
        self.subject = subject
        self.problems = list(problems)
        summary = "; ".join(self.problems[:3])
        more = f" (+{len(self.problems) - 3} more)" if len(self.problems) > 3 else ""
        super().__init__(f"{subject}: {summary}{more}")


# ----------------------------------------------------------------------
# Netlist
# ----------------------------------------------------------------------
def verify_netlist(netlist: Netlist) -> List[str]:
    """Structural problems of a netlist (empty list = valid).

    Reads the private ``_gates``/``_topo_order`` directly on purpose: the
    public accessors serve the *cached* evaluation order, and the whole
    point is to catch an instance whose cache no longer matches its gates.
    """
    problems: List[str] = []
    inputs = netlist.inputs
    gates: Dict = dict(netlist._gates)
    driven = set(inputs) | set(gates)

    for net in netlist.outputs:
        if net not in driven:
            problems.append(f"primary output {net!r} is undriven")
    for gate in gates.values():
        arity = len(gate.inputs)
        if gate.gate_type in UNARY_GATES:
            if arity != 1:
                problems.append(
                    f"gate {gate.output!r}: {gate.gate_type.value} takes "
                    f"exactly 1 input, has {arity}"
                )
        elif arity < 2:
            problems.append(
                f"gate {gate.output!r}: {gate.gate_type.value} needs at "
                f"least 2 inputs, has {arity}"
            )
        for net in gate.inputs:
            if net not in driven:
                problems.append(
                    f"gate {gate.output!r} reads undriven net {net!r}"
                )

    # Acyclicity, from scratch (Kahn), trusting nothing cached.
    remaining = {
        out: sum(1 for src in gate.inputs if src in gates)
        for out, gate in gates.items()
    }
    ready = [out for out, count in remaining.items() if count == 0]
    readers: Dict[str, List[str]] = {}
    for out, gate in gates.items():
        for src in gate.inputs:
            if src in gates:
                readers.setdefault(src, []).append(out)
    ordered = 0
    while ready:
        net = ready.pop()
        ordered += 1
        for reader in readers.get(net, ()):
            remaining[reader] -= 1
            if remaining[reader] == 0:
                ready.append(reader)
    if ordered != len(gates):
        cyclic = sorted(out for out, count in remaining.items() if count > 0)
        problems.append(
            f"combinational cycle through {len(cyclic)} gate(s): "
            f"{', '.join(cyclic[:6])}"
        )
        return problems  # the topo-order check below presumes a DAG

    # The cached evaluation order must cover every gate, each after its
    # gate-output operands (topological levelization consistency).
    topo = list(netlist._topo_order)
    if sorted(topo) != sorted(gates):
        problems.append(
            f"cached evaluation order covers {len(topo)} nets, "
            f"netlist has {len(gates)} gates"
        )
        return problems
    position = {net: i for i, net in enumerate(topo)}
    for net in topo:
        for src in gates[net].inputs:
            if src in gates and position[src] >= position[net]:
                problems.append(
                    f"cached evaluation order is not topological: "
                    f"{net!r} (position {position[net]}) reads {src!r} "
                    f"(position {position[src]})"
                )
    return problems


# ----------------------------------------------------------------------
# PackedPlan
# ----------------------------------------------------------------------
def verify_packed_plan(plan: PackedPlan) -> List[str]:
    """Cross-coherence problems of a compiled plan (empty list = valid)."""
    problems: List[str] = []
    netlist = plan.netlist
    num_nets = plan.num_nets
    num_inputs = plan.num_inputs

    if num_inputs != netlist.num_inputs:
        problems.append(
            f"num_inputs {num_inputs} != netlist inputs {netlist.num_inputs}"
        )
    if len(plan.nets) != num_nets:
        problems.append(f"nets list has {len(plan.nets)} entries, num_nets {num_nets}")
    if len(plan.rows) != netlist.num_gates:
        problems.append(
            f"{len(plan.rows)} rows for {netlist.num_gates} gates"
        )
    for net, index in plan.index.items():
        if not (0 <= index < num_nets) or plan.nets[index] != net:
            problems.append(f"index map is incoherent at net {net!r} -> {index}")

    gates = netlist.gate_sequence()
    defined: Set[int] = set(range(num_inputs))
    levels = [0] * num_nets
    for row_pos, (output, op, inputs, inverting) in enumerate(plan.rows):
        where = f"row {row_pos} (net {plan.nets[output]!r})" if (
            0 <= output < num_nets
        ) else f"row {row_pos}"
        if not (num_inputs <= output < num_nets):
            problems.append(
                f"row {row_pos}: output index {output} outside gate range "
                f"[{num_inputs}, {num_nets})"
            )
            continue
        if output in defined:
            problems.append(f"{where}: output assigned more than once")
        for operand in inputs:
            if not (0 <= operand < num_nets):
                problems.append(
                    f"{where}: operand index {operand} out of range "
                    f"[0, {num_nets})"
                )
            elif operand not in defined:
                problems.append(
                    f"{where}: operand {operand} ({plan.nets[operand]!r}) "
                    f"used before definition (rows not topological)"
                )
        defined.add(output)
        if op not in (OP_AND, OP_OR, OP_XOR, OP_BUF):
            problems.append(f"{where}: unknown opcode {op}")
        # Library coherence: the row must encode exactly its gate.
        if row_pos < len(gates):
            gate = gates[row_pos]
            expected_op = _OPCODE[gate.gate_type]
            expected_inputs = tuple(plan.index.get(n, -1) for n in gate.inputs)
            if plan.nets[output] != gate.output:
                problems.append(
                    f"{where}: evaluates net {plan.nets[output]!r}, netlist "
                    f"gate {row_pos} drives {gate.output!r}"
                )
            elif (op, inputs, inverting) != (
                expected_op, expected_inputs, gate.gate_type.inverting
            ):
                problems.append(
                    f"{where}: (op={op}, inputs={inputs}, inverting="
                    f"{inverting}) does not encode gate "
                    f"{gate.gate_type.value}({', '.join(gate.inputs)})"
                )
        valid_operands = [i for i in inputs if 0 <= i < num_nets]
        level = 1 + max((levels[i] for i in valid_operands), default=0)
        levels[output] = level
        if row_pos < len(plan.row_levels) and plan.row_levels[row_pos] != level:
            problems.append(
                f"{where}: row_levels says level {plan.row_levels[row_pos]}, "
                f"recomputed 1 + max(operand levels) = {level}"
            )
    if len(plan.row_levels) != len(plan.rows):
        problems.append(
            f"row_levels has {len(plan.row_levels)} entries for "
            f"{len(plan.rows)} rows"
        )
    expected_num_levels = (max(plan.row_levels) + 1) if plan.row_levels else 1
    if plan.num_levels != expected_num_levels:
        problems.append(
            f"num_levels {plan.num_levels} != max(row_levels) + 1 = "
            f"{expected_num_levels}"
        )

    problems.extend(_verify_fused_rows(plan))
    problems.extend(_verify_table_rows(plan))
    problems.extend(_verify_readers_and_fanout(plan))

    for position, output in enumerate(plan.output_indices):
        if not (0 <= output < num_nets):
            problems.append(
                f"output_indices[{position}] = {output} out of range"
            )
        elif position < len(netlist.outputs) and (
            plan.nets[output] != netlist.outputs[position]
        ):
            problems.append(
                f"output_indices[{position}] points at "
                f"{plan.nets[output]!r}, netlist output is "
                f"{netlist.outputs[position]!r}"
            )
    if len(plan.output_indices) != len(netlist.outputs):
        problems.append(
            f"{len(plan.output_indices)} output indices for "
            f"{len(netlist.outputs)} netlist outputs"
        )
    return problems


def _verify_fused_rows(plan: PackedPlan) -> List[str]:
    problems: List[str] = []
    if len(plan.fused_rows) != len(plan.rows):
        return [
            f"fused_rows has {len(plan.fused_rows)} entries for "
            f"{len(plan.rows)} rows"
        ]
    for row_pos, (output, op, inputs, inverting) in enumerate(plan.rows):
        if op == OP_BUF:
            expected = (output, _F_BUF, inputs[0], -1, -1, inputs, inverting)
        elif len(inputs) == 2:
            expected = (
                output, _FUSED_2IN[op], inputs[0], inputs[1], -1, inputs,
                inverting,
            )
        elif len(inputs) == 3:
            expected = (
                output, _FUSED_3IN[op], inputs[0], inputs[1], inputs[2],
                inputs, inverting,
            )
        else:
            expected = (output, op, -1, -1, -1, inputs, inverting)
        actual = plan.fused_rows[row_pos]
        if tuple(actual) != expected:
            problems.append(
                f"fused_rows[{row_pos}] is stale: {tuple(actual)!r}, "
                f"row requires {expected!r}"
            )
    return problems


def _verify_table_rows(plan: PackedPlan) -> List[str]:
    """Check the lazily built 2-bit lookup rows (building them if needed)."""
    problems: List[str] = []
    trows = plan.table_rows()
    if len(trows) != len(plan.fused_rows):
        return [
            f"table_rows has {len(trows)} entries for "
            f"{len(plan.fused_rows)} fused rows"
        ]
    arity_of = {_F_BUF: 1}
    arity_of.update({op: 2 for op in _FUSED_2IN.values()})
    arity_of.update({op: 3 for op in _FUSED_3IN.values()})
    for row_pos, fused in enumerate(plan.fused_rows):
        output, fop, a, b, c, _inputs, inverting = fused
        t_output, arity, ta, tb, tc, value_table, care_table = trows[row_pos]
        if fop not in arity_of:
            expected = (output, 0, -1, -1, -1, None, None)
            if (t_output, arity, ta, tb, tc, value_table, care_table) != expected:
                problems.append(
                    f"table_rows[{row_pos}]: generic (arity>3) row must be "
                    f"{expected!r}, is "
                    f"{(t_output, arity, ta, tb, tc)!r}"
                )
            continue
        if (t_output, arity, ta, tb, tc) != (output, arity_of[fop], a, b, c):
            problems.append(
                f"table_rows[{row_pos}]: (output={t_output}, arity={arity}, "
                f"operands=({ta}, {tb}, {tc})) does not match fused row "
                f"(output={output}, arity={arity_of[fop]}, "
                f"operands=({a}, {b}, {c}))"
            )
            continue
        expected_value, expected_care = _fused_tables(fop, inverting)
        if value_table != expected_value or care_table != expected_care:
            problems.append(
                f"table_rows[{row_pos}]: lookup tables differ from the "
                f"shared tables of (op={fop}, inverting={inverting})"
            )
    return problems


def _verify_readers_and_fanout(plan: PackedPlan) -> List[str]:
    problems: List[str] = []
    num_nets = plan.num_nets
    expected_readers: List[List[int]] = [[] for _ in range(num_nets)]
    for position, (_output, _op, inputs, _inverting) in enumerate(plan.rows):
        for net in sorted(set(i for i in inputs if 0 <= i < num_nets)):
            expected_readers[net].append(position)
    if len(plan.reader_rows) != num_nets:
        problems.append(
            f"reader_rows has {len(plan.reader_rows)} entries for "
            f"{num_nets} nets"
        )
    else:
        for net in range(num_nets):
            if tuple(plan.reader_rows[net]) != tuple(expected_readers[net]):
                problems.append(
                    f"reader_rows[{net}] ({plan.nets[net]!r}) is "
                    f"{tuple(plan.reader_rows[net])!r}, rows reading it are "
                    f"{tuple(expected_readers[net])!r}"
                )
    fanout = plan.netlist.fanout()
    if len(plan.fanout) != num_nets:
        problems.append(
            f"fanout has {len(plan.fanout)} entries for {num_nets} nets"
        )
    else:
        for net_index, net in enumerate(plan.nets):
            expected = tuple(plan.index.get(r, -1) for r in fanout.get(net, ()))
            if tuple(plan.fanout[net_index]) != expected:
                problems.append(
                    f"fanout[{net_index}] ({net!r}) is "
                    f"{tuple(plan.fanout[net_index])!r}, netlist says "
                    f"{expected!r}"
                )
    return problems


# ----------------------------------------------------------------------
# Generated source
# ----------------------------------------------------------------------
#: Parameters of each generated function, in order (the template scope --
#: the only non-``v``/``c`` names the body may touch).
_GENERATED_PARAMS = {
    "binary_full": ("V", "mask"),
    "binary_diff": ("V", "mask", "fi", "fw"),
    "ternary_full": ("V", "C", "mask", "fi", "fm", "fv"),
}

_NET_LOCAL_RE = re.compile(r"^([vc])(\d+)$")


def verify_generated_source(
    source: str, plan: PackedPlan, name: str
) -> List[str]:
    """Problems of one generated evaluator function (empty list = valid).

    Validates, before any ``exec()``:

    * the module holds exactly one function, named ``name``, with the
      template's parameter list;
    * **single-assignment locals**: every ``v<i>``/``c<i>`` net local is
      defined by exactly one top-level assignment (fault overlays may
      conditionally rewrite a net, but only under an ``if fi == <i>``
      guard targeting that same net);
    * **def-before-use ordering**: the defining expression of a net local
      only reads parameters and already-defined locals -- i.e. the emitted
      rows respect the plan's topological order;
    * **no template-scope collisions**: nothing assigns to a parameter and
      no name outside parameters + net locals is referenced (an injected
      builtin call or stray global is a verification failure, which also
      makes the check a cheap guard against template injection);
    * **output-word completeness**: full passes write every gate net back
      into ``V`` (and ``C``), the diff function's return expression XORs
      every plan output against the good block.
    """
    expected_params = _GENERATED_PARAMS.get(name)
    if expected_params is None:
        return [f"unknown generated function {name!r}"]
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [f"{name}: generated source does not parse: {error}"]
    if len(tree.body) != 1 or not isinstance(tree.body[0], ast.FunctionDef):
        return [f"{name}: generated module must hold exactly one function"]
    fn = tree.body[0]
    problems: List[str] = []
    if fn.name != name:
        problems.append(f"{name}: function is named {fn.name!r}")
    params = tuple(a.arg for a in fn.args.args)
    if params != expected_params:
        problems.append(
            f"{name}: parameters {params!r} != template {expected_params!r}"
        )
    param_set = set(expected_params)
    defined: Set[str] = set()
    written_back: Dict[str, Set[int]] = {"V": set(), "C": set()}
    returned: Optional[ast.Return] = None

    def check_loads(node: ast.AST, lineno: int, context: str) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                ident = sub.id
                if ident in param_set:
                    continue
                match = _NET_LOCAL_RE.match(ident)
                if match is None:
                    problems.append(
                        f"{name}:{lineno}: {context} references "
                        f"{ident!r}, outside the template scope"
                    )
                elif ident not in defined:
                    problems.append(
                        f"{name}:{lineno}: {context} reads {ident!r} "
                        f"before its definition (def-before-use violated)"
                    )

    def overlay_net(test: ast.expr) -> Optional[int]:
        """The net index of an ``fi == <k>`` overlay guard, else None."""
        if (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "fi"
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and isinstance(test.comparators[0], ast.Constant)
            and isinstance(test.comparators[0].value, int)
        ):
            return test.comparators[0].value
        return None

    for stmt in fn.body:
        lineno = stmt.lineno
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                ident = target.id
                if ident in param_set:
                    problems.append(
                        f"{name}:{lineno}: assignment to parameter "
                        f"{ident!r} collides with the template scope"
                    )
                    continue
                if _NET_LOCAL_RE.match(ident) is None:
                    problems.append(
                        f"{name}:{lineno}: assignment to {ident!r}, "
                        f"outside the net-local namespace"
                    )
                    continue
                if ident in defined:
                    problems.append(
                        f"{name}:{lineno}: net local {ident!r} assigned "
                        f"twice (single-assignment violated)"
                    )
                check_loads(stmt.value, lineno, f"definition of {ident!r}")
                defined.add(ident)
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in written_back
                and isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, int)
            ):
                index = target.slice.value
                word = target.value.id
                check_loads(stmt.value, lineno, f"write-back {word}[{index}]")
                expected_local = f"{'v' if word == 'V' else 'c'}{index}"
                if not (
                    isinstance(stmt.value, ast.Name)
                    and stmt.value.id == expected_local
                ):
                    problems.append(
                        f"{name}:{lineno}: {word}[{index}] must be written "
                        f"from {expected_local!r}"
                    )
                written_back[word].add(index)
            else:
                problems.append(
                    f"{name}:{lineno}: unexpected assignment target"
                )
        elif isinstance(stmt, ast.If):
            net = overlay_net(stmt.test)
            if net is None or stmt.orelse:
                problems.append(
                    f"{name}:{lineno}: only 'if fi == <net>' fault "
                    f"overlays are allowed as conditionals"
                )
                continue
            for inner in stmt.body:
                target = getattr(inner, "target", None) or (
                    inner.targets[0]
                    if isinstance(inner, ast.Assign) and len(inner.targets) == 1
                    else None
                )
                if not isinstance(
                    inner, (ast.Assign, ast.AugAssign)
                ) or not isinstance(target, ast.Name):
                    problems.append(
                        f"{name}:{inner.lineno}: overlay body must assign "
                        f"a net local"
                    )
                    continue
                match = _NET_LOCAL_RE.match(target.id)
                if match is None or int(match.group(2)) != net:
                    problems.append(
                        f"{name}:{inner.lineno}: overlay guarded by "
                        f"fi == {net} writes {target.id!r}"
                    )
                elif target.id not in defined:
                    problems.append(
                        f"{name}:{inner.lineno}: overlay rewrites "
                        f"{target.id!r} before its definition"
                    )
                check_loads(inner.value, inner.lineno, "overlay expression")
        elif isinstance(stmt, ast.Return):
            if name != "binary_diff":
                problems.append(
                    f"{name}:{lineno}: unexpected return (full passes "
                    f"write in place)"
                )
            elif stmt.value is None:
                problems.append(f"{name}:{lineno}: bare return")
            else:
                returned = stmt
                check_loads(stmt.value, lineno, "return expression")
        else:
            problems.append(
                f"{name}:{lineno}: unexpected "
                f"{type(stmt).__name__} statement"
            )

    problems.extend(
        _verify_completeness(name, plan, defined, written_back, returned)
    )
    return problems


def _verify_completeness(
    name: str,
    plan: PackedPlan,
    defined: Set[str],
    written_back: Dict[str, Set[int]],
    returned: Optional[ast.Return],
) -> List[str]:
    """Output-word completeness of one generated function."""
    problems: List[str] = []
    prefixes = ("v", "c") if name == "ternary_full" else ("v",)
    for i in range(plan.num_inputs):
        for prefix in prefixes:
            if f"{prefix}{i}" not in defined:
                problems.append(
                    f"{name}: input {plan.nets[i]!r} (index {i}) is never "
                    f"seeded into {prefix}{i}"
                )
    gate_indices = [row[0] for row in plan.rows]
    for output in gate_indices:
        for prefix in prefixes:
            if f"{prefix}{output}" not in defined:
                problems.append(
                    f"{name}: gate net {plan.nets[output]!r} (index "
                    f"{output}) is never evaluated into {prefix}{output}"
                )
    if name in ("binary_full", "ternary_full"):
        words = ("V", "C") if name == "ternary_full" else ("V",)
        for word in words:
            missing = [i for i in gate_indices if i not in written_back[word]]
            if missing:
                nets = ", ".join(plan.nets[i] for i in missing[:4])
                problems.append(
                    f"{name}: {len(missing)} gate word(s) never written "
                    f"back into {word} (output-word completeness): {nets}"
                )
    else:  # binary_diff: the return expression must cover every output
        covered: Set[int] = set()
        if returned is not None and returned.value is not None:
            for sub in ast.walk(returned.value):
                if isinstance(sub, ast.Name):
                    match = _NET_LOCAL_RE.match(sub.id)
                    if match and match.group(1) == "v":
                        covered.add(int(match.group(2)))
            missing = [o for o in plan.output_indices if o not in covered]
            if missing:
                nets = ", ".join(plan.nets[o] for o in missing[:4])
                problems.append(
                    f"{name}: detection word ignores "
                    f"{len(missing)} primary output(s): {nets}"
                )
        else:
            problems.append(f"{name}: missing detection-word return")
    return problems


# ----------------------------------------------------------------------
# The ir-verify rule: self-check over representative circuits
# ----------------------------------------------------------------------
def _run_ir_verify(context) -> List[Violation]:
    """Verify netlist/plan/codegen invariants on representative circuits.

    ``repro lint`` has no runtime artifacts to inspect, so the rule builds
    a spread of circuits (every gate arity class, both table and generic
    rows, fixed seeds) and runs all three verifiers over each -- the same
    functions the compiled backend and the mutation tests call.  Any
    violation means the *builders* (netlist construction, plan compilation,
    codegen) emit broken IR for some shape, caught here before a simulation
    or a fuzz case ever runs one.
    """
    from repro.circuits.backends.compiled import (
        gen_binary_diff,
        gen_binary_full,
        gen_ternary_full,
    )
    from repro.circuits.generator import random_netlist
    from repro.circuits.netlist import Gate, GateType
    from repro.circuits.ternary import packed_plan

    wide = Netlist(
        "lint-wide",
        inputs=["a", "b", "c", "d", "e"],
        outputs=["y", "z"],
        gates=[
            Gate("w", GateType.AND, ("a", "b", "c", "d")),
            Gate("x", GateType.XNOR, ("w", "e")),
            Gate("y", GateType.NOR, ("w", "x", "a", "e")),
            Gate("z", GateType.NOT, ("y",)),
        ],
    )
    samples = [
        wide,
        random_netlist("lint-g60", num_inputs=8, num_gates=60, seed=1),
        random_netlist("lint-g120", num_inputs=12, num_gates=120, seed=2),
    ]
    violations: List[Violation] = []
    rule = RULE_IR_VERIFY
    for netlist in samples:
        pseudo = f"<ir:{netlist.name}>"
        for problem in verify_netlist(netlist):
            violations.append(rule.violation(pseudo, 1, problem))
        plan = packed_plan(netlist)
        for problem in verify_packed_plan(plan):
            violations.append(rule.violation(pseudo, 1, problem))
        for generator, fn_name in (
            (gen_binary_full, "binary_full"),
            (gen_binary_diff, "binary_diff"),
            (gen_ternary_full, "ternary_full"),
        ):
            source = generator(plan)
            for problem in verify_generated_source(source, plan, fn_name):
                violations.append(
                    rule.violation(f"<codegen:{netlist.name}>", 1, problem)
                )
    return violations


RULE_IR_VERIFY = register_rule(
    Rule(
        name="ir-verify",
        description=(
            "netlist/PackedPlan structural invariants and compiled-backend "
            "codegen validity over representative circuits"
        ),
        run=_run_ir_verify,
        fix_hint=(
            "the IR builders emit inconsistent structures; fix the builder "
            "(Netlist/PackedPlan/gen_*) rather than the verifier"
        ),
    )
)
