"""The lint ``Rule`` registry, violations and suppression handling.

Mirrors the :class:`repro.fuzz.oracle.Check` registry: rules are frozen
dataclasses registered by name at import time, and later PRs extend the
subsystem by registering new rules -- exactly how new engine pairs join the
fuzz sweep.  A rule is a function from a :class:`LintContext` (every parsed
first-party file plus the repo root) to a list of :class:`Violation`; the
runner handles selection, suppression comments, formatting and exit codes.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Violation:
    """One rule violation, anchored to a file and line.

    Rendered as ``path:line: rule-id message`` -- one line per violation,
    parseable by CI annotation tooling.  ``hint`` carries the rule's fix
    hint (shown by ``repro lint --fix-hints``).
    """

    rule: str
    path: str
    line: int
    message: str
    hint: str = ""

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Rule:
    """One registered static check.

    ``run`` receives the :class:`LintContext` and returns violations; it
    must not raise for ordinary findings (an exception is an analyzer
    internal error, reported with exit code 2).  ``fix_hint`` is a one-line
    remediation template attached to every violation the rule emits.
    """

    name: str
    description: str
    run: Callable[["LintContext"], List[Violation]]
    fix_hint: str = ""

    def violation(self, path: str, line: int, message: str) -> Violation:
        return Violation(
            rule=self.name, path=path, line=line, message=message,
            hint=self.fix_hint,
        )


#: All registered rules by name, in registration order (the extension point
#: later PRs use when new invariants need static coverage).
RULES: Dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    if rule.name in RULES:
        raise ValueError(f"duplicate lint rule {rule.name!r}")
    RULES[rule.name] = rule
    return rule


def rule_names() -> List[str]:
    return list(RULES)


# ----------------------------------------------------------------------
# Parsed-file context
# ----------------------------------------------------------------------
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([\w,\-]+)")


@dataclass
class SourceFile:
    """One parsed first-party Python file."""

    path: Path
    rel_path: str  # repo-root-relative, forward slashes (stable in output)
    source: str
    tree: ast.Module
    #: line -> rule names disabled on that line (``all`` disables any rule).
    suppressions: Dict[int, Tuple[str, ...]] = field(default_factory=dict)

    def suppressed(self, rule: str, line: int) -> bool:
        names = self.suppressions.get(line)
        return bool(names) and (rule in names or "all" in names)


def _parse_suppressions(source: str) -> Dict[int, Tuple[str, ...]]:
    """Map line numbers to the rule names disabled there.

    ``# repro-lint: disable=<rule>[,<rule>...]`` suppresses matching
    violations on its own line; when the comment is the only thing on the
    line it applies to the next line instead (standalone form, for lines
    with no room for a trailing comment).
    """
    out: Dict[int, Tuple[str, ...]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        names = tuple(name for name in match.group(1).split(",") if name)
        target = lineno
        if text.lstrip().startswith("#"):
            target = lineno + 1
        merged = out.get(target, ()) + names
        out[target] = merged
    return out


class LintContext:
    """Every parsed file of the lint run, plus unparseable-file errors.

    Rules iterate :attr:`files`; path predicates work on ``rel_path`` so
    rule configuration (hot-path module sets, exempt files) is independent
    of where the repo is checked out.
    """

    def __init__(self, root: Path, files: List[SourceFile],
                 errors: Optional[List[str]] = None):
        self.root = root
        self.files = files
        self.errors: List[str] = errors or []

    @classmethod
    def load(cls, root: Path, paths: Sequence[Path]) -> "LintContext":
        files: List[SourceFile] = []
        errors: List[str] = []
        seen = set()
        for base in paths:
            candidates = [base] if base.is_file() else sorted(base.rglob("*.py"))
            for path in candidates:
                path = path.resolve()
                if path in seen or path.suffix != ".py":
                    continue
                seen.add(path)
                try:
                    source = path.read_text(encoding="utf-8")
                    tree = ast.parse(source, filename=str(path))
                except (OSError, SyntaxError, ValueError) as error:
                    errors.append(f"{path}: unparseable: {error}")
                    continue
                try:
                    rel = path.relative_to(root.resolve())
                    rel_path = rel.as_posix()
                except ValueError:
                    rel_path = path.as_posix()
                files.append(
                    SourceFile(
                        path=path,
                        rel_path=rel_path,
                        source=source,
                        tree=tree,
                        suppressions=_parse_suppressions(source),
                    )
                )
        return cls(root=root, files=files, errors=errors)

    def module_files(self, *rel_paths: str) -> List[SourceFile]:
        wanted = set(rel_paths)
        return [f for f in self.files if f.rel_path in wanted]
