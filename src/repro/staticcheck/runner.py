"""The lint runner: rule selection, suppression, formatting, exit codes.

``repro lint`` is a thin CLI wrapper around :func:`run_lint`.  The exit
contract (enforced by tests and relied on by the CI job):

* **0** -- every selected rule ran and found nothing;
* **1** -- violations found (each printed as ``path:line: rule-id
  message``, one per line, parseable by CI annotations);
* **2** -- analyzer internal error: a rule raised, a file was unparseable
  or an unknown rule was selected.  Violations found before the error are
  still reported, but a broken analyzer never masquerades as a clean run.

Suppression happens here, not in the rules: a rule reports everything it
sees, and the runner drops findings whose file carries a matching
``# repro-lint: disable=<rule>`` on (or for) that line.  Violations with
pseudo-paths (the ``ir-verify`` self-check) are not suppressible.
"""

from __future__ import annotations

import json
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.staticcheck.registry import (
    RULES,
    LintContext,
    SourceFile,
    Violation,
)
from repro.telemetry import get_recorder


@dataclass
class LintReport:
    """Everything one lint run produced."""

    violations: List[Violation]
    errors: List[str] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)
    suppressed: int = 0

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.violations else 0


def run_lint(
    root: Path,
    paths: Optional[Sequence[Path]] = None,
    rules: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run the selected rules over ``paths`` (default: ``src/`` and
    ``tests/`` under ``root``)."""
    if paths is None:
        paths = [p for p in (root / "src", root / "tests") if p.is_dir()]
    context = LintContext.load(root, list(paths))
    errors = list(context.errors)

    selected = list(rules) if rules else list(RULES)
    unknown = [name for name in selected if name not in RULES]
    if unknown:
        errors.append(
            f"unknown rule(s): {', '.join(unknown)} "
            f"(available: {', '.join(RULES)})"
        )
        selected = [name for name in selected if name in RULES]

    raw: List[Violation] = []
    rules_run: List[str] = []
    for name in selected:
        rule = RULES[name]
        try:
            raw.extend(rule.run(context))
        except Exception:  # a raising rule is an analyzer bug, not a finding
            errors.append(
                f"rule {name!r} crashed:\n{traceback.format_exc().rstrip()}"
            )
        else:
            rules_run.append(name)

    by_rel_path: Dict[str, SourceFile] = {f.rel_path: f for f in context.files}
    kept: List[Violation] = []
    suppressed = 0
    for violation in raw:
        sf = by_rel_path.get(violation.path)
        if sf is not None and sf.suppressed(violation.rule, violation.line):
            suppressed += 1
            continue
        kept.append(violation)
    kept.sort(key=lambda v: (v.path, v.line, v.rule, v.message))

    recorder = get_recorder()
    recorder.counter("lint.files", len(context.files))
    recorder.counter("lint.violations", len(kept))

    return LintReport(
        violations=kept,
        errors=errors,
        files_checked=len(context.files),
        rules_run=rules_run,
        suppressed=suppressed,
    )


def format_text(report: LintReport, fix_hints: bool = False) -> str:
    """One line per violation; a trailing summary line; errors at the end."""
    lines: List[str] = []
    for violation in report.violations:
        lines.append(violation.format())
        if fix_hints and violation.hint:
            lines.append(f"    hint: {violation.hint}")
    summary = (
        f"{len(report.violations)} violation(s) in {report.files_checked} "
        f"file(s), {len(report.rules_run)} rule(s)"
    )
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    lines.append(summary)
    for error in report.errors:
        lines.append(f"error: {error}")
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Machine-readable report (stable key order, sorted violations)."""
    return json.dumps(
        {
            "violations": [
                {
                    "path": v.path,
                    "line": v.line,
                    "rule": v.rule,
                    "message": v.message,
                    "hint": v.hint,
                }
                for v in report.violations
            ],
            "errors": report.errors,
            "files_checked": report.files_checked,
            "rules_run": report.rules_run,
            "suppressed": report.suppressed,
            "exit_code": report.exit_code,
        },
        indent=2,
        sort_keys=False,
    )
