"""Repo-specific AST lint rules over first-party ``src/`` and ``tests/``.

Each rule encodes one discipline the codebase converged on over PRs 1-9
and that used to be enforced only by review or by dynamic failure:

* ``deprecated-flags`` -- the engine-backend registry (PR 9) replaced the
  legacy boolean flags with ``engine=``/``fills=``; new call sites must
  not reintroduce them.
* ``dict-engine-hotpath`` -- the dict-based reference engine exists for
  differential checking; hot-path modules must go through the backend
  registry instead of calling it directly.
* ``store-open`` -- ``results.jsonl`` and its writer lock are only safe
  under the fcntl discipline of :class:`repro.campaign.store.ResultStore`.
* ``unordered-iteration`` -- fingerprints, cache keys and codegen must be
  bit-stable across processes; iterating a ``set`` there is a
  nondeterminism bug even when it happens to pass locally.
* ``span-pairing`` -- telemetry spans must use the context-manager form so
  the exit is exception-safe; a bare ``.span()`` call can leak an open
  span.
* ``bounded-cache`` -- every module- or class-level cache must be a
  :class:`repro.lru.LRUCache` (or a weakref mapping); ad-hoc dict caches
  grow without bound under campaign workloads.

Rules only *report*; whether a finding is acceptable in context is a
per-line ``# repro-lint: disable=<rule>`` decision at the call site (the
deprecation tests do exactly that).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.staticcheck.registry import (
    LintContext,
    Rule,
    SourceFile,
    Violation,
    register_rule,
)


def _callee_name(call: ast.Call) -> str:
    """The trailing identifier of a call target (``f`` or ``obj.f``)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_forwarding(keyword: ast.keyword) -> bool:
    """``f(flag=flag)`` -- a shim passing a flag through under its own name."""
    return (
        isinstance(keyword.value, ast.Name)
        and keyword.value.id == keyword.arg
    )


def _in_src(sf: SourceFile) -> bool:
    return sf.rel_path.startswith("src/")


# ----------------------------------------------------------------------
# deprecated-flags
# ----------------------------------------------------------------------
#: Legacy booleans flagged on any call; ``resolve_engine`` itself (the
#: compatibility shim that maps them) is the one legitimate consumer.
_LEGACY_FLAGS = frozenset({"use_packed", "use_events", "use_cones", "batch_fills"})
#: ``batched=`` only ever meant a legacy engine toggle on this entry point;
#: elsewhere the name is an ordinary parameter (e.g. the controller's
#: batched-decompressor strategy).
_BATCHED_CALLEES = frozenset({"simulate_decompression"})


def _run_deprecated_flags(context: LintContext) -> List[Violation]:
    violations: List[Violation] = []
    for sf in context.files:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _callee_name(node)
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                legacy = keyword.arg in _LEGACY_FLAGS or (
                    keyword.arg == "batched" and callee in _BATCHED_CALLEES
                )
                if not legacy:
                    continue
                if callee == "resolve_engine" or _is_forwarding(keyword):
                    continue
                line = keyword.value.lineno
                violations.append(
                    RULE_DEPRECATED_FLAGS.violation(
                        sf.rel_path,
                        line,
                        f"legacy engine flag {keyword.arg}= passed to "
                        f"{callee or 'a call'}()",
                    )
                )
    return violations


RULE_DEPRECATED_FLAGS = register_rule(
    Rule(
        name="deprecated-flags",
        description=(
            "legacy boolean engine flags (use_packed/use_events/use_cones/"
            "batched/batch_fills) at first-party call sites"
        ),
        run=_run_deprecated_flags,
        fix_hint=(
            "select backends with engine='reference'|'packed'|'events'|"
            "'compiled' and fills='batched'|'per-pattern'"
        ),
    )
)


# ----------------------------------------------------------------------
# dict-engine-hotpath
# ----------------------------------------------------------------------
_REFERENCE_ENTRY_POINTS = frozenset(
    {"simulate_ternary_reference", "build_embedding_map_reference"}
)
#: Modules on the simulation hot path: these must reach engines through the
#: backend registry so ``engine=``/``REPRO_ENGINE`` selection applies.
#: Deliberately absent: ``circuits/simulator.py`` and ``skip/selection.py``
#: (they *define* the reference implementations), ``circuits/atpg.py``
#: (hosts the reference PODEM, specified against reference semantics),
#: ``circuits/backends/`` (the registry), ``fuzz/`` and ``perf.py``
#: (differential cross-checks are their whole purpose).
_HOT_PATH_PREFIXES = ("src/repro/encoding/", "src/repro/skip/")
_HOT_PATH_MODULES = frozenset(
    {
        "src/repro/circuits/fault_sim.py",
        "src/repro/circuits/ternary.py",
        "src/repro/pipeline.py",
        "src/repro/context.py",
        "src/repro/campaign/runner.py",
        "src/repro/decompressor/architecture.py",
    }
)
_HOT_PATH_DEFINERS = frozenset(
    {"src/repro/skip/selection.py", "src/repro/skip/__init__.py"}
)


def _run_dict_engine_hotpath(context: LintContext) -> List[Violation]:
    violations: List[Violation] = []
    for sf in context.files:
        hot = sf.rel_path in _HOT_PATH_MODULES or (
            sf.rel_path.startswith(_HOT_PATH_PREFIXES)
            and sf.rel_path not in _HOT_PATH_DEFINERS
        )
        if not hot:
            continue
        for node in ast.walk(sf.tree):
            if (
                isinstance(node, ast.Call)
                and _callee_name(node) in _REFERENCE_ENTRY_POINTS
            ):
                violations.append(
                    RULE_DICT_ENGINE_HOTPATH.violation(
                        sf.rel_path,
                        node.lineno,
                        f"hot-path module calls the dict reference engine "
                        f"({_callee_name(node)}) directly",
                    )
                )
    return violations


RULE_DICT_ENGINE_HOTPATH = register_rule(
    Rule(
        name="dict-engine-hotpath",
        description=(
            "direct dict-reference-engine calls inside hot-path modules"
        ),
        run=_run_dict_engine_hotpath,
        fix_hint=(
            "go through the backend registry (get_backend/resolve_engine or "
            "engine='reference') so engine selection stays uniform"
        ),
    )
)


# ----------------------------------------------------------------------
# store-open
# ----------------------------------------------------------------------
_STORE_PATH_MARKERS = ("results.jsonl", ".writer.lock")
_STORE_EXEMPT = frozenset({"src/repro/campaign/store.py"})


def _mentions_store_path(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            if any(marker in sub.value for marker in _STORE_PATH_MARKERS):
                return True
    return False


def _run_store_open(context: LintContext) -> List[Violation]:
    violations: List[Violation] = []
    for sf in context.files:
        if sf.rel_path in _STORE_EXEMPT:
            continue
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call) or _callee_name(node) != "open":
                continue
            if any(_mentions_store_path(arg) for arg in node.args) or any(
                _mentions_store_path(kw.value) for kw in node.keywords
            ):
                violations.append(
                    RULE_STORE_OPEN.violation(
                        sf.rel_path,
                        node.lineno,
                        "bare open() on a result-store path bypasses the "
                        "fcntl-locked ResultStore",
                    )
                )
    return violations


RULE_STORE_OPEN = register_rule(
    Rule(
        name="store-open",
        description=(
            "bare open() on results.jsonl/store paths outside "
            "campaign/store.py"
        ),
        run=_run_store_open,
        fix_hint=(
            "read through ResultStore.iter_records()/append() so the fcntl "
            "writer lock and atomic-append discipline apply"
        ),
    )
)


# ----------------------------------------------------------------------
# unordered-iteration
# ----------------------------------------------------------------------
#: Functions whose output must be bit-stable across processes: hash-feeding
#: (fingerprint/cache-key) and source-emitting (codegen ``gen_*``).
_CODEGEN_MODULE = "src/repro/circuits/backends/compiled.py"


def _is_determinism_sensitive(fn: ast.FunctionDef, sf: SourceFile) -> bool:
    name = fn.name.lower()
    return (
        "fingerprint" in name
        or "cache_key" in name
        or name.startswith("gen_")
        or sf.rel_path == _CODEGEN_MODULE
    )


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        callee = _callee_name(node)
        if callee in ("set", "frozenset"):
            return True
        if callee == "sorted":  # sorted(set(...)) is the sanctioned form
            return False
    return False


def _iter_sites(fn: ast.FunctionDef) -> Iterable[Tuple[ast.expr, int]]:
    for node in ast.walk(fn):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node.lineno
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter, node.lineno


def _run_unordered_iteration(context: LintContext) -> List[Violation]:
    violations: List[Violation] = []
    for sf in context.files:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if not _is_determinism_sensitive(node, sf):
                continue
            for iter_expr, lineno in _iter_sites(node):
                if _is_set_expression(iter_expr):
                    violations.append(
                        RULE_UNORDERED_ITERATION.violation(
                            sf.rel_path,
                            iter_expr.lineno or lineno,
                            f"unordered set iteration inside "
                            f"determinism-sensitive {node.name}()",
                        )
                    )
    return violations


RULE_UNORDERED_ITERATION = register_rule(
    Rule(
        name="unordered-iteration",
        description=(
            "set iteration feeding fingerprint()/cache_key()/codegen "
            "emission (cross-process nondeterminism)"
        ),
        run=_run_unordered_iteration,
        fix_hint="wrap the iterable in sorted(...) to pin the order",
    )
)


# ----------------------------------------------------------------------
# span-pairing
# ----------------------------------------------------------------------
_SPAN_EXEMPT_PREFIX = "src/repro/telemetry/"


def _run_span_pairing(context: LintContext) -> List[Violation]:
    violations: List[Violation] = []
    for sf in context.files:
        if sf.rel_path.startswith(_SPAN_EXEMPT_PREFIX):
            continue
        with_contexts = set()
        for node in ast.walk(sf.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_contexts.add(id(item.context_expr))
        for node in ast.walk(sf.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and id(node) not in with_contexts
            ):
                violations.append(
                    RULE_SPAN_PAIRING.violation(
                        sf.rel_path,
                        node.lineno,
                        "telemetry span opened outside a 'with' block "
                        "(exit not exception-safe)",
                    )
                )
    return violations


RULE_SPAN_PAIRING = register_rule(
    Rule(
        name="span-pairing",
        description=(
            "telemetry .span() calls not used as a context manager "
            "(enter without guaranteed exit)"
        ),
        run=_run_span_pairing,
        fix_hint="use 'with recorder.span(name):' so exit always pairs enter",
    )
)


# ----------------------------------------------------------------------
# bounded-cache
# ----------------------------------------------------------------------
_UNBOUNDED_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "OrderedDict", "defaultdict", "deque"}
)
_BOUNDED_CONSTRUCTORS = frozenset(
    {"LRUCache", "WeakKeyDictionary", "WeakValueDictionary"}
)


def _unbounded_cache_value(value: Optional[ast.expr]) -> bool:
    if value is None:
        return False
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        callee = _callee_name(value)
        if callee in _BOUNDED_CONSTRUCTORS:
            return False
        return callee in _UNBOUNDED_CONSTRUCTORS
    return False


def _run_bounded_cache(context: LintContext) -> List[Violation]:
    violations: List[Violation] = []
    for sf in context.files:
        if not _in_src(sf):
            continue  # tests may build throwaway dicts named *cache*
        scopes: List[ast.AST] = [sf.tree]
        scopes.extend(
            node for node in ast.walk(sf.tree) if isinstance(node, ast.ClassDef)
        )
        for scope in scopes:
            for stmt in scope.body:  # type: ignore[attr-defined]
                targets: List[ast.expr]
                value: Optional[ast.expr]
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    targets, value = [stmt.target], stmt.value
                else:
                    continue
                for target in targets:
                    if not (
                        isinstance(target, ast.Name)
                        and "cache" in target.id.lower()
                    ):
                        continue
                    if _unbounded_cache_value(value):
                        violations.append(
                            RULE_BOUNDED_CACHE.violation(
                                sf.rel_path,
                                stmt.lineno,
                                f"module/class-level cache {target.id!r} is "
                                f"an unbounded container",
                            )
                        )
    return violations


RULE_BOUNDED_CACHE = register_rule(
    Rule(
        name="bounded-cache",
        description=(
            "module/class-level caches that are plain containers instead of "
            "bounded LRUCache/weakref mappings"
        ),
        run=_run_bounded_cache,
        fix_hint=(
            "use repro.lru.LRUCache(bound) (stats included) or a "
            "weakref.WeakKeyDictionary for identity-keyed plans"
        ),
    )
)
