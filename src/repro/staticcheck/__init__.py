"""Static verification subsystem: find whole bug classes before running.

The reproduction spans four interchangeable simulation backends (one of
which ``compile()``/``exec()``s generated Python per netlist), several
fingerprint/cache-key-driven caches and an fcntl-locked concurrent result
store.  Every invariant holding that together used to be checked only
dynamically -- when a test or fuzz run happened to hit it.  This package is
the static counterpart of :mod:`repro.fuzz`: where the fuzz oracle finds
violations *after* executing a case, the analyzers here reject whole
violation classes without running a single simulation.

Three analyzer layers sit behind one :class:`~repro.staticcheck.registry.Rule`
registry (mirroring the fuzz ``Check`` registry):

* :mod:`repro.staticcheck.ir` -- **IR verifiers**: structural validation of
  :class:`~repro.circuits.netlist.Netlist` and
  :class:`~repro.circuits.ternary.PackedPlan` (acyclicity, levelization,
  ``fused_rows``/``table_rows``/``reader_rows`` cross-coherence, operand
  bounds, library-op arity) and AST validation of the compiled backend's
  generated source before it is ever ``exec()``-ed (single-assignment
  locals, def-before-use ordering, template-scope name hygiene, output-word
  completeness).  The compiled backend calls these on every cache miss when
  codegen verification is enabled (``REPRO_VERIFY_CODEGEN`` or
  ``set_codegen_verify``).
* :mod:`repro.staticcheck.source_rules` -- **repo-specific AST lint rules**
  over ``src/`` and ``tests/``: deprecated legacy engine flags, direct
  dict-reference-engine calls in hot-path modules, bare ``open()`` on store
  paths, unordered-set iteration feeding fingerprints/cache keys/codegen,
  unpaired manual telemetry spans and unbounded module-level caches.
* :mod:`repro.staticcheck.concurrency` -- **concurrency-hazard checks**:
  mutable module-level state reachable from campaign worker entry points
  without lock/queue mediation.

``repro lint`` (see :mod:`repro.staticcheck.runner`) runs the registered
rules, prints one ``path:line: rule-id message`` per violation, exits 0/1/2
(clean / violations / analyzer error) and feeds ``lint.files`` /
``lint.violations`` telemetry counters.  Per-line suppression:
``# repro-lint: disable=<rule>``.
"""

from repro.staticcheck.ir import (
    IrVerificationError,
    verify_generated_source,
    verify_netlist,
    verify_packed_plan,
)
from repro.staticcheck.registry import (
    RULES,
    LintContext,
    Rule,
    Violation,
    register_rule,
    rule_names,
)
from repro.staticcheck.runner import LintReport, format_json, format_text, run_lint

# Rule modules register themselves on import, exactly like the fuzz checks.
from repro.staticcheck import source_rules as _source_rules  # noqa: E402,F401
from repro.staticcheck import concurrency as _concurrency  # noqa: E402,F401

__all__ = [
    "IrVerificationError",
    "LintContext",
    "LintReport",
    "RULES",
    "Rule",
    "Violation",
    "format_json",
    "format_text",
    "register_rule",
    "rule_names",
    "run_lint",
    "verify_generated_source",
    "verify_netlist",
    "verify_packed_plan",
]
