"""Concurrency-hazard checks for the campaign worker processes.

The campaign runner (PR 6) forks/spawns worker processes
(:mod:`repro.campaign.runner`); every module a worker imports is shared
*as code* but its module-level state is per-process -- mutating it from a
worker silently diverges from the parent (fork) or vanishes (spawn), and
under a future thread-based scheduler becomes a data race.  The
``worker-shared-state`` rule flags exactly that shape statically:

1. build the first-party import graph and compute every module reachable
   from the worker entry point (``repro.campaign.runner``);
2. in each reachable module, collect module-level *mutable container*
   bindings (dict/list/set/OrderedDict/defaultdict/deque literals or
   constructors);
3. flag any mutation of those names from inside a function body --
   subscript stores/deletes, augmented assignment, mutating method calls
   (``append``/``update``/``setdefault``/...) and ``global`` rebinds.

Sanctioned shapes are skipped rather than suppressed:

* names bound to :class:`repro.lru.LRUCache` or a ``weakref`` mapping --
  bounded per-process caches are the *approved* module state idiom (the
  ``bounded-cache`` rule enforces the flip side);
* mutations inside ``register*``/``clear*``/``reset*`` functions --
  import-time registry population and explicit test-support resets, the
  same idiom as the fuzz ``Check`` and backend registries;
* mutations inside a ``with`` block whose context expression mentions a
  lock -- lock-mediated access is the documented fix.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.staticcheck.registry import (
    LintContext,
    Rule,
    SourceFile,
    Violation,
    register_rule,
)

#: Worker entry points: reachability roots of the hazard analysis.
WORKER_ROOTS = ("repro.campaign.runner",)

_MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "OrderedDict", "defaultdict", "deque"}
)
_SANCTIONED_CONSTRUCTORS = frozenset(
    {"LRUCache", "WeakKeyDictionary", "WeakValueDictionary"}
)
_MUTATING_METHODS = frozenset(
    {
        "append", "add", "update", "setdefault", "pop", "popitem", "clear",
        "extend", "remove", "insert", "move_to_end", "discard",
    }
)
_EXEMPT_FUNCTION_PREFIXES = ("register", "clear", "reset")


def _module_name(rel_path: str) -> Optional[str]:
    """``src/repro/campaign/runner.py`` -> ``repro.campaign.runner``."""
    if not rel_path.startswith("src/") or not rel_path.endswith(".py"):
        return None
    dotted = rel_path[len("src/"):-len(".py")].replace("/", ".")
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


def _import_edges(
    sf: SourceFile, module: str, known: Set[str]
) -> Set[str]:
    """First-party modules ``module`` imports (absolute and relative)."""
    is_package = sf.rel_path.endswith("__init__.py")
    package = module if is_package else module.rpartition(".")[0]
    edges: Set[str] = set()

    def add(candidate: str) -> None:
        # An import of a package pulls in its __init__; an import of
        # ``pkg.name`` where only ``pkg`` is a module means an attribute.
        if candidate in known:
            edges.add(candidate)
        elif candidate.rpartition(".")[0] in known:
            edges.add(candidate.rpartition(".")[0])

    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package
                for _ in range(node.level - 1):
                    base = base.rpartition(".")[0]
                base = f"{base}.{node.module}" if node.module else base
            else:
                base = node.module or ""
            if base.split(".")[0] != "repro":
                continue
            add(base)
            for alias in node.names:
                add(f"{base}.{alias.name}")
    edges.discard(module)
    return edges


def _reachable_modules(context: LintContext) -> Set[str]:
    by_module: Dict[str, SourceFile] = {}
    for sf in context.files:
        module = _module_name(sf.rel_path)
        if module:
            by_module[module] = sf
    known = set(by_module)
    frontier = [root for root in WORKER_ROOTS if root in known]
    reachable: Set[str] = set(frontier)
    while frontier:
        module = frontier.pop()
        for edge in _import_edges(by_module[module], module, known):
            if edge not in reachable:
                reachable.add(edge)
                frontier.append(edge)
    return reachable


def _module_containers(tree: ast.Module) -> Dict[str, int]:
    """Module-level mutable container names -> defining line."""
    containers: Dict[str, int] = {}
    sanctioned: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        else:
            continue
        mutable = isinstance(
            value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
                    ast.SetComp)
        )
        bounded = False
        if isinstance(value, ast.Call):
            callee = value.func
            name = callee.id if isinstance(callee, ast.Name) else (
                callee.attr if isinstance(callee, ast.Attribute) else ""
            )
            mutable = mutable or name in _MUTABLE_CONSTRUCTORS
            bounded = name in _SANCTIONED_CONSTRUCTORS
        for target in targets:
            if isinstance(target, ast.Name):
                if bounded:
                    sanctioned.add(target.id)
                elif mutable:
                    containers[target.id] = stmt.lineno
    for name in sanctioned:
        containers.pop(name, None)
    return containers


class _MutationFinder(ast.NodeVisitor):
    """Mutations of the given module-level names inside function bodies."""

    def __init__(self, names: Dict[str, int]):
        self.names = names
        self.findings: List[Tuple[int, str, str]] = []  # line, name, verb
        self._function_stack: List[ast.FunctionDef] = []
        self._lock_depth = 0
        self._locals_stack: List[Set[str]] = []

    # -- scope tracking ------------------------------------------------
    def _enter_function(self, node) -> None:
        local: Set[str] = {a.arg for a in node.args.args}
        local.update(a.arg for a in node.args.kwonlyargs)
        if node.args.vararg:
            local.add(node.args.vararg.arg)
        if node.args.kwarg:
            local.add(node.args.kwarg.arg)
        declared_global: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                declared_global.update(sub.names)
            elif isinstance(sub, (ast.Assign, ast.AnnAssign, ast.For,
                                  ast.withitem)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign)
                    else [sub.target] if isinstance(sub, ast.AnnAssign)
                    else [sub.target] if isinstance(sub, ast.For)
                    else [sub.optional_vars] if sub.optional_vars else []
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        local.add(target.id)
        self._locals_stack.append(local - declared_global)
        self._function_stack.append(node)

    def _exit_function(self) -> None:
        self._function_stack.pop()
        self._locals_stack.pop()

    def _exempt(self) -> bool:
        if self._lock_depth:
            return True
        return any(
            fn.name.lstrip("_").startswith(_EXEMPT_FUNCTION_PREFIXES)
            for fn in self._function_stack
        )

    def _is_shared(self, name: str) -> bool:
        if name not in self.names or not self._function_stack:
            return False
        return not any(name in local for local in self._locals_stack)

    def _record(self, line: int, name: str, verb: str) -> None:
        if not self._exempt():
            self.findings.append((line, name, verb))

    # -- visitors ------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._exit_function()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_With(self, node: ast.With) -> None:
        guarded = any(
            "lock" in ast.unparse(item.context_expr).lower()
            for item in node.items
        )
        if guarded:
            self._lock_depth += 1
        self.generic_visit(node)
        if guarded:
            self._lock_depth -= 1

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target, verb="augmented assignment")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and self._is_shared(target.value.id)
            ):
                self._record(node.lineno, target.value.id, "item deletion")
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            if name in self.names and self._function_stack:
                self._record(node.lineno, name, "global rebind")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and isinstance(func.value, ast.Name)
            and self._is_shared(func.value.id)
        ):
            self._record(node.lineno, func.value.id, f".{func.attr}()")
        self.generic_visit(node)

    def _check_store_target(self, target: ast.expr, verb: str = "item store"):
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and self._is_shared(target.value.id)
        ):
            self._record(target.lineno, target.value.id, verb)


def _run_worker_shared_state(context: LintContext) -> List[Violation]:
    reachable = _reachable_modules(context)
    violations: List[Violation] = []
    for sf in context.files:
        module = _module_name(sf.rel_path)
        if module not in reachable:
            continue
        containers = _module_containers(sf.tree)
        if not containers:
            continue
        finder = _MutationFinder(containers)
        finder.visit(sf.tree)
        for line, name, verb in finder.findings:
            violations.append(
                RULE_WORKER_SHARED_STATE.violation(
                    sf.rel_path,
                    line,
                    f"{verb} on module-level {name!r} (defined at line "
                    f"{containers[name]}) in a module reachable from "
                    f"campaign workers, without lock/queue mediation",
                )
            )
    return violations


RULE_WORKER_SHARED_STATE = register_rule(
    Rule(
        name="worker-shared-state",
        description=(
            "mutable module-level state reachable from campaign worker "
            "entry points mutated without lock/queue mediation"
        ),
        run=_run_worker_shared_state,
        fix_hint=(
            "mediate through a lock/queue, move the state into the worker "
            "payload, or make it a bounded LRUCache (per-process cache)"
        ),
    )
)
