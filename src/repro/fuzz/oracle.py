"""Differential oracle: every interchangeable engine pair, bit for bit.

The repo accumulated engine variants behind the backend registry (packed vs
dict simulation, the persistent bucket-queue event engine vs from-scratch
evaluation, event-driven vs full-pass PODEM, codegen-compiled simulation
and fault simulation vs the packed/dict engines, batched vs per-pattern
drop simulation, batched-trials vs scan GF(2) solving, numpy vs reference
embedding matching, batched vs per-clock decompressor replay).  The golden
tests pin each pair on a handful of fixed seeds; this module turns the same
idiom into *checks* a fuzz loop can drive with arbitrary seeds and sizes.

A check takes one :class:`~repro.fuzz.generators.FuzzCase`, regenerates the
inputs, runs both sides of its engine pair and returns ``None`` when the
results are bit-identical -- or a human-readable mismatch description.  A
check may raise :class:`SkipCase` when the drawn parameters are simply not
encodable (both sides agreeing to fail is not a divergence).

All engine entry points are called **through their defining modules**, so a
planted mutation (``monkeypatch.setattr(simulator, "simulate_ternary", ...)``
in the tests, or a genuinely broken refactor in review) is observed by the
oracle exactly like it would be by production code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro import pipeline as _pipeline
from repro.circuits import atpg as _atpg
from repro.circuits import fault_sim as _fault_sim
from repro.circuits import simulator as _simulator
from repro.circuits.bench import write_bench
from repro.decompressor import architecture as _architecture
from repro.encoding import encoder as _encoder
from repro.encoding.window import EncodingError
from repro.fuzz.generators import (
    FuzzCase,
    ParamRange,
    case_assignments,
    case_config,
    case_netlist,
    case_patterns,
    case_test_set,
)
from repro.skip import selection as _selection
from repro.skip.segments import WindowSegmentation


class SkipCase(Exception):
    """The drawn case is not runnable (e.g. unencodable) on *both* sides."""


@dataclass(frozen=True)
class Check:
    """One differential (or chaos) check the fuzz loop can draw cases for.

    ``space`` maps parameter names to ``(low, high, floor)``: cases are
    drawn from ``[low, high]``, the shrinker may reduce any parameter down
    to ``floor``.  ``run`` returns ``None`` (identical) or a mismatch
    description; ``chaos`` marks fault-injection checks that are excluded
    from the default differential sweep.
    """

    name: str
    description: str
    space: Dict[str, ParamRange]
    run: Callable[[FuzzCase], Optional[str]]
    chaos: bool = False

    def draw(self, rng) -> FuzzCase:
        from repro.fuzz.generators import draw_params

        return FuzzCase(
            check=self.name,
            seed=rng.randrange(2**31),
            params=draw_params(rng, self.space),
        )


@dataclass
class CheckOutcome:
    """What one executed case produced."""

    case: FuzzCase
    status: str  # "ok" | "mismatch" | "skip"
    detail: str = ""
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status != "mismatch"


def run_case(check: Check, case: FuzzCase) -> CheckOutcome:
    """Execute one case under its check, mapping SkipCase to a skip."""
    import time

    start = time.perf_counter()
    try:
        detail = check.run(case)
    except SkipCase as skip:
        return CheckOutcome(
            case=case,
            status="skip",
            detail=str(skip),
            elapsed_s=time.perf_counter() - start,
        )
    return CheckOutcome(
        case=case,
        status="ok" if detail is None else "mismatch",
        detail=detail or "",
        elapsed_s=time.perf_counter() - start,
    )


def case_artifacts(case: FuzzCase) -> Dict[str, str]:
    """Regenerable input artefacts of a case, keyed by file name.

    Written next to the shrunk case file so a repro directory is
    self-describing even without re-running the generators.
    """
    artifacts: Dict[str, str] = {}
    if "num_inputs" in case.params:
        artifacts["netlist.bench"] = write_bench(case_netlist(case))
    if "num_cells" in case.params:
        artifacts["test_set.tests"] = case_test_set(case).to_text()
    return artifacts


# ----------------------------------------------------------------------
# Differential checks
# ----------------------------------------------------------------------
def _check_ternary_sim(case: FuzzCase) -> Optional[str]:
    """Packed two-word ternary simulation vs the dict reference."""
    netlist = case_netlist(case)
    for index, assignment in enumerate(case_assignments(case, netlist)):
        packed = _simulator.simulate_ternary(netlist, assignment)
        reference = _simulator.simulate_ternary_reference(netlist, assignment)
        if packed != reference:
            diffs = sorted(
                net
                for net in reference
                if packed.get(net, "missing") != reference[net]
            )
            return (
                f"assignment {index}: packed ternary simulation diverges from "
                f"the dict reference on {len(diffs)} net(s), first "
                f"{diffs[0]!r}: packed={packed.get(diffs[0])!r} "
                f"reference={reference[diffs[0]]!r}"
            )
    return None


def _atpg_fingerprint(result) -> Dict[str, object]:
    return {
        "cubes": [str(cube) for cube in result.test_set.cubes],
        "detected": sorted(str(fault) for fault in result.detected),
        "redundant": sorted(str(fault) for fault in result.redundant),
        "aborted": sorted(str(fault) for fault in result.aborted),
        "total_faults": result.total_faults,
    }


def _diff_dicts(a: Dict[str, object], b: Dict[str, object], la: str, lb: str) -> str:
    for key in a:
        if a[key] != b[key]:
            return f"{key}: {la}={_clip(a[key])} {lb}={_clip(b[key])}"
    return "identical keys, unequal dicts"


def _clip(value: object, limit: int = 160) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _check_podem_events(case: FuzzCase) -> Optional[str]:
    """Event-driven fanout-cone PODEM vs the full-pass packed engine."""
    netlist = case_netlist(case)
    events = _atpg.PodemAtpg(netlist, engine="events").run(
        fill_seed=case.seed, fills="per-pattern"
    )
    full_pass = _atpg.PodemAtpg(netlist, engine="packed").run(
        fill_seed=case.seed, fills="per-pattern"
    )
    a, b = _atpg_fingerprint(events), _atpg_fingerprint(full_pass)
    if a != b:
        return (
            "event-driven PODEM diverges from the full-pass engine: "
            + _diff_dicts(a, b, "events", "full-pass")
        )
    return None


def _check_podem_packed(case: FuzzCase) -> Optional[str]:
    """Packed dual-machine PODEM vs the original dict-based engine."""
    netlist = case_netlist(case)
    packed = _atpg.PodemAtpg(netlist, engine="packed").run(
        fill_seed=case.seed, fills="per-pattern"
    )
    reference = _atpg.PodemAtpg(netlist, engine="reference").run(
        fill_seed=case.seed, fills="per-pattern"
    )
    a, b = _atpg_fingerprint(packed), _atpg_fingerprint(reference)
    if a != b:
        return (
            "packed PODEM diverges from the dict reference engine: "
            + _diff_dicts(a, b, "packed", "dict")
        )
    return None


def _check_sim_compiled(case: FuzzCase) -> Optional[str]:
    """Codegen-compiled ternary simulation vs the dict reference."""
    netlist = case_netlist(case)
    for index, assignment in enumerate(case_assignments(case, netlist)):
        compiled = _simulator.simulate_ternary(netlist, assignment, engine="compiled")
        reference = _simulator.simulate_ternary_reference(netlist, assignment)
        if compiled != reference:
            diffs = sorted(
                net
                for net in reference
                if compiled.get(net, "missing") != reference[net]
            )
            return (
                f"assignment {index}: compiled ternary simulation diverges "
                f"from the dict reference on {len(diffs)} net(s), first "
                f"{diffs[0]!r}: compiled={compiled.get(diffs[0])!r} "
                f"reference={reference[diffs[0]]!r}"
            )
    return None


def _check_faultsim_compiled(case: FuzzCase) -> Optional[str]:
    """Codegen-compiled fault simulation vs the packed full-pass engine."""
    netlist = case_netlist(case)
    patterns = case_patterns(case, netlist)
    compiled = _fault_sim.FaultSimulator(
        netlist, word_width=len(patterns), engine="compiled"
    ).simulate_patterns(patterns, drop=False)
    packed = _fault_sim.FaultSimulator(
        netlist, word_width=len(patterns), engine="packed"
    ).simulate_patterns(patterns, drop=False)
    if compiled.detected != packed.detected:
        keys = set(compiled.detected) | set(packed.detected)
        diffs = sorted(
            str(fault)
            for fault in keys
            if compiled.detected.get(fault) != packed.detected.get(fault)
        )
        first = diffs[0]
        a = {str(f): w for f, w in compiled.detected.items()}.get(first)
        b = {str(f): w for f, w in packed.detected.items()}.get(first)
        return (
            f"compiled fault simulation diverges from the packed engine on "
            f"{len(diffs)} fault(s), first {first}: compiled-word={a!r} "
            f"packed-word={b!r}"
        )
    return None


def _check_event_propagate(case: FuzzCase) -> Optional[str]:
    """Persistent bucket-queue event engine vs from-scratch evaluation.

    Drives one :class:`~repro.circuits.ternary.TernaryEventEngine`
    through a random walk of input assigns, undos and stuck-at overlay
    ``reforce``/``release_force`` pairs -- the exact call pattern of the
    persistent-engine PODEM fast path -- and checks the live state lists
    against a fresh :func:`~repro.circuits.ternary.eval_ternary` after
    every step.  Odd seeds use the 2-bit mask (the table-driven
    propagation), even seeds a wider mask (the generic fused loop).
    """
    import random as _random

    from repro.circuits import ternary as _ternary

    netlist = case_netlist(case)
    plan = _ternary.packed_plan(netlist)
    rng = _random.Random(case.seed)
    patterns = 2 if case.seed % 2 else rng.choice([1, 3, 5])
    mask = (1 << patterns) - 1
    engine = _ternary.TernaryEventEngine(plan, mask)
    assignment: Dict[str, int] = {}
    undo_stack: list = []
    force = None  # (index, fmask, fvalue, token, saved assignment + stack)
    for step in range(case.params["steps"]):
        action = rng.random()
        if action < 0.15 and force is None:
            index = rng.randrange(plan.num_nets)
            fmask = rng.randrange(1, mask + 1)
            fvalue = rng.randrange(mask + 1) & fmask
            token = engine.reforce(index, fmask, fvalue)
            force = (index, fmask, fvalue, token, dict(assignment), undo_stack)
            undo_stack = []
        elif action < 0.3 and force is not None:
            # Release rewinds past every assign made under the overlay
            # (its token predates them), exactly like PODEM's per-fault
            # cleanup -- restore the bookkeeping to the reforce point.
            engine.release_force(force[3])
            assignment, undo_stack = force[4], force[5]
            force = None
        elif action < 0.75 or not undo_stack:
            net = rng.choice(netlist.inputs)
            bit = rng.getrandbits(1)
            undo_stack.append((net, assignment.get(net), engine.checkpoint()))
            engine.assign(plan.index[net], bit)
            assignment[net] = bit
        else:
            net, previous, token = undo_stack.pop()
            engine.undo(token)
            if previous is None:
                assignment.pop(net, None)
            else:
                assignment[net] = previous
        values, cares = _ternary.seed_ternary_inputs(plan, assignment, patterns)
        gate_force, fmask, fvalue = -1, 0, 0
        if force is not None:
            index, fmask, fvalue = force[0], force[1], force[2]
            if index < plan.num_inputs:
                # Input-site overlay: applied to the seeded state (inputs
                # have no plan row to force through).
                cares[index] |= fmask
                values[index] = (values[index] & ~fmask) | (fvalue & fmask)
            else:
                gate_force = index
        _ternary.eval_ternary(
            plan,
            values,
            cares,
            mask,
            force_index=gate_force,
            force_mask=fmask,
            force_value=fvalue,
        )
        if engine.values != values or engine.cares != cares:
            diffs = sorted(
                i
                for i in range(plan.num_nets)
                if engine.values[i] != values[i] or engine.cares[i] != cares[i]
            )
            i = diffs[0]
            return (
                f"step {step}: persistent event engine diverges from "
                f"from-scratch evaluation on {len(diffs)} net(s), first "
                f"{plan.nets[i]!r}: engine=({engine.values[i]}, "
                f"{engine.cares[i]}) reference=({values[i]}, {cares[i]})"
            )
    return None


def _check_drop_batch(case: FuzzCase) -> Optional[str]:
    """Batched drop simulation of a whole block vs the per-pattern loop."""
    netlist = case_netlist(case)
    patterns = case_patterns(case, netlist)
    words = {net: 0 for net in netlist.inputs}
    for position, pattern in enumerate(patterns):
        for net in netlist.inputs:
            if pattern.get(net, 0):
                words[net] |= 1 << position
    good = _simulator.simulate_parallel(netlist, words, len(patterns))

    batched = _fault_sim.FaultSimulator(netlist, word_width=len(patterns))
    block = batched.detect_block(good, len(patterns), drop=True)

    per_pattern = _fault_sim.FaultSimulator(netlist, word_width=1)
    first_detection: Dict[object, int] = {}
    for position, pattern in enumerate(patterns):
        result = per_pattern.simulate_patterns([pattern], drop=True)
        for fault in result.detected:
            first_detection.setdefault(fault, position)

    batched_detected = set(batched.detected_faults)
    reference_detected = set(per_pattern.detected_faults)
    if batched_detected != reference_detected:
        only_batched = sorted(str(f) for f in batched_detected - reference_detected)
        only_reference = sorted(str(f) for f in reference_detected - batched_detected)
        return (
            f"batched drop simulation disagrees with the per-pattern loop on "
            f"the detected set: only-batched={_clip(only_batched)} "
            f"only-per-pattern={_clip(only_reference)}"
        )
    for fault, word in block.detected.items():
        first_bit = (word & -word).bit_length() - 1
        if first_detection.get(fault) != first_bit:
            return (
                f"fault {fault}: batched first-detecting pattern {first_bit} "
                f"!= per-pattern {first_detection.get(fault)}"
            )
    return None


def _encoding_or_skip(encode: Callable[[], object], label: str):
    try:
        return encode(), None
    except EncodingError as error:
        return None, f"{label}: {error}"


def _check_solver_batch(case: FuzzCase) -> Optional[str]:
    """Batched packed GF(2) solver trials vs the reference position scan."""
    test_set = case_test_set(case)
    config = case_config(case, test_set)

    def encode(batch_trials: bool):
        return _encoder.ReseedingEncoder(
            num_cells=test_set.num_cells,
            num_scan_chains=config.num_scan_chains,
            lfsr_size=config.lfsr_size,
            window_length=config.window_length,
            batch_trials=batch_trials,
        ).encode(test_set)

    batched, batched_error = _encoding_or_skip(lambda: encode(True), "batched")
    scan, scan_error = _encoding_or_skip(lambda: encode(False), "scan")
    if (batched is None) != (scan is None):
        return (
            "batched solver trials and the reference scan disagree on "
            f"encodability: {batched_error or scan_error}"
        )
    if batched is None:
        raise SkipCase(f"unencodable on both sides ({batched_error})")
    a, b = batched.to_dict(), scan.to_dict()
    if a != b:
        return (
            "batched solver trials produced a different encoding than the "
            "reference scan: " + _diff_dicts(a, b, "batched", "scan")
        )
    return None


def _staged_encoding(case: FuzzCase):
    test_set = case_test_set(case)
    config = case_config(case, test_set)
    try:
        return _pipeline.encode(test_set, config, verify=False)
    except (EncodingError, RuntimeError) as error:
        raise SkipCase(f"unencodable case: {error}") from error


def _check_embedding(case: FuzzCase) -> Optional[str]:
    """Vectorized numpy embedding matching vs the pure-Python scan."""
    encoded = _staged_encoding(case)
    segmentation = WindowSegmentation(
        encoded.encoding.window_length,
        min(encoded.config.segment_size, encoded.encoding.window_length),
    )
    vectorized = _selection.build_embedding_map(
        encoded.encoding, encoded.test_set, encoded.substrate.equations, segmentation
    )
    reference = _selection.build_embedding_map_reference(
        encoded.encoding, encoded.test_set, encoded.substrate.equations, segmentation
    )
    if vectorized.cube_segments != reference.cube_segments:
        for cube_index, segments in reference.cube_segments.items():
            got = vectorized.cube_segments.get(cube_index, set())
            if got != segments:
                return (
                    f"cube {cube_index}: vectorized embedding map found "
                    f"segments {_clip(sorted(got))}, reference "
                    f"{_clip(sorted(segments))}"
                )
        return "vectorized embedding map has extra cubes vs the reference"
    if vectorized.segment_cubes != reference.segment_cubes:
        return "embedding maps agree per cube but not per segment"
    return None


def _check_decompressor(case: FuzzCase) -> Optional[str]:
    """Segment-batched decompressor replay vs the per-clock datapath."""
    encoded = _staged_encoding(case)
    reduction = _pipeline.reduce(encoded)
    args = (
        encoded.encoding,
        reduction,
        encoded.substrate.lfsr.transition,
        encoded.substrate.phase_shifter,
        encoded.substrate.architecture,
    )
    batched = _architecture.simulate_decompression(*args, engine="events")
    reference = _architecture.simulate_decompression(*args, engine="reference")
    if batched != reference:
        for attr in (
            "seeds_applied",
            "vectors_applied",
            "lfsr_clocks",
            "skip_clocks",
            "group_sizes",
            "useful_vectors",
        ):
            a, b = getattr(batched, attr), getattr(reference, attr)
            if a != b:
                return (
                    f"batched decompressor replay diverges from the per-clock "
                    f"reference on {attr}: batched={_clip(a)} "
                    f"per-clock={_clip(b)}"
                )
    return None


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_NETLIST_SPACE: Dict[str, ParamRange] = {
    "num_inputs": (6, 18, 2),
    "num_gates": (20, 120, 1),
    "patterns": (4, 16, 1),
}

_ENCODING_SPACE: Dict[str, ParamRange] = {
    "num_cells": (24, 96, 8),
    "num_cubes": (6, 24, 2),
    "max_specified": (4, 12, 2),
    "chains": (2, 12, 1),
    "window": (12, 48, 4),
    "segment": (2, 12, 1),
    "speedup": (2, 12, 2),
}

#: All registered checks by name (differential first, chaos appended by
#: :mod:`repro.fuzz.chaos` at import time through :func:`register`).
CHECKS: Dict[str, Check] = {}


def register(check: Check) -> Check:
    if check.name in CHECKS:
        raise ValueError(f"duplicate fuzz check {check.name!r}")
    CHECKS[check.name] = check
    return check


def differential_check_names() -> List[str]:
    return [name for name, check in CHECKS.items() if not check.chaos]


def chaos_check_names() -> List[str]:
    return [name for name, check in CHECKS.items() if check.chaos]


register(
    Check(
        name="ternary-sim",
        description="packed two-word ternary simulation vs dict reference",
        space=dict(_NETLIST_SPACE),
        run=_check_ternary_sim,
    )
)
register(
    Check(
        name="podem-events",
        description="event-driven PODEM vs full-pass packed engine",
        space={"num_inputs": (6, 16, 2), "num_gates": (20, 90, 1)},
        run=_check_podem_events,
    )
)
register(
    Check(
        name="event-propagate",
        description="persistent bucket-queue event engine vs from-scratch eval",
        space={
            "num_inputs": (4, 14, 2),
            "num_gates": (15, 110, 1),
            "steps": (30, 140, 5),
        },
        run=_check_event_propagate,
    )
)
register(
    Check(
        name="podem-packed",
        description="packed dual-machine PODEM vs dict reference engine",
        space={"num_inputs": (6, 14, 2), "num_gates": (20, 70, 1)},
        run=_check_podem_packed,
    )
)
register(
    Check(
        name="sim-compiled",
        description="codegen-compiled ternary simulation vs dict reference",
        space=dict(_NETLIST_SPACE),
        run=_check_sim_compiled,
    )
)
register(
    Check(
        name="faultsim-compiled",
        description="codegen-compiled fault simulation vs packed engine",
        space=dict(_NETLIST_SPACE),
        run=_check_faultsim_compiled,
    )
)
register(
    Check(
        name="drop-batch",
        description="batched drop simulation block vs per-pattern loop",
        space=dict(_NETLIST_SPACE),
        run=_check_drop_batch,
    )
)
register(
    Check(
        name="solver-batch",
        description="batched packed GF(2) solver trials vs reference scan",
        space=dict(_ENCODING_SPACE),
        run=_check_solver_batch,
    )
)
register(
    Check(
        name="embedding",
        description="vectorized numpy embedding map vs pure-Python scan",
        space=dict(_ENCODING_SPACE),
        run=_check_embedding,
    )
)
register(
    Check(
        name="decompressor",
        description="segment-batched decompressor replay vs per-clock datapath",
        space=dict(_ENCODING_SPACE),
        run=_check_decompressor,
    )
)
