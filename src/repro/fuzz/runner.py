"""Time-budgeted fuzzing campaign over the registered checks.

:func:`run_fuzz` drives rounds of cases -- one per selected check, round
after round -- until the wall-clock budget is spent.  The *first* round
always completes regardless of the budget, so even ``--time-budget 1``
covers every selected check at least once (what the CI smoke job relies
on).  Every mismatch is shrunk to a minimal case and written as a repro
directory; fuzzing then continues with the remaining checks so one broken
engine pair cannot hide a second one.

Determinism: the whole run derives from one seed.  Case seeds are drawn
from a master RNG in a fixed order, so ``--seed 0`` reproduces the same
case sequence on every machine -- only the number of completed rounds
varies with the time budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

# Importing the chaos module registers its checks alongside the
# differential ones.
import repro.fuzz.chaos  # noqa: F401  (registration side effect)
from repro.fuzz.generators import FuzzCase
from repro.fuzz.oracle import CHECKS, CheckOutcome, run_case
from repro.fuzz.shrink import ShrinkResult, shrink_case, write_repro
from repro.telemetry import get_recorder


@dataclass
class FuzzMismatch:
    """One detected divergence, with its shrunk repro."""

    outcome: CheckOutcome
    shrunk: Optional[ShrinkResult] = None
    repro_path: Optional[Path] = None

    @property
    def case(self) -> FuzzCase:
        return self.shrunk.case if self.shrunk is not None else self.outcome.case

    @property
    def detail(self) -> str:
        return self.shrunk.detail if self.shrunk is not None else self.outcome.detail


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz run."""

    seed: int
    time_budget_s: float
    elapsed_s: float = 0.0
    rounds: int = 0
    cases: int = 0
    skips: int = 0
    per_check: Dict[str, Dict[str, int]] = field(default_factory=dict)
    mismatches: List[FuzzMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary_lines(self) -> List[str]:
        lines = [
            f"fuzz seed {self.seed}: {self.cases} cases over {self.rounds} "
            f"round(s) in {self.elapsed_s:.1f}s "
            f"(budget {self.time_budget_s:.0f}s) -- "
            f"{len(self.mismatches)} mismatch(es), {self.skips} skipped"
        ]
        for name in sorted(self.per_check):
            counts = self.per_check[name]
            status = "OK"
            if counts.get("mismatch"):
                status = "MISMATCH"
            elif counts.get("ok", 0) == 0:
                status = "all-skipped"
            lines.append(
                f"  {name:>18}: {counts.get('cases', 0)} cases, "
                f"{counts.get('ok', 0)} ok, {counts.get('skip', 0)} skipped "
                f"[{status}]"
            )
        for mismatch in self.mismatches:
            lines.append(
                f"  FAIL {mismatch.case.check} seed={mismatch.case.seed} "
                f"params={mismatch.case.params}: {mismatch.detail}"
            )
            if mismatch.repro_path is not None:
                lines.append(f"       repro written: {mismatch.repro_path}")
        return lines


def resolve_checks(
    names: Optional[List[str]] = None, include_chaos: bool = False
) -> List[str]:
    """The check names a run will drive, validated against the registry."""
    if names:
        unknown = sorted(set(names) - set(CHECKS))
        if unknown:
            raise ValueError(
                f"unknown fuzz check(s) {unknown}; known: {sorted(CHECKS)}"
            )
        return list(dict.fromkeys(names))
    return [
        name
        for name, check in CHECKS.items()
        if include_chaos or not check.chaos
    ]


def run_fuzz(
    checks: Optional[List[str]] = None,
    time_budget_s: float = 30.0,
    seed: int = 0,
    out_dir: "str | Path" = "results/fuzz",
    shrink: bool = True,
    include_chaos: bool = False,
    max_mismatches: int = 5,
    progress: Optional[Callable[[CheckOutcome], None]] = None,
) -> FuzzReport:
    """Fuzz the selected checks until the time budget is spent.

    Checks that have already produced a mismatch are retired for the rest
    of the run (their repro is on disk; re-finding the same divergence
    spends budget the healthy checks could use).  The run stops early when
    ``max_mismatches`` distinct checks have failed.
    """
    selected = resolve_checks(checks, include_chaos=include_chaos)
    recorder = get_recorder()
    report = FuzzReport(seed=seed, time_budget_s=time_budget_s)
    import random

    master = random.Random(seed)
    start = time.perf_counter()
    deadline = start + time_budget_s
    failed: set = set()
    with recorder.span("fuzz.run", seed=seed, checks=len(selected)):
        while True:
            report.rounds += 1
            for name in selected:
                if name in failed:
                    continue
                # The first round always runs every check once; later
                # rounds stop as soon as the budget is exhausted.
                if report.rounds > 1 and time.perf_counter() >= deadline:
                    break
                check = CHECKS[name]
                case = check.draw(master)
                outcome = run_case(check, case)
                counts = report.per_check.setdefault(
                    name, {"cases": 0, "ok": 0, "skip": 0, "mismatch": 0}
                )
                counts["cases"] += 1
                report.cases += 1
                recorder.counter("fuzz.cases")
                if outcome.status == "skip":
                    counts["skip"] += 1
                    report.skips += 1
                elif outcome.status == "mismatch":
                    counts["mismatch"] += 1
                    recorder.counter("fuzz.mismatches")
                    failed.add(name)
                    mismatch = FuzzMismatch(outcome=outcome)
                    if shrink:
                        with recorder.span("fuzz.shrink", check=name):
                            mismatch.shrunk = shrink_case(
                                check, case, outcome.detail
                            )
                        mismatch.repro_path = write_repro(
                            out_dir, mismatch.shrunk, original=case
                        )
                    report.mismatches.append(mismatch)
                else:
                    counts["ok"] += 1
                if progress is not None:
                    progress(outcome)
                if len(report.mismatches) >= max_mismatches:
                    break
            still_running = [name for name in selected if name not in failed]
            if (
                not still_running
                or len(report.mismatches) >= max_mismatches
                or time.perf_counter() >= deadline
            ):
                break
    report.elapsed_s = time.perf_counter() - start
    return report


def replay_case(case: FuzzCase) -> CheckOutcome:
    """Re-execute one stored case (``repro fuzz --replay``)."""
    return run_case(CHECKS[case.check], case)
