"""Seeded random generators for the differential fuzzing subsystem.

Every artefact a check consumes -- netlists, test sets, compression
configs, pattern batches -- is derived *deterministically* from a
:class:`FuzzCase`: the check name, one integer seed and a flat dict of
integer size parameters.  That is what makes shrinking and replay work:
a case file on disk is enough to rebuild the exact failing inputs on any
machine, and the shrinker can walk the parameter space knowing that the
same (seed, params) always regenerates the same artefacts.

The parameter *spaces* live with the checks (`repro.fuzz.oracle`); this
module only turns drawn parameters into concrete objects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.circuits.generator import random_netlist
from repro.circuits.netlist import Netlist
from repro.config import CompressionConfig
from repro.testdata.profiles import custom_profile
from repro.testdata.synthetic import generate_test_set
from repro.testdata.test_set import TestSet

#: Inclusive (low, high, floor) bounds of one integer parameter.  ``floor``
#: is the hard minimum the shrinker may not cross (usually the smallest
#: value the generators accept); drawing uses [low, high].
ParamRange = Tuple[int, int, int]


@dataclass(frozen=True)
class FuzzCase:
    """One reproducible fuzz input: a check, a seed and sized parameters."""

    check: str
    seed: int
    params: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"check": self.check, "seed": self.seed, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzCase":
        return cls(
            check=str(data["check"]),
            seed=int(data["seed"]),
            params={k: int(v) for k, v in dict(data.get("params") or {}).items()},
        )

    def rng(self, salt: str = "") -> random.Random:
        """A fresh RNG bound to this case (and an optional stream salt)."""
        return random.Random(f"{self.check}:{self.seed}:{salt}")


def draw_params(rng: random.Random, space: Dict[str, ParamRange]) -> Dict[str, int]:
    """Draw one value per parameter, in sorted name order (deterministic)."""
    return {name: rng.randint(space[name][0], space[name][1]) for name in sorted(space)}


# ----------------------------------------------------------------------
# Concrete artefacts
# ----------------------------------------------------------------------
def case_netlist(case: FuzzCase) -> Netlist:
    """The random combinational netlist of a circuit-level case."""
    return random_netlist(
        f"fuzz_{case.check}_{case.seed}",
        num_inputs=max(2, case.params["num_inputs"]),
        num_gates=max(1, case.params["num_gates"]),
        seed=case.seed,
    )


def case_test_set(case: FuzzCase) -> TestSet:
    """A calibrated synthetic test set drawn from the case's parameters."""
    num_cells = max(8, case.params["num_cells"])
    max_specified = max(2, min(case.params["max_specified"], num_cells))
    profile = custom_profile(
        f"fuzz_{case.check}_{case.seed}",
        scan_cells=num_cells,
        num_cubes=max(2, case.params["num_cubes"]),
        max_specified=max_specified,
        mean_specified=max(2.0, max_specified / 2.0),
        scan_chains=max(1, min(case.params.get("chains", 8), num_cells)),
        lfsr_size=max_specified + 8,
    )
    return generate_test_set(profile, seed=case.seed)


def case_config(case: FuzzCase, test_set: TestSet) -> CompressionConfig:
    """A compression config consistent with the drawn test set."""
    window = max(4, case.params.get("window", 30))
    return CompressionConfig(
        window_length=window,
        segment_size=max(1, min(case.params.get("segment", 5), window)),
        speedup=max(2, case.params.get("speedup", 6)),
        num_scan_chains=max(1, min(case.params.get("chains", 8), test_set.num_cells)),
        lfsr_size=max(test_set.max_specified() + 8, case.params.get("lfsr", 0)),
    )


def case_assignments(
    case: FuzzCase, netlist: Netlist, count: Optional[int] = None
) -> List[Dict[str, int]]:
    """Random partial 0/1 input assignments (the rest of the inputs are X).

    The specified fraction sweeps from fully-X to fully specified across
    the batch so every density regime is exercised on every case.
    """
    rng = case.rng("assignments")
    count = count if count is not None else max(2, case.params.get("patterns", 6))
    batch: List[Dict[str, int]] = []
    for i in range(count):
        fraction = i / max(1, count - 1)
        batch.append(
            {
                net: rng.getrandbits(1)
                for net in netlist.inputs
                if rng.random() < fraction or fraction == 1.0
            }
        )
    return batch


def case_patterns(
    case: FuzzCase, netlist: Netlist, count: Optional[int] = None
) -> List[Dict[str, int]]:
    """Fully specified random input patterns (for the fault simulator)."""
    rng = case.rng("patterns")
    count = count if count is not None else max(2, case.params.get("patterns", 8))
    return [
        {net: rng.getrandbits(1) for net in netlist.inputs} for _ in range(count)
    ]
