"""Delta-debugging shrinker and repro persistence.

When the differential oracle finds a mismatch, the raw case is usually far
larger than it needs to be (the fuzz loop draws generous sizes on purpose).
:func:`shrink_case` walks the case's integer parameters toward their floors
-- halving first, then stepping -- re-running the check after every
candidate reduction and keeping each one that *still mismatches*.  The
result is a local minimum: no single parameter can be reduced further
without losing the failure.

:func:`write_repro` persists a shrunk case as a self-contained directory:

``case.json``
    check name, seed, minimal parameters, the mismatch detail, shrink
    statistics and a ready-to-paste replay command.
``netlist.bench`` / ``test_set.tests``
    the regenerated input artefacts (when the check consumes them), so the
    failing inputs are inspectable without running any generator code.

``repro fuzz --replay <dir-or-case.json>`` re-executes the stored case.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.fuzz.generators import FuzzCase
from repro.fuzz.oracle import CHECKS, Check, case_artifacts, run_case

CASE_FILENAME = "case.json"


@dataclass
class ShrinkResult:
    """The minimal failing case plus how the shrink went."""

    case: FuzzCase
    detail: str
    attempts: int
    reductions: int

    @property
    def params(self) -> Dict[str, int]:
        return self.case.params


def _still_fails(check: Check, case: FuzzCase) -> Optional[str]:
    """The mismatch detail if the candidate case still fails, else None.

    A candidate that *skips* (e.g. shrank into an unencodable corner) does
    not preserve the failure and is rejected like a passing one.
    """
    outcome = run_case(check, case)
    return outcome.detail if outcome.status == "mismatch" else None


def shrink_case(
    check: Check,
    case: FuzzCase,
    detail: str,
    max_attempts: int = 200,
) -> ShrinkResult:
    """Greedily minimise every integer parameter while the check still fails.

    Parameters are visited round-robin until a full pass makes no progress
    (or ``max_attempts`` check executions are spent -- shrinking is
    best-effort, never the long pole of a fuzz run).  For each parameter
    the shrinker first tries the floor outright, then binary-searches the
    smallest still-failing value between floor and current.
    """
    current = case
    attempts = 0
    reductions = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for name in sorted(current.params):
            floor = check.space.get(name, (0, 0, 1))[2]
            value = current.params[name]
            if value <= floor:
                continue
            # Try the floor first: most parameters are irrelevant to a
            # given failure and collapse in one attempt.
            lo, hi = floor, value  # invariant: hi fails, lo untested/passes
            candidate = FuzzCase(
                check=current.check,
                seed=current.seed,
                params={**current.params, name: lo},
            )
            attempts += 1
            failed = _still_fails(check, candidate)
            if failed is not None:
                current, detail = candidate, failed
                reductions += 1
                progress = True
                continue
            # Binary search the boundary: smallest value in (lo, hi] that
            # still fails.
            while hi - lo > 1 and attempts < max_attempts:
                mid = (lo + hi) // 2
                candidate = FuzzCase(
                    check=current.check,
                    seed=current.seed,
                    params={**current.params, name: mid},
                )
                attempts += 1
                failed = _still_fails(check, candidate)
                if failed is not None:
                    hi, detail = mid, failed
                else:
                    lo = mid
            if hi < value:
                current = FuzzCase(
                    check=current.check,
                    seed=current.seed,
                    params={**current.params, name: hi},
                )
                reductions += 1
                progress = True
    return ShrinkResult(
        case=current, detail=detail, attempts=attempts, reductions=reductions
    )


def write_repro(
    out_dir: "str | Path",
    shrunk: ShrinkResult,
    original: Optional[FuzzCase] = None,
) -> Path:
    """Write a self-contained repro directory; returns its path."""
    case = shrunk.case
    directory = Path(out_dir) / f"repro-{case.check}-{case.seed}"
    directory.mkdir(parents=True, exist_ok=True)
    payload: Dict[str, object] = {
        **case.to_dict(),
        "detail": shrunk.detail,
        "shrink": {
            "attempts": shrunk.attempts,
            "reductions": shrunk.reductions,
            "original_params": dict(original.params) if original else None,
        },
        "replay": f"python -m repro fuzz --replay {directory / CASE_FILENAME}",
    }
    (directory / CASE_FILENAME).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    for filename, text in case_artifacts(case).items():
        (directory / filename).write_text(text, encoding="utf-8")
    return directory


def load_case(path: "str | Path") -> FuzzCase:
    """Load a case from a ``case.json`` file or a repro directory."""
    location = Path(path)
    if location.is_dir():
        location = location / CASE_FILENAME
    data = json.loads(location.read_text(encoding="utf-8"))
    case = FuzzCase.from_dict(data)
    if case.check not in CHECKS:
        raise ValueError(
            f"unknown check {case.check!r} in {location} "
            f"(known: {', '.join(sorted(CHECKS))})"
        )
    return case
