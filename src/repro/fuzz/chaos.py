"""Chaos checks: inject real faults, assert nothing is lost.

Two fault families cover the campaign subsystem's crash-consistency
contract:

``chaos-worker-kill``
    Runs a real (tiny) campaign on a two-worker pool whose first worker(s)
    SIGKILL *themselves* mid-``compress`` -- an honest hard crash, no
    cleanup, no exception path.  The campaign must still complete with
    every job ``ok`` (the runner respawns and retries the crashed chunk),
    the store must hold exactly one record per job (nothing lost, nothing
    duplicated), and the retry accounting must show the injected crashes.

``chaos-store-tail``
    Fills a result store, then mutilates the file tail the way crashes do
    -- truncation inside a record, garbage overwrite, a torn appended
    fragment, cuts spanning several records -- and asserts the reload
    keeps exactly the intact prefix, repairs the file, and that re-putting
    the lost records restores completeness (i.e. a resumed campaign loses
    nothing but the torn tail itself).

Both are registered with ``chaos=True``: the default differential sweep
skips them (they fork processes and write temp directories), ``repro fuzz
--chaos`` and the nightly CI run include them.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import signal
import tempfile
from pathlib import Path
from typing import Optional

from repro.fuzz.generators import FuzzCase, case_test_set
from repro.fuzz.oracle import Check, SkipCase, register
from repro.telemetry import get_recorder


def _require_fork() -> None:
    try:
        multiprocessing.get_context("fork")
    except ValueError as error:  # pragma: no cover - non-POSIX platforms
        raise SkipCase(f"chaos checks need the fork start method: {error}")


# ----------------------------------------------------------------------
# Worker-kill chaos
# ----------------------------------------------------------------------
def _killing_compress(marker_dir: str, kills: int, real_compress):
    """A compress wrapper whose first ``kills`` callers SIGKILL themselves.

    Coordination runs through marker files (one per kill) so it works
    across forked worker processes: each new worker that finds a free
    marker slot claims it atomically and dies mid-job, exactly once.
    """

    def wrapper(test_set, config, **kwargs):
        for slot in range(kills):
            marker = Path(marker_dir) / f"kill-{slot}"
            try:
                marker.touch(exist_ok=False)
            except FileExistsError:
                continue
            os.kill(os.getpid(), signal.SIGKILL)
        return real_compress(test_set, config, **kwargs)

    return wrapper


def _check_worker_kill(case: FuzzCase) -> Optional[str]:
    _require_fork()
    from repro.campaign import runner as runner_mod
    from repro.campaign.spec import CampaignSpec, TestSource
    from repro.campaign.store import ResultStore
    from repro.config import CompressionConfig

    kills = max(1, case.params.get("kills", 1))
    test_set = case_test_set(case)
    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    real_compress = runner_mod.compress
    try:
        tests_path = workdir / "chaos.tests"
        tests_path.write_text(test_set.to_text())
        spec = CampaignSpec(
            name=f"chaos-{case.seed}",
            sources=(TestSource(tests=str(tests_path)),),
            base=CompressionConfig(
                window_length=20,
                num_scan_chains=min(8, test_set.num_cells),
                lfsr_size=test_set.max_specified() + 8,
            ),
            axes={"speedup": [3, 6], "segment_size": [4, 10]},
        )
        runner_mod.compress = _killing_compress(
            str(workdir), kills, real_compress
        )
        get_recorder().counter("fuzz.faults_injected", kills)
        with ResultStore(workdir / "store") as store:
            result = runner_mod.CampaignRunner(
                spec,
                store,
                jobs=2,
                max_retries=3,
                retry_backoff_s=0.05,
            ).run()
            injected = sum(
                1 for slot in range(kills) if (workdir / f"kill-{slot}").exists()
            )
            if injected == 0:
                raise SkipCase("no worker picked up a kill marker")
            failures = [
                f"{outcome.job.job_id}={outcome.status}"
                for outcome in result.outcomes
                if outcome.status != "ok"
            ]
            if failures:
                return (
                    f"campaign did not recover from {injected} SIGKILLed "
                    f"worker(s): {failures}"
                )
            retried = sum(outcome.retried for outcome in result.outcomes)
            if retried == 0:
                return (
                    f"{injected} worker(s) were SIGKILLed but no job reports "
                    f"a retry -- crash recovery accounting is broken"
                )
            # One line per job: nothing lost, nothing duplicated.
            lines = [
                json.loads(line)
                for line in store.path.read_text().splitlines()
                if line.strip()
            ]
            keys = [line["key"] for line in lines]
            if len(keys) != len(set(keys)):
                dupes = sorted(k for k in set(keys) if keys.count(k) > 1)
                return f"duplicate store records after crash retry: {dupes}"
            if len(keys) != result.num_jobs:
                return (
                    f"store holds {len(keys)} records for {result.num_jobs} "
                    f"jobs after crash retry"
                )
            missing = [
                outcome.key
                for outcome in result.outcomes
                if not store.completed(outcome.key)
            ]
            if missing:
                return f"jobs lost from the store after crash retry: {missing}"
        return None
    finally:
        runner_mod.compress = real_compress
        shutil.rmtree(workdir, ignore_errors=True)


# ----------------------------------------------------------------------
# Store-tail chaos
# ----------------------------------------------------------------------
def _synthetic_records(case: FuzzCase, count: int):
    from repro.campaign.store import StoredResult

    return [
        StoredResult(
            key=f"chaos{case.seed:08d}{i:04d}",
            job_id=f"job-{i}",
            circuit="chaos",
            fingerprint=f"fp{case.seed}",
            config={"window_length": 20, "segment_size": 4},
            status="ok",
            summary={"index": i, "tsl": 100 + i},
            elapsed_s=0.01 * i,
        )
        for i in range(count)
    ]


def _corrupt_tail(path: Path, rng, ops: int) -> None:
    """Apply ``ops`` random tail corruptions to the store file.

    Every operation only damages a *suffix* of the file -- exactly what
    interrupted appends and torn page writebacks produce.
    """
    for _ in range(ops):
        raw = path.read_bytes()
        if not raw:
            break
        op = rng.choice(("truncate", "garbage", "fragment"))
        if op == "truncate":
            cut = rng.randrange(max(1, len(raw) - 200), len(raw))
            path.write_bytes(raw[:cut])
        elif op == "garbage":
            length = rng.randrange(1, 120)
            junk = bytes(rng.randrange(256) for _ in range(length))
            path.write_bytes(raw[: max(0, len(raw) - length)] + junk)
        else:  # fragment: a torn half-record appended with no newline
            fragment = b'{"key": "torn", "job_id": "half'
            path.write_bytes(raw + fragment[: rng.randrange(4, len(fragment))])


def _intact_prefix_keys(path: Path) -> set:
    """Keys of the leading run of fully intact record lines.

    The corruption ops only ever damage a suffix, so a correct repair must
    keep exactly these records (a trailing intact-but-unterminated record
    is also kept, matching the store's torn-newline semantics).
    """
    from repro.campaign.store import StoredResult

    keys = set()
    raw = path.read_bytes()
    lines = raw.split(b"\n")
    for number, line in enumerate(lines, 1):
        if not line:
            continue
        try:
            record = StoredResult.from_dict(json.loads(line.decode("utf-8")))
        except Exception:
            break
        if number == len(lines) and not raw.endswith(b"\n"):
            # unterminated final line: kept only if it parsed (it did)
            keys.add(record.key)
            break
        keys.add(record.key)
    return keys


def _check_store_tail(case: FuzzCase) -> Optional[str]:
    from repro.campaign.store import ResultStore

    rng = case.rng("corruption")
    count = max(3, case.params.get("records", 8))
    ops = max(1, case.params.get("ops", 2))
    records = _synthetic_records(case, count)
    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-store-"))
    try:
        with ResultStore(workdir) as store:
            for record in records:
                store.put(record)
            path = store.path
        _corrupt_tail(path, rng, ops)
        get_recorder().counter("fuzz.faults_injected", ops)
        expected_keys = _intact_prefix_keys(path)
        try:
            with ResultStore(workdir) as reloaded:
                kept = {record.key for record in reloaded.records()}
                if kept != expected_keys:
                    return (
                        f"after tail corruption the store kept {sorted(kept)} "
                        f"but the intact prefix holds {sorted(expected_keys)}"
                    )
                # Resume semantics: re-putting the lost records restores a
                # complete store without disturbing the kept prefix.
                for record in records:
                    if record.key not in kept:
                        reloaded.put(record)
            with ResultStore(workdir) as final:
                final_keys = {record.key for record in final.records()}
        except ValueError as error:
            return (
                f"store reload raised on pure tail corruption (must repair, "
                f"not fail): {error}"
            )
        if final_keys != {record.key for record in records}:
            return (
                f"resume after tail corruption lost records: kept only "
                f"{sorted(final_keys)}"
            )
        return None
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


register(
    Check(
        name="chaos-worker-kill",
        description="SIGKILL campaign workers mid-job; retries must lose nothing",
        space={
            "num_cells": (32, 64, 16),
            "num_cubes": (8, 16, 4),
            "max_specified": (4, 8, 4),
            "kills": (1, 2, 1),
        },
        run=_check_worker_kill,
        chaos=True,
    )
)
register(
    Check(
        name="chaos-store-tail",
        description="truncate/corrupt the store tail; reload+resume must lose nothing",
        space={
            "num_cells": (16, 32, 16),
            "records": (3, 16, 3),
            "ops": (1, 4, 1),
        },
        run=_check_store_tail,
        chaos=True,
    )
)
