"""Fault-injection and differential fuzzing subsystem.

The repo's safety net for its interchangeable engine variants, promoted
from per-PR golden tests to a first-class subsystem (ROADMAP direction 5):

* :mod:`repro.fuzz.generators` -- seeded, fully deterministic random
  netlist / test-set / config generation (a case is (check, seed, params));
* :mod:`repro.fuzz.oracle` -- differential checks asserting bit-identical
  results across every engine pair (packed vs dict simulation, events vs
  full-pass PODEM, batched vs per-pattern drops, batched-trials vs scan
  solving, numpy vs reference embedding, batched vs per-clock replay);
* :mod:`repro.fuzz.chaos` -- fault injection: SIGKILLed campaign workers
  and corrupted store tails, with lose-nothing verification;
* :mod:`repro.fuzz.shrink` -- delta-debugging parameter minimisation and
  self-contained repro directories;
* :mod:`repro.fuzz.runner` -- the time-budgeted fuzz loop behind
  ``repro fuzz``.
"""

from repro.fuzz.generators import FuzzCase
from repro.fuzz.oracle import (
    CHECKS,
    Check,
    CheckOutcome,
    SkipCase,
    chaos_check_names,
    differential_check_names,
    run_case,
)
from repro.fuzz.runner import (
    FuzzMismatch,
    FuzzReport,
    replay_case,
    resolve_checks,
    run_fuzz,
)
from repro.fuzz.shrink import ShrinkResult, load_case, shrink_case, write_repro

__all__ = [
    "CHECKS",
    "Check",
    "CheckOutcome",
    "FuzzCase",
    "FuzzMismatch",
    "FuzzReport",
    "ShrinkResult",
    "SkipCase",
    "chaos_check_names",
    "differential_check_names",
    "load_case",
    "replay_case",
    "resolve_checks",
    "run_case",
    "run_fuzz",
    "shrink_case",
    "write_repro",
]
