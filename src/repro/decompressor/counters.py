"""Counter primitives of the decompression controller.

The controller of Fig. 3 is built from six small counters:

========  =====================================================================
Bit       counts the shift cycles of one test vector (0 .. r-1)
Vector    counts the vectors of one segment (0 .. S-1)
Segment   counts the segments generated for the current seed
Useful    counts down the useful segments remaining for the current seed
Seed      counts the seeds of the current seed-group
Group     counts the seed-groups (its value = useful segments per seed)
========  =====================================================================

The :class:`Counter` model is deliberately simple -- load, increment /
decrement, wrap detection -- because the controller logic itself lives in
:class:`repro.decompressor.architecture.DecompressionController`; what matters
here is having an explicit register-level object whose width feeds the
gate-equivalent cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


def counter_width(max_value: int) -> int:
    """Number of flip-flops needed to count up to ``max_value`` inclusive."""
    if max_value < 0:
        raise ValueError("max_value must be non-negative")
    if max_value == 0:
        return 1
    return max_value.bit_length()


class Counter:
    """A loadable up/down counter with wrap detection."""

    def __init__(self, name: str, max_value: int):
        if max_value < 0:
            raise ValueError("max_value must be non-negative")
        self._name = name
        self._max_value = max_value
        self._width = counter_width(max_value)
        self._value = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def value(self) -> int:
        return self._value

    @property
    def max_value(self) -> int:
        return self._max_value

    @property
    def width(self) -> int:
        """Register width in flip-flops."""
        return self._width

    def is_zero(self) -> bool:
        return self._value == 0

    def at_max(self) -> bool:
        return self._value == self._max_value

    # ------------------------------------------------------------------
    # Operation
    # ------------------------------------------------------------------
    def load(self, value: int) -> None:
        if not 0 <= value <= self._max_value:
            raise ValueError(
                f"{self._name}: cannot load {value} (max {self._max_value})"
            )
        self._value = value

    def reset(self) -> None:
        self._value = 0

    def increment(self) -> bool:
        """Count up by one; returns True when the counter wraps to zero."""
        if self._value == self._max_value:
            self._value = 0
            return True
        self._value += 1
        return False

    def decrement(self) -> bool:
        """Count down by one; returns True when the counter hits zero."""
        if self._value == 0:
            raise ValueError(f"{self._name}: decrement below zero")
        self._value -= 1
        return self._value == 0

    def __repr__(self) -> str:
        return f"Counter({self._name!r}, value={self._value}, max={self._max_value})"


@dataclass
class CounterBank:
    """The six controller counters, dimensioned for one reduction result.

    Parameters mirror Fig. 3: chain length ``r`` (Bit), segment size ``S``
    (Vector), segments per window (Segment), maximum useful segments per seed
    (Useful Segment and Group), and the largest seed-group size (Seed).
    """

    bit: Counter
    vector: Counter
    segment: Counter
    useful_segment: Counter
    seed: Counter
    group: Counter

    @classmethod
    def dimension(
        cls,
        chain_length: int,
        segment_size: int,
        segments_per_window: int,
        max_useful_segments: int,
        max_group_size: int,
    ) -> "CounterBank":
        return cls(
            bit=Counter("bit", max(chain_length - 1, 0)),
            vector=Counter("vector", max(segment_size - 1, 0)),
            segment=Counter("segment", max(segments_per_window - 1, 0)),
            useful_segment=Counter("useful_segment", max(max_useful_segments, 1)),
            seed=Counter("seed", max(max_group_size - 1, 0)),
            group=Counter("group", max(max_useful_segments, 1)),
        )

    def counters(self) -> List[Counter]:
        return [
            self.bit,
            self.vector,
            self.segment,
            self.useful_segment,
            self.seed,
            self.group,
        ]

    def total_flip_flops(self) -> int:
        """Total register bits of the controller counters."""
        return sum(counter.width for counter in self.counters())

    def widths(self) -> Dict[str, int]:
        return {counter.name: counter.width for counter in self.counters()}
