"""Gate-equivalent cost model of the decompressor (Section 4 hardware figures).

The paper reports hardware overhead in *gate equivalents* (GE), one GE being
the area of a 2-input NAND gate.  This module provides an analytical model
with standard per-cell weights so that the Section 4 experiments (State Skip
circuit cost vs ``k``, total decompressor cost, Mode Select cost vs ``L`` and
``S``, multi-core SoC sharing) can be regenerated.

Absolute GE numbers depend on the standard-cell library; the defaults here
use the customary weights (XOR2 ~ 2 GE, 2:1 MUX ~ 2.5 GE, scan flip-flop
~ 6 GE) which land the s13207 decompressor in the same few-hundred-GE range
the paper quotes.  What the experiments check is the *behaviour* of the cost:
linear growth of the State Skip circuit with the density of ``A^k``, Mode
Select cost tracking the number of extra useful segments, and the large
saving from sharing everything but Mode Select across the cores of a SoC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.decompressor.counters import counter_width
from repro.decompressor.mode_select import ModeSelectUnit
from repro.gf2.matrix import GF2Matrix
from repro.lfsr.phase_shifter import PhaseShifter
from repro.lfsr.state_skip import StateSkipCircuit


@dataclass(frozen=True)
class GateCostModel:
    """Per-cell costs in gate equivalents (NAND2 = 1)."""

    nand2: float = 1.0
    and2: float = 1.25
    or2: float = 1.25
    xor2: float = 2.0
    mux2: float = 2.5
    dff: float = 6.0
    counter_logic_per_bit: float = 2.5

    def counter(self, width: int) -> float:
        """A loadable counter of the given width."""
        return width * (self.dff + self.counter_logic_per_bit)


@dataclass
class HardwareReport:
    """Cost breakdown of one decompressor instance (all values in GE)."""

    lfsr: float
    state_skip: float
    phase_shifter: float
    counters: float
    control: float
    mode_select: float

    @property
    def shared(self) -> float:
        """Everything that a SoC can share across cores (all but Mode Select)."""
        return (
            self.lfsr
            + self.state_skip
            + self.phase_shifter
            + self.counters
            + self.control
        )

    @property
    def total(self) -> float:
        return self.shared + self.mode_select

    def breakdown(self) -> Dict[str, float]:
        return {
            "lfsr": self.lfsr,
            "state_skip": self.state_skip,
            "phase_shifter": self.phase_shifter,
            "counters": self.counters,
            "control": self.control,
            "mode_select": self.mode_select,
            "total": self.total,
        }

    # ------------------------------------------------------------------
    # Serialisation (campaign result store)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, float]:
        """The six component costs as a JSON-safe dictionary."""
        return {
            "lfsr": self.lfsr,
            "state_skip": self.state_skip,
            "phase_shifter": self.phase_shifter,
            "counters": self.counters,
            "control": self.control,
            "mode_select": self.mode_select,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "HardwareReport":
        """Rebuild a report from :meth:`to_dict` output (``total`` ignored)."""
        return cls(
            lfsr=data["lfsr"],
            state_skip=data["state_skip"],
            phase_shifter=data["phase_shifter"],
            counters=data["counters"],
            control=data["control"],
            mode_select=data["mode_select"],
        )


def lfsr_cost(transition: GF2Matrix, model: GateCostModel) -> float:
    """Registers plus feedback XOR network of the normal LFSR.

    The feedback network needs ``w - 1`` XOR gates for every transition row of
    weight ``w`` (rows of weight 1 are plain wires).
    """
    n = transition.ncols
    xor_gates = 0
    for i in range(n):
        weight = transition.row(i).weight()
        if weight >= 2:
            xor_gates += weight - 1
    return n * model.dff + xor_gates * model.xor2


def state_skip_cost(circuit: StateSkipCircuit, model: GateCostModel) -> float:
    """XOR trees of ``A^k`` plus the per-cell Normal/Skip multiplexers."""
    return circuit.xor_gate_count() * model.xor2 + circuit.size * model.mux2


def phase_shifter_cost(phase_shifter: PhaseShifter, model: GateCostModel) -> float:
    return phase_shifter.xor_gate_count() * model.xor2


def counters_cost(
    chain_length: int,
    segment_size: int,
    segments_per_window: int,
    max_useful_segments: int,
    max_group_size: int,
    model: GateCostModel,
) -> float:
    """The six controller counters of Fig. 3."""
    widths = [
        counter_width(max(chain_length - 1, 1)),
        counter_width(max(segment_size - 1, 1)),
        counter_width(max(segments_per_window - 1, 1)),
        counter_width(max(max_useful_segments, 1)),
        counter_width(max(max_group_size - 1, 1)),
        counter_width(max(max_useful_segments, 1)),
    ]
    return sum(model.counter(width) for width in widths)


def control_cost(model: GateCostModel, num_counters: int = 6) -> float:
    """Glue logic: wrap detection, load enables, scan-enable generation."""
    return num_counters * 6 * model.nand2


def decompressor_cost(
    transition: GF2Matrix,
    speedup: int,
    phase_shifter: PhaseShifter,
    chain_length: int,
    segment_size: int,
    segments_per_window: int,
    useful_segments_per_seed: Sequence[Sequence[int]],
    model: Optional[GateCostModel] = None,
) -> HardwareReport:
    """Full cost breakdown of one decompressor instance."""
    model = model or GateCostModel()
    skip_circuit = StateSkipCircuit(transition, max(speedup, 2))
    groups: Dict[int, int] = {}
    for segments in useful_segments_per_seed:
        groups[len(segments)] = groups.get(len(segments), 0) + 1
    max_useful = max(groups, default=1)
    max_group_size = max(groups.values(), default=1)
    mode_select = ModeSelectUnit(useful_segments_per_seed, segments_per_window)
    return HardwareReport(
        lfsr=lfsr_cost(transition, model),
        state_skip=state_skip_cost(skip_circuit, model),
        phase_shifter=phase_shifter_cost(phase_shifter, model),
        counters=counters_cost(
            chain_length,
            segment_size,
            segments_per_window,
            max_useful,
            max_group_size,
            model,
        ),
        control=control_cost(model),
        mode_select=mode_select.cost(
            and2_ge=model.and2, or2_ge=model.or2
        ).gate_equivalents,
    )


@dataclass
class SoCHardwareReport:
    """Cost of a multi-core SoC decompressor (shared datapath, per-core Mode Select)."""

    shared: float
    mode_select_per_core: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.shared + sum(self.mode_select_per_core.values())

    def mode_select_range(self) -> tuple:
        values = list(self.mode_select_per_core.values())
        return (min(values), max(values)) if values else (0.0, 0.0)


def soc_decompressor_cost(
    core_reports: Dict[str, HardwareReport],
) -> SoCHardwareReport:
    """Combine per-core reports into the SoC figure of Section 4.

    Everything but the Mode Select unit is implemented once and reused for all
    cores (the shared part is sized by the most demanding core); each core
    contributes its own Mode Select unit.
    """
    if not core_reports:
        raise ValueError("at least one core report is required")
    shared = max(report.shared for report in core_reports.values())
    return SoCHardwareReport(
        shared=shared,
        mode_select_per_core={
            name: report.mode_select for name, report in core_reports.items()
        },
    )
