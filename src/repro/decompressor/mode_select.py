"""The Mode Select unit.

The Mode Select unit is the only core-specific block of the decompressor: it
is a combinational function of the (decoded) Group, Seed and Segment counter
values that raises ``Mode = 1`` (Normal) exactly when the next segment of the
current seed is useful, and ``Mode = 0`` (State Skip) otherwise.

Behaviourally the unit is a lookup ``(group, seed-within-group, segment) ->
useful?``.  For the cost model, the paper's observations are reproduced:

* the first segment of every seed is always useful and needs no decoding
  logic at all;
* only the *extra* useful segments (beyond the first one of each seed) need a
  product term over the decoded counter outputs, so the overhead tracks the
  total number of useful segments, which the greedy selection keeps small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.decompressor.counters import counter_width


@dataclass(frozen=True)
class ModeSelectCost:
    """Decoding-cost breakdown of a Mode Select unit."""

    product_terms: int
    and_gates: int
    or_gates: int
    gate_equivalents: float


class ModeSelectUnit:
    """Behavioural model plus cost estimate of the Mode Select block.

    Parameters
    ----------
    useful_segments_per_seed:
        For every seed (in *application order*, i.e. grouped by useful-segment
        count), the sorted list of its useful segment indices.
    segments_per_window:
        Total number of segments in one window (for counter decoding width).
    """

    def __init__(
        self,
        useful_segments_per_seed: Sequence[Sequence[int]],
        segments_per_window: int,
    ):
        if segments_per_window < 1:
            raise ValueError("segments_per_window must be positive")
        self._segments_per_window = segments_per_window
        self._per_seed: List[Tuple[int, ...]] = []
        for seed_index, segments in enumerate(useful_segments_per_seed):
            ordered = tuple(sorted(segments))
            for segment in ordered:
                if not 0 <= segment < segments_per_window:
                    raise ValueError(
                        f"seed {seed_index}: useful segment {segment} out of range"
                    )
            self._per_seed.append(ordered)
        # Group layout: group g contains the seeds with g useful segments.
        self._groups: Dict[int, List[int]] = {}
        for seed_index, segments in enumerate(self._per_seed):
            self._groups.setdefault(len(segments), []).append(seed_index)

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    @property
    def num_seeds(self) -> int:
        return len(self._per_seed)

    @property
    def segments_per_window(self) -> int:
        return self._segments_per_window

    def groups(self) -> Dict[int, List[int]]:
        """Seed indices per group (key = useful segments per seed)."""
        return {count: list(seeds) for count, seeds in sorted(self._groups.items())}

    def useful_segments(self, seed_index: int) -> Tuple[int, ...]:
        return self._per_seed[seed_index]

    def mode(self, seed_index: int, segment_index: int) -> int:
        """Mode signal for a segment of a seed: 1 = Normal (useful), 0 = skip."""
        if not 0 <= seed_index < len(self._per_seed):
            raise IndexError(f"seed {seed_index} out of range")
        if not 0 <= segment_index < self._segments_per_window:
            raise IndexError(f"segment {segment_index} out of range")
        return 1 if segment_index in self._per_seed[seed_index] else 0

    def segments_to_generate(self, seed_index: int) -> int:
        """Segments the controller traverses before loading the next seed."""
        segments = self._per_seed[seed_index]
        return (segments[-1] + 1) if segments else 0

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def cost(
        self,
        and2_ge: float = 1.25,
        or2_ge: float = 1.25,
        min_overhead_ge: float = 4.0,
    ) -> ModeSelectCost:
        """Decoding cost of the unit in gate equivalents.

        Every useful segment beyond the first one of its seed needs one
        product term that matches the decoded Segment counter value and the
        decoded Seed/Group counter value; the terms are OR-ed into the Mode
        signal.  A term over ``b`` decoded inputs costs ``b - 1`` 2-input AND
        gates.  The first segment of every seed is covered by a single shared
        term (Segment counter equal to zero), accounted in ``min_overhead_ge``.
        """
        segment_bits = counter_width(max(self._segments_per_window - 1, 1))
        seed_bits = counter_width(max(self.num_seeds - 1, 1))
        term_inputs = segment_bits + seed_bits
        extra_terms = sum(max(0, len(s) - 1) for s in self._per_seed)
        and_gates = extra_terms * max(term_inputs - 1, 1)
        or_gates = max(extra_terms - 1, 0) + (1 if extra_terms else 0)
        ge = min_overhead_ge + and_gates * and2_ge + or_gates * or2_ge
        return ModeSelectCost(
            product_terms=extra_terms,
            and_gates=and_gates,
            or_gates=or_gates,
            gate_equivalents=ge,
        )

    def __repr__(self) -> str:
        return (
            f"ModeSelectUnit(seeds={self.num_seeds}, "
            f"segments_per_window={self._segments_per_window})"
        )
