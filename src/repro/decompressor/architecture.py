"""Clock-level simulation of the decompression architecture (Fig. 3).

The simulation replays a :class:`~repro.skip.reduction.ReductionResult`
exactly the way the hardware would:

* seeds are applied group by group (Group counter), in ascending order of
  useful-segment count;
* for every seed, segments are generated one after another until the seed's
  last useful segment, as dictated by the Useful Segment counter;
* the Mode Select unit decides per segment whether the State Skip LFSR runs
  in Normal mode (useful segment: ``S * r`` clocks, one test vector every
  ``r`` clocks) or in State Skip mode (useless segment: ``floor(S*r/k)`` skip
  clocks plus ``S*r mod k`` normal clocks, so the register lands exactly on
  the next segment boundary);
* every clock, the phase shifter outputs are shifted into the scan chains.

The outcome reports the applied-vector count (which must equal the reduction's
TSL accounting) and the set of fully-shifted useful vectors, which must cover
every cube of the original test set -- the end-to-end correctness check of
the whole flow.

Two datapath models replay the schedule:

* the **batched** model (default) advances the LFSR and applies the phase
  shifter a whole segment at a time: the segment's register states come from
  a doubling ladder of GF(2) matmuls, all phase-shifter outputs of the
  segment are one BLAS product, and captured vectors / scan-chain contents
  are numpy gathers -- this is what makes ``simulate`` usable inside large
  campaigns;
* ``engine="reference"`` (or the deprecated ``batched=False``) selects the
  original clock-by-clock reference (:meth:`Decompressor.shift_clock` per
  cycle), kept as the golden reference -- both produce identical
  :class:`SimulationOutcome`\\ s, vector for vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.decompressor.counters import CounterBank
from repro.decompressor.mode_select import ModeSelectUnit
from repro.encoding.results import EncodingResult
from repro.gf2.bitvec import BitVector
from repro.gf2.matrix import GF2Matrix
from repro.lfsr.lfsr import LFSR, LFSRMode
from repro.lfsr.phase_shifter import PhaseShifter
from repro.lfsr.state_skip import StateSkipLFSR
from repro.lru import LRUCache
from repro.scan.architecture import ScanArchitecture
from repro.skip.reduction import ReductionResult
from repro.testdata.test_set import TestSet


@dataclass
class SimulationOutcome:
    """What the decompressor produced when replaying a reduction schedule."""

    seeds_applied: int
    vectors_applied: int
    useful_vectors: List[int]
    lfsr_clocks: int
    skip_clocks: int
    group_sizes: Dict[int, int] = field(default_factory=dict)

    def uncovered_cubes(self, test_set: TestSet) -> List[int]:
        """Cubes not covered by any fully generated useful vector."""
        return test_set.uncovered_cubes(self.useful_vectors)

    def covers(self, test_set: TestSet) -> bool:
        """True when every cube of the test set was applied to the CUT."""
        return not self.uncovered_cubes(test_set)


class Decompressor:
    """The State Skip LFSR + phase shifter + scan-chain datapath."""

    def __init__(
        self,
        transition: GF2Matrix,
        phase_shifter: PhaseShifter,
        architecture: ScanArchitecture,
        speedup: int,
    ):
        if phase_shifter.lfsr_size != transition.ncols:
            raise ValueError("phase shifter width does not match the LFSR size")
        if phase_shifter.num_outputs < architecture.num_chains:
            raise ValueError("phase shifter drives fewer outputs than scan chains")
        self._lfsr = StateSkipLFSR(LFSR(transition), speedup)
        self._phase_shifter = phase_shifter
        self._architecture = architecture
        # Scan-chain shift registers: chains[j][d] = value at depth d.
        self._chains: List[List[int]] = [
            [0] * architecture.chain_length for _ in range(architecture.num_chains)
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def lfsr(self) -> StateSkipLFSR:
        return self._lfsr

    @property
    def architecture(self) -> ScanArchitecture:
        return self._architecture

    @property
    def phase_shifter(self) -> PhaseShifter:
        return self._phase_shifter

    # ------------------------------------------------------------------
    # Datapath operation
    # ------------------------------------------------------------------
    def load_seed(self, seed: BitVector) -> None:
        self._lfsr.load(seed)

    def shift_clock(self) -> None:
        """One shift clock: phase-shifter outputs enter the chains, LFSR steps.

        The LFSR mode (Normal or State Skip) decides how far the register
        advances; the scan chains shift by one position either way.
        """
        outputs = self._phase_shifter.apply(self._lfsr.state)
        for chain_index, chain in enumerate(self._chains):
            chain.insert(0, outputs[chain_index])
            chain.pop()
        self._lfsr.step()

    def captured_vector(self) -> int:
        """The test vector currently sitting in the scan chains (packed)."""
        value = 0
        arch = self._architecture
        for cell in range(arch.num_cells):
            chain = cell % arch.num_chains
            depth = cell // arch.num_chains
            if self._chains[chain][depth]:
                value |= 1 << cell
        return value

    def set_mode(self, mode: LFSRMode) -> None:
        self._lfsr.set_mode(mode)


#: Shared doubling ladders ``[M, M^2, M^4, ...]`` keyed by mode-matrix
#: content -- effectively the substrate identity (a
#: :class:`~repro.encoding.substrate.SubstrateKey` fixes the transition
#: matrix; the skip parameter ``k`` fixes the skip-circuit matrix).  The
#: lists are mutable and shared: :meth:`_BatchedDatapath.run` extends its
#: ladder in place, so later :func:`simulate_decompression` calls over the
#: same substrate start from every power already computed instead of
#: rebuilding the ladder per call.  Bounded LRU.
_POWERS_CACHE_SIZE = 8
_POWERS_CACHE: LRUCache = LRUCache(_POWERS_CACHE_SIZE)


def _mode_ladder(matrix: GF2Matrix) -> List[np.ndarray]:
    """The shared, extend-in-place doubling ladder of one mode matrix."""
    from repro.encoding.equations import _matrix_to_numpy

    key = (
        tuple(matrix.row_mask(i) for i in range(matrix.nrows)),
        matrix.ncols,
    )
    ladder = _POWERS_CACHE.get(key)
    if ladder is None:
        ladder = [_matrix_to_numpy(matrix).astype(np.float32)]
        _POWERS_CACHE.put(key, ladder)
    return ladder


class _BatchedDatapath:
    """Segment-batched numpy model of the State Skip datapath.

    Bit-exact with per-clock operation of :class:`Decompressor`: the LFSR
    states of a run are built by a doubling ladder of GF(2) matrix products
    (``[s, Ms, M^2 s, ...]`` doubles with one matmul per step), the phase
    shifter is applied to the whole run in a single BLAS product, and the
    scan-chain shift registers / captured vectors are reconstructed from
    the output matrix by pure indexing.
    """

    def __init__(self, decompressor: Decompressor):
        from repro.encoding.equations import _matrix_to_numpy

        arch = decompressor.architecture
        transition = decompressor.lfsr.transition
        self._n = transition.ncols
        self._chain_length = arch.chain_length
        self._num_chains = arch.num_chains
        # Mode matrices (float32 0/1 for the exact BLAS-backed products)
        # and their doubling ladders M^(2^i), extended on demand.  The
        # ladders come from (and stay in) the shared substrate-keyed
        # cache, so a fresh datapath per simulate_decompression call no
        # longer recomputes powers an earlier call already built.
        self._powers = {
            "normal": _mode_ladder(transition),
            "skip": _mode_ladder(decompressor.lfsr.skip_circuit.matrix),
        }
        self._phase = _matrix_to_numpy(decompressor.phase_shifter.matrix)[
            : self._num_chains
        ].astype(np.float32)
        # Scan-chain registers: [j, d] = value at depth d of chain j.
        self._chains = np.zeros(
            (self._num_chains, self._chain_length), dtype=np.uint8
        )
        self._state = np.zeros((self._n, 1), dtype=np.float32)
        cells = np.arange(arch.num_cells)
        self._cell_chain = cells % self._num_chains
        self._cell_depth = cells // self._num_chains

    def load_seed(self, seed: BitVector) -> None:
        col = np.zeros((self._n, 1), dtype=np.float32)
        for index in seed.support():
            col[index, 0] = 1.0
        self._state = col

    @staticmethod
    def _gf2(counts: np.ndarray) -> np.ndarray:
        return (counts.astype(np.uint32) & 1).astype(np.float32)

    def run(self, clocks: int, mode: str) -> np.ndarray:
        """Advance ``clocks`` cycles in ``mode``; returns the outputs.

        The returned ``(num_chains, clocks)`` uint8 matrix holds the
        phase-shifter output of every cycle (column ``t`` is what entered
        the chains on cycle ``t``); the register state and the chain
        contents are updated exactly as ``clocks`` calls of
        :meth:`Decompressor.shift_clock` would leave them.
        """
        if clocks == 0:
            return np.zeros((self._num_chains, 0), dtype=np.uint8)
        powers = self._powers[mode]
        cols = self._state
        level = 0
        while cols.shape[1] < clocks + 1:
            while len(powers) <= level:
                doubled = powers[-1] @ powers[-1]
                powers.append(self._gf2(doubled))
            cols = np.concatenate([cols, self._gf2(powers[level] @ cols)], axis=1)
            level += 1
        outputs = self._gf2(self._phase @ cols[:, :clocks]).astype(np.uint8)
        self._state = cols[:, clocks : clocks + 1]
        r = self._chain_length
        if clocks >= r:
            self._chains = outputs[:, clocks - r : clocks][:, ::-1]
        else:
            self._chains = np.concatenate(
                [outputs[:, ::-1], self._chains[:, : r - clocks]], axis=1
            )
        return outputs

    def captured_vectors(
        self, outputs: np.ndarray, num_vectors: int
    ) -> List[int]:
        """The packed test vectors captured after each ``r``-clock load."""
        r = self._chain_length
        offsets = (
            (np.arange(1, num_vectors + 1) * r)[:, None]
            - 1
            - self._cell_depth[None, :]
        )
        bits = outputs[self._cell_chain[None, :], offsets]
        packed = np.packbits(bits, axis=1, bitorder="little")
        return [
            int.from_bytes(packed[i].tobytes(), "little")
            for i in range(num_vectors)
        ]


class DecompressionController:
    """The counter-based controller that sequences seeds and segments.

    ``batched=True`` runs the schedule on the segment-batched numpy
    datapath (:class:`_BatchedDatapath`); the default replays it clock by
    clock through the :class:`Decompressor` -- the two produce identical
    outcomes.
    """

    def __init__(self, decompressor: Decompressor, batched: bool = False):
        self._decompressor = decompressor
        self._batched = _BatchedDatapath(decompressor) if batched else None

    def run(
        self,
        encoding: EncodingResult,
        reduction: ReductionResult,
        collect_vectors: bool = True,
    ) -> SimulationOutcome:
        """Replay a reduction schedule through the datapath.

        The reduction must have been produced with the ``"exact"`` alignment
        model -- the hardware has no way of re-synchronising after the
        fractional jumps assumed by the ``"ideal"`` first-order model.
        """
        if reduction.config.alignment != "exact":
            raise ValueError(
                "the decompressor simulation requires the 'exact' alignment model"
            )
        if reduction.config.speedup != self._decompressor.lfsr.k:
            raise ValueError(
                "reduction speedup does not match the State Skip circuit"
            )
        arch = self._decompressor.architecture
        chain_length = arch.chain_length
        segment_size = reduction.config.segment_size

        mode_select = ModeSelectUnit(
            [schedule.useful_segments for schedule in reduction.schedules],
            reduction.num_segments_per_window,
        )
        groups = reduction.seed_groups()
        max_group_size = max((len(s) for s in groups.values()), default=1)
        max_useful = max((count for count in groups), default=1)
        counters = CounterBank.dimension(
            chain_length=chain_length,
            segment_size=segment_size,
            segments_per_window=reduction.num_segments_per_window,
            max_useful_segments=max_useful,
            max_group_size=max_group_size,
        )

        useful_vectors: List[int] = []
        vectors_applied = 0
        lfsr_clocks = 0
        skip_clocks = 0
        seeds_applied = 0
        schedules = {s.seed_index: s for s in reduction.schedules}

        for group_count, seed_indices in groups.items():
            counters.group.load(min(group_count, counters.group.max_value))
            counters.seed.reset()
            for seed_index in seed_indices:
                record = encoding.seeds[seed_index]
                schedule = schedules[seed_index]
                if self._batched is not None:
                    self._batched.load_seed(record.seed)
                else:
                    self._decompressor.load_seed(record.seed)
                counters.useful_segment.load(
                    min(group_count, counters.useful_segment.max_value)
                )
                counters.segment.reset()
                seeds_applied += 1
                for plan in schedule.segments:
                    useful = mode_select.mode(seed_index, plan.segment_index)
                    if useful:
                        if self._batched is not None:
                            outputs = self._batched.run(
                                plan.vectors_applied * chain_length, "normal"
                            )
                            lfsr_clocks += plan.vectors_applied * chain_length
                            vectors_applied += plan.vectors_applied
                            if collect_vectors:
                                useful_vectors.extend(
                                    self._batched.captured_vectors(
                                        outputs, plan.vectors_applied
                                    )
                                )
                        else:
                            self._decompressor.set_mode(LFSRMode.NORMAL)
                            for _ in range(plan.vectors_applied):
                                for _ in range(chain_length):
                                    self._decompressor.shift_clock()
                                    lfsr_clocks += 1
                                vectors_applied += 1
                                if collect_vectors:
                                    useful_vectors.append(
                                        self._decompressor.captured_vector()
                                    )
                    else:
                        remainder = plan.lfsr_clocks - plan.skip_clocks
                        if self._batched is not None:
                            self._batched.run(plan.skip_clocks, "skip")
                            self._batched.run(remainder, "normal")
                            lfsr_clocks += plan.lfsr_clocks
                            skip_clocks += plan.skip_clocks
                        else:
                            self._decompressor.set_mode(LFSRMode.STATE_SKIP)
                            for _ in range(plan.skip_clocks):
                                self._decompressor.shift_clock()
                                lfsr_clocks += 1
                                skip_clocks += 1
                            self._decompressor.set_mode(LFSRMode.NORMAL)
                            for _ in range(remainder):
                                self._decompressor.shift_clock()
                                lfsr_clocks += 1
                        vectors_applied += plan.vectors_applied
                counters.seed.increment()
            counters.group.increment()

        return SimulationOutcome(
            seeds_applied=seeds_applied,
            vectors_applied=vectors_applied,
            useful_vectors=useful_vectors,
            lfsr_clocks=lfsr_clocks,
            skip_clocks=skip_clocks,
            group_sizes={count: len(seeds) for count, seeds in groups.items()},
        )


def simulate_decompression(
    encoding: EncodingResult,
    reduction: ReductionResult,
    transition: GF2Matrix,
    phase_shifter: PhaseShifter,
    architecture: ScanArchitecture,
    batched: Optional[bool] = None,
    engine: Optional[str] = None,
) -> SimulationOutcome:
    """Convenience wrapper: build the datapath and replay a schedule.

    The datapath model follows the selected engine backend:
    ``engine="reference"`` replays clock by clock, every other backend uses
    the segment-batched numpy datapath; the outcomes are identical (the
    golden-equivalence tests enforce this).  ``batched=`` is the deprecated
    boolean spelling of the same choice.
    """
    from repro.circuits.backends import get_backend, resolve_engine

    resolved = resolve_engine(engine, batched=batched)
    decompressor = Decompressor(
        transition, phase_shifter, architecture, reduction.config.speedup
    )
    controller = DecompressionController(
        decompressor, batched=get_backend(resolved).batched_decompressor
    )
    return controller.run(encoding, reduction)
