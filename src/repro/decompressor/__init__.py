"""The on-chip decompression architecture (Section 3.3 of the paper).

The architecture of Fig. 3 consists of the State Skip LFSR + phase shifter,
six small counters (Bit, Vector, Segment, Useful Segment, Seed, Group), and a
combinational Mode Select unit that raises the Normal/State-Skip select line
exactly for the useful segments.

* :mod:`~repro.decompressor.counters` -- the counter primitives and their
  widths.
* :mod:`~repro.decompressor.mode_select` -- the Mode Select unit (behaviour
  and decoding-cost model).
* :mod:`~repro.decompressor.architecture` -- a clock-level simulation of the
  whole decompressor that replays a reduction schedule and checks that every
  test cube really reaches the scan chains.
* :mod:`~repro.decompressor.hardware` -- the gate-equivalent cost model used
  to reproduce the Section 4 hardware-overhead figures.
"""

from repro.decompressor.counters import Counter, CounterBank, counter_width
from repro.decompressor.mode_select import ModeSelectUnit
from repro.decompressor.architecture import (
    DecompressionController,
    Decompressor,
    SimulationOutcome,
)
from repro.decompressor.hardware import (
    GateCostModel,
    HardwareReport,
    decompressor_cost,
    soc_decompressor_cost,
)

__all__ = [
    "Counter",
    "CounterBank",
    "counter_width",
    "ModeSelectUnit",
    "DecompressionController",
    "Decompressor",
    "SimulationOutcome",
    "GateCostModel",
    "HardwareReport",
    "decompressor_cost",
    "soc_decompressor_cost",
]
