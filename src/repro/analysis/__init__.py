"""Analysis extensions beyond the paper's evaluation.

Currently: scan-shift power estimation (:mod:`repro.analysis.power`), which
quantifies a side effect of test set embedding that the paper does not
evaluate -- every applied vector (useful or skip-mode garbage) toggles the
scan chains, so shortening the test sequence with State Skip LFSRs also cuts
shift energy roughly proportionally.
"""

from repro.analysis.power import (
    PowerStats,
    sequence_power,
    weighted_transition_metric,
)

__all__ = ["PowerStats", "sequence_power", "weighted_transition_metric"]
