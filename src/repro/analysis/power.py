"""Scan-shift power estimation.

Scan testing dissipates most of its energy while shifting, and the accepted
first-order estimate is the *weighted transition metric* (WTM): a transition
between adjacent bits of the vector being shifted into a chain toggles every
cell it passes through, so a transition entering early (far from the scan-in
pin) is weighted by the number of positions it travels.

For a chain of length ``r`` loaded with bits ``b_0 .. b_{r-1}`` (depth 0 =
scan-in end, i.e. the last bit shifted in), the metric is::

    WTM = sum_{d=0}^{r-2} (r - 1 - d) * (b_d XOR b_{d+1})

The module evaluates the metric per vector and per test sequence, which lets
the examples and benchmarks quantify how much shift energy the State Skip
reduction saves on top of the test-time saving (roughly proportional to the
number of applied vectors, since skip-mode garbage vectors toggle the chains
just like useful ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.scan.architecture import ScanArchitecture


@dataclass(frozen=True)
class PowerStats:
    """Aggregate scan-shift power figures for a test sequence."""

    num_vectors: int
    total_wtm: int
    peak_wtm: int

    @property
    def average_wtm(self) -> float:
        """Average weighted transitions per applied vector."""
        if self.num_vectors == 0:
            return 0.0
        return self.total_wtm / self.num_vectors


def weighted_transition_metric(vector_bits: int, architecture: ScanArchitecture) -> int:
    """WTM of one fully specified test vector (packed integer over the cells)."""
    total = 0
    r = architecture.chain_length
    m = architecture.num_chains
    for chain in range(m):
        previous = None
        for depth in range(r):
            cell = depth * m + chain
            if cell >= architecture.num_cells:
                break
            bit = (vector_bits >> cell) & 1
            if previous is not None and bit != previous:
                # The transition between depths (depth-1, depth) travels
                # r-depth positions while being shifted in.
                total += r - depth
            previous = bit
    return total


def sequence_power(
    vectors: Iterable[int], architecture: ScanArchitecture
) -> PowerStats:
    """Aggregate WTM statistics of a sequence of applied vectors."""
    total = 0
    peak = 0
    count = 0
    for vector in vectors:
        wtm = weighted_transition_metric(vector, architecture)
        total += wtm
        peak = max(peak, wtm)
        count += 1
    return PowerStats(num_vectors=count, total_wtm=total, peak_wtm=peak)


def power_saving_percent(baseline: PowerStats, reduced: PowerStats) -> float:
    """Relative total-energy saving of a reduced sequence vs a baseline."""
    if baseline.total_wtm == 0:
        raise ValueError("baseline sequence has zero switching activity")
    return (1.0 - reduced.total_wtm / baseline.total_wtm) * 100.0
