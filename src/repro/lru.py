"""A minimal bounded mapping with least-recently-used eviction.

Shared by the :class:`~repro.context.CompressionContext` caches (substrates,
encodings, expanded windows) and the per-cube caches of
:class:`~repro.encoding.equations.EquationSystem`.  Kept deliberately tiny:
``get`` refreshes recency, ``put`` evicts the oldest entries beyond the
bound, and the bound itself is adjustable at runtime (the equation system
raises it to fit a whole test set; see
:meth:`~repro.encoding.equations.EquationSystem.reserve_cube_capacity`).

This module is a leaf -- it imports nothing from the package -- so both the
low-level encoding layer and the high-level context layer can use it
without import cycles.

Every module-level cache of the package must be an instance of this class
(or a ``weakref`` dictionary): the ``bounded-cache`` rule of
:mod:`repro.staticcheck` enforces the discipline statically, which is why
the class also keeps lifetime hit/miss/eviction counters -- callers that
used to maintain their own stats dict next to a hand-rolled ``OrderedDict``
LRU read them from here instead.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict


class LRUCache:
    """Bounded mapping; least-recently-used entries are evicted first.

    ``None`` is not a storable value: ``get`` returns ``None`` for a miss.
    """

    def __init__(self, bound: int):
        self._bound = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bound = bound  # validated by the setter
        self._data: OrderedDict = OrderedDict()

    @property
    def bound(self) -> int:
        return self._bound

    @bound.setter
    def bound(self, value: int) -> None:
        if value < 1:
            raise ValueError("cache bounds must be at least 1")
        self._bound = value
        if hasattr(self, "_data"):
            self._evict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get(self, key):
        """The cached value of ``key`` (refreshes recency) or ``None``."""
        value = self._data.get(key)
        if value is not None:
            self.hits += 1
            self._data.move_to_end(key)
        else:
            self.misses += 1
        return value

    def put(self, key, value) -> None:
        """Insert (or refresh) ``key``, evicting the oldest beyond bound."""
        self._data[key] = value
        self._data.move_to_end(key)
        self._evict()

    def stats(self) -> Dict[str, int]:
        """Lifetime counters plus the current size and capacity."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
            "capacity": self._bound,
        }

    def reset_stats(self) -> None:
        """Zero the lifetime counters (contents are kept)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _evict(self) -> None:
        while len(self._data) > self._bound:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()
