"""The complete State-Skip-LFSR compression flow in one call.

:func:`compress` takes a test set (from a core vendor, from the ATPG
substrate, or from the calibrated synthetic generators) and a
:class:`~repro.config.CompressionConfig` and runs:

1. window-based LFSR-reseeding seed computation (Section 2),
2. the State Skip test-sequence reduction (Section 3.2),
3. the gate-equivalent hardware model of the decompressor (Section 3.3 / 4),
4. optionally, a clock-level decompressor simulation that replays the
   schedule and checks that every test cube really reaches the scan chains.

The returned :class:`CompressionReport` carries every figure of merit the
paper reports (TDV, original window TSL, reduced TSL, improvement %, GE
breakdown) plus the underlying result objects for deeper inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.config import CompressionConfig
from repro.decompressor.architecture import SimulationOutcome, simulate_decompression
from repro.decompressor.hardware import (
    GateCostModel,
    HardwareReport,
    decompressor_cost,
)
from repro.encoding.encoder import ReseedingEncoder
from repro.encoding.results import EncodingResult
from repro.encoding.window import EncodingError, verify_encoding
from repro.skip.reduction import ReductionConfig, ReductionResult, SequenceReducer
from repro.testdata.literature import tsl_improvement
from repro.testdata.profiles import CircuitProfile
from repro.testdata.synthetic import generate_test_set
from repro.testdata.test_set import TestSet


@dataclass
class CompressionReport:
    """Everything produced by one run of the flow."""

    circuit: str
    config: CompressionConfig
    encoding: EncodingResult
    reduction: ReductionResult
    hardware: HardwareReport
    encoding_verified: bool
    simulation: Optional[SimulationOutcome] = None

    # ------------------------------------------------------------------
    # Figures of merit
    # ------------------------------------------------------------------
    @property
    def test_data_volume(self) -> int:
        """Bits stored on the ATE."""
        return self.encoding.test_data_volume

    @property
    def window_tsl(self) -> int:
        """Vectors applied by the original window-based scheme."""
        return self.encoding.test_sequence_length

    @property
    def state_skip_tsl(self) -> int:
        """Vectors applied with State Skip reduction (the paper's "Prop.")."""
        return self.reduction.test_sequence_length

    @property
    def improvement_percent(self) -> float:
        """TSL improvement of the proposed method over the window baseline."""
        return tsl_improvement(self.state_skip_tsl, self.window_tsl)

    @property
    def num_seeds(self) -> int:
        return self.encoding.num_seeds

    @property
    def hardware_total_ge(self) -> float:
        return self.hardware.total

    def summary(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit,
            "lfsr_size": self.encoding.lfsr_size,
            "window_length": self.config.window_length,
            "segment_size": self.config.segment_size,
            "speedup": self.config.speedup,
            "num_cubes": self.encoding.num_cubes,
            "num_seeds": self.num_seeds,
            "tdv_bits": self.test_data_volume,
            "window_tsl": self.window_tsl,
            "state_skip_tsl": self.state_skip_tsl,
            "improvement_pct": round(self.improvement_percent, 1),
            "hardware_ge": round(self.hardware_total_ge, 1),
            "encoding_verified": self.encoding_verified,
            "simulated": self.simulation is not None,
        }

    # ------------------------------------------------------------------
    # Serialisation (campaign result store)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe serialisation of the whole report.

        Nests the :meth:`to_dict` forms of the config, encoding, reduction
        and hardware results plus the flat :meth:`summary` row, so stored
        campaign records can be reloaded either as typed objects
        (:meth:`from_dict`) or consumed as plain rows by the reporting
        helpers.  The clock-level simulation trace, when present, is reduced
        to its scalar outcome (vector counts and clock totals).
        """
        simulation = None
        if self.simulation is not None:
            simulation = {
                "seeds_applied": self.simulation.seeds_applied,
                "vectors_applied": self.simulation.vectors_applied,
                "lfsr_clocks": self.simulation.lfsr_clocks,
                "skip_clocks": self.simulation.skip_clocks,
                "group_sizes": {
                    str(count): size
                    for count, size in self.simulation.group_sizes.items()
                },
            }
        return {
            "circuit": self.circuit,
            "config": self.config.to_dict(),
            "encoding": self.encoding.to_dict(),
            "reduction": self.reduction.to_dict(),
            "hardware": self.hardware.to_dict(),
            "encoding_verified": self.encoding_verified,
            "simulation": simulation,
            "summary": self.summary(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CompressionReport":
        """Rebuild a report from :meth:`to_dict` output.

        The returned report answers every figure-of-merit query (TDV, TSL,
        improvement, GE breakdown) identically to the original; the
        simulation trace is restored as a vector-less
        :class:`SimulationOutcome` when one was stored.
        """
        simulation = None
        if data.get("simulation") is not None:
            stored = data["simulation"]
            simulation = SimulationOutcome(
                seeds_applied=stored["seeds_applied"],
                vectors_applied=stored["vectors_applied"],
                useful_vectors=[],
                lfsr_clocks=stored["lfsr_clocks"],
                skip_clocks=stored["skip_clocks"],
                group_sizes={
                    int(count): size
                    for count, size in stored["group_sizes"].items()
                },
            )
        return cls(
            circuit=data["circuit"],
            config=CompressionConfig.from_dict(data["config"]),
            encoding=EncodingResult.from_dict(data["encoding"]),
            reduction=ReductionResult.from_dict(data["reduction"]),
            hardware=HardwareReport.from_dict(data["hardware"]),
            encoding_verified=bool(data["encoding_verified"]),
            simulation=simulation,
        )


def compress(
    test_set: TestSet,
    config: Optional[CompressionConfig] = None,
    verify: bool = True,
    simulate: bool = False,
    cost_model: Optional[GateCostModel] = None,
) -> CompressionReport:
    """Run the full flow on a test set.

    Parameters
    ----------
    test_set:
        The pre-computed test cubes of the IP core.
    config:
        Flow parameters; defaults to :class:`CompressionConfig` defaults
        (L=200, S=10, k=10 -- the paper's SoC setting).
    verify:
        Re-expand every seed and check each encoded cube against its window
        position (cheap, algebraic).
    simulate:
        Additionally replay the schedule through the clock-level decompressor
        simulation and check cube delivery end to end (slower; great for
        examples and acceptance tests).
    cost_model:
        Standard-cell GE weights for the hardware report.
    """
    config = config or CompressionConfig()
    encoder, encoding = _encode_with_retries(test_set, config)
    if verify:
        violations = verify_encoding(encoding, test_set, encoder.equations)
        if violations:
            raise RuntimeError(
                f"encoding verification failed for {len(violations)} embeddings; "
                f"first: {violations[0]}"
            )
    reducer = SequenceReducer(
        encoder.equations,
        ReductionConfig(
            segment_size=config.segment_size,
            speedup=config.speedup,
            alignment=config.alignment,
            force_first_segment_useful=config.force_first_segment_useful,
        ),
    )
    reduction = reducer.reduce(encoding, test_set)
    hardware = decompressor_cost(
        transition=encoder.lfsr.transition,
        speedup=config.speedup,
        phase_shifter=encoder.phase_shifter,
        chain_length=encoder.architecture.chain_length,
        segment_size=config.segment_size,
        segments_per_window=reduction.num_segments_per_window,
        useful_segments_per_seed=[s.useful_segments for s in reduction.schedules],
        model=cost_model,
    )
    simulation = None
    if simulate:
        simulation = simulate_decompression(
            encoding,
            reduction,
            encoder.lfsr.transition,
            encoder.phase_shifter,
            encoder.architecture,
        )
        uncovered = simulation.uncovered_cubes(test_set)
        if uncovered:
            raise RuntimeError(
                f"decompressor simulation left {len(uncovered)} cubes unapplied"
            )
    return CompressionReport(
        circuit=test_set.name,
        config=config,
        encoding=encoding,
        reduction=reduction,
        hardware=hardware,
        encoding_verified=verify,
        simulation=simulation,
    )


def compress_profile(
    profile: CircuitProfile,
    config: Optional[CompressionConfig] = None,
    scale: Optional[float] = None,
    seed: int = 1,
    **kwargs,
) -> CompressionReport:
    """Generate the calibrated test set of a profile and compress it."""
    test_set = generate_test_set(profile, seed=seed, scale=scale)
    config = config or CompressionConfig()
    if config.lfsr_size is None:
        config = config.with_updates(lfsr_size=profile.lfsr_size)
    return compress(test_set, config, **kwargs)


def _encode_with_retries(
    test_set: TestSet, config: CompressionConfig
) -> "tuple[ReseedingEncoder, EncodingResult]":
    """Build the encoder, retrying with fresh phase shifters on hard conflicts."""
    lfsr_size = config.lfsr_size
    if lfsr_size is None:
        lfsr_size = test_set.max_specified() + 8
    last_error: Optional[EncodingError] = None
    attempts = config.max_phase_retries + 1
    for attempt in range(attempts):
        encoder = ReseedingEncoder(
            num_cells=test_set.num_cells,
            num_scan_chains=config.num_scan_chains,
            lfsr_size=lfsr_size,
            window_length=config.window_length,
            phase_taps=config.phase_taps,
            phase_seed=config.phase_seed + attempt,
            fill_seed=config.fill_seed,
        )
        try:
            return encoder, encoder.encode(test_set)
        except EncodingError as error:
            last_error = error
    if last_error is None:
        raise ValueError(
            f"no encoding attempt was made for {test_set.name!r}: "
            f"max_phase_retries={config.max_phase_retries} allows "
            f"{attempts} attempts"
        )
    raise EncodingError(
        f"all {attempts} phase-shifter attempts failed for "
        f"{test_set.name!r} (lfsr_size={lfsr_size}, "
        f"window_length={config.window_length}): {last_error}"
    ) from last_error
