"""The State-Skip-LFSR compression flow: staged API plus the one-call façade.

The flow is decomposed into four first-class **stages**, each threaded
through a :class:`~repro.context.CompressionContext` that caches the
expensive invariants (the algebraic substrate, the encode-stage results and
the expanded seed windows):

1. :func:`encode` -- window-based LFSR-reseeding seed computation
   (Section 2), plus the algebraic verification of every embedding;
2. :func:`reduce` -- the State Skip test-sequence reduction (Section 3.2);
3. :func:`hardware` -- the gate-equivalent hardware model of the
   decompressor (Section 3.3 / 4);
4. :func:`simulate` -- the clock-level decompressor simulation that replays
   the schedule and checks that every test cube really reaches the scan
   chains.

:func:`compress` remains the one-call façade over the stages and produces
bit-identical :class:`CompressionReport`\\ s whether the context cache is
warm, cold or disabled.  Calling the stages directly unlocks the
encode-once / sweep-many workloads the monolith could not express::

    ctx = CompressionContext()
    encoded = encode(test_set, config, context=ctx)
    for S, k in grid:
        reduction = reduce(
            encoded, config.with_updates(segment_size=S, speedup=k)
        )
        ge = hardware(encoded, reduction)

The returned :class:`CompressionReport` carries every figure of merit the
paper reports (TDV, original window TSL, reduced TSL, improvement %, GE
breakdown) plus the underlying result objects for deeper inspection.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import CompressionConfig
from repro.context import CompressionContext, EncoderSubstrate, SubstrateKey
from repro.decompressor.architecture import SimulationOutcome, simulate_decompression
from repro.decompressor.hardware import (
    GateCostModel,
    HardwareReport,
    decompressor_cost,
)
from repro.encoding.encoder import ReseedingEncoder
from repro.encoding.results import EncodingResult
from repro.encoding.window import EncodingError, verify_encoding
from repro.gf2.solve import solver_stats_snapshot
from repro.skip.reduction import ReductionConfig, ReductionResult, SequenceReducer
from repro.telemetry import get_recorder
from repro.testdata.literature import tsl_improvement
from repro.testdata.profiles import CircuitProfile
from repro.testdata.synthetic import generate_test_set
from repro.testdata.test_set import TestSet


@dataclass
class CompressionReport:
    """Everything produced by one run of the flow."""

    circuit: str
    config: CompressionConfig
    encoding: EncodingResult
    reduction: ReductionResult
    hardware: HardwareReport
    encoding_verified: bool
    simulation: Optional[SimulationOutcome] = None

    # ------------------------------------------------------------------
    # Figures of merit
    # ------------------------------------------------------------------
    @property
    def test_data_volume(self) -> int:
        """Bits stored on the ATE."""
        return self.encoding.test_data_volume

    @property
    def window_tsl(self) -> int:
        """Vectors applied by the original window-based scheme."""
        return self.encoding.test_sequence_length

    @property
    def state_skip_tsl(self) -> int:
        """Vectors applied with State Skip reduction (the paper's "Prop.")."""
        return self.reduction.test_sequence_length

    @property
    def improvement_percent(self) -> float:
        """TSL improvement of the proposed method over the window baseline."""
        return tsl_improvement(self.state_skip_tsl, self.window_tsl)

    @property
    def num_seeds(self) -> int:
        return self.encoding.num_seeds

    @property
    def hardware_total_ge(self) -> float:
        return self.hardware.total

    def summary(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit,
            "lfsr_size": self.encoding.lfsr_size,
            "window_length": self.config.window_length,
            "segment_size": self.config.segment_size,
            "speedup": self.config.speedup,
            "num_cubes": self.encoding.num_cubes,
            "num_seeds": self.num_seeds,
            "tdv_bits": self.test_data_volume,
            "window_tsl": self.window_tsl,
            "state_skip_tsl": self.state_skip_tsl,
            "improvement_pct": round(self.improvement_percent, 1),
            "hardware_ge": round(self.hardware_total_ge, 1),
            "encoding_verified": self.encoding_verified,
            "simulated": self.simulation is not None,
        }

    # ------------------------------------------------------------------
    # Serialisation (campaign result store)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe serialisation of the whole report.

        Nests the :meth:`to_dict` forms of the config, encoding, reduction
        and hardware results plus the flat :meth:`summary` row, so stored
        campaign records can be reloaded either as typed objects
        (:meth:`from_dict`) or consumed as plain rows by the reporting
        helpers.  The clock-level simulation trace, when present, is reduced
        to its scalar outcome (vector counts and clock totals).
        """
        simulation = None
        if self.simulation is not None:
            simulation = {
                "seeds_applied": self.simulation.seeds_applied,
                "vectors_applied": self.simulation.vectors_applied,
                "lfsr_clocks": self.simulation.lfsr_clocks,
                "skip_clocks": self.simulation.skip_clocks,
                "group_sizes": {
                    str(count): size
                    for count, size in self.simulation.group_sizes.items()
                },
            }
        return {
            "circuit": self.circuit,
            "config": self.config.to_dict(),
            "encoding": self.encoding.to_dict(),
            "reduction": self.reduction.to_dict(),
            "hardware": self.hardware.to_dict(),
            "encoding_verified": self.encoding_verified,
            "simulation": simulation,
            "summary": self.summary(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CompressionReport":
        """Rebuild a report from :meth:`to_dict` output.

        The returned report answers every figure-of-merit query (TDV, TSL,
        improvement, GE breakdown) identically to the original; the
        simulation trace is restored as a vector-less
        :class:`SimulationOutcome` when one was stored.
        """
        simulation = None
        if data.get("simulation") is not None:
            stored = data["simulation"]
            simulation = SimulationOutcome(
                seeds_applied=stored["seeds_applied"],
                vectors_applied=stored["vectors_applied"],
                useful_vectors=[],
                lfsr_clocks=stored["lfsr_clocks"],
                skip_clocks=stored["skip_clocks"],
                group_sizes={
                    int(count): size
                    for count, size in stored["group_sizes"].items()
                },
            )
        return cls(
            circuit=data["circuit"],
            config=CompressionConfig.from_dict(data["config"]),
            encoding=EncodingResult.from_dict(data["encoding"]),
            reduction=ReductionResult.from_dict(data["reduction"]),
            hardware=HardwareReport.from_dict(data["hardware"]),
            encoding_verified=bool(data["encoding_verified"]),
            simulation=simulation,
        )


# ----------------------------------------------------------------------
# Staged pipeline
# ----------------------------------------------------------------------
@dataclass
class StagedEncoding:
    """Output of the :func:`encode` stage.

    Bundles the test set, the config, the (possibly context-cached)
    :class:`~repro.context.EncoderSubstrate` that produced the encoding and
    the :class:`~repro.encoding.results.EncodingResult` itself.  Later
    stages take this object, so an (S, k) sweep calls :func:`encode` once
    and :func:`reduce` / :func:`hardware` many times.

    ``context`` is the context the stage ran with; it is the default
    context of the downstream stages, which is how the cached seed-window
    expansion travels from verification to the reducer without the caller
    re-threading it.
    """

    test_set: TestSet
    config: CompressionConfig
    substrate: EncoderSubstrate
    encoding: EncodingResult
    verified: bool
    context: CompressionContext

    @property
    def windows(self) -> List[List[int]]:
        """The expanded seed windows (context-cached, shared, immutable)."""
        return self.context.expanded_windows(
            self.substrate, [record.seed for record in self.encoding.seeds]
        )


def encode(
    test_set: TestSet,
    config: Optional[CompressionConfig] = None,
    context: Optional[CompressionContext] = None,
    verify: bool = True,
) -> StagedEncoding:
    """Stage 1: window-based seed computation (plus algebraic verification).

    The result is cached in ``context`` under (test-set fingerprint,
    encode-relevant config key) -- the State Skip knobs ``(S, k,
    alignment, force_first_segment_useful)`` are excluded from the key, so
    every grid neighbour that shares the encode parameters reuses the
    substrate *and* the computed seeds.  Verification runs at most once per
    cached encoding and uses the context-cached window expansion.
    """
    config = config or CompressionConfig()
    context = context or CompressionContext()
    recorder = get_recorder()
    start = time.perf_counter()
    solver_before = solver_stats_snapshot()
    with recorder.span("stage.encode", circuit=test_set.name) as span:
        lfsr_size = config.lfsr_size
        if lfsr_size is None:
            lfsr_size = test_set.max_specified() + 8
        resolved = (
            config
            if config.lfsr_size == lfsr_size
            else config.with_updates(lfsr_size=lfsr_size)
        )
        fingerprint = test_set.fingerprint()
        encode_key = resolved.encode_cache_key()
        entry = context.get_encoding(fingerprint, encode_key)
        cached = entry is not None
        if entry is None:
            substrate, encoding = _encode_with_retries(test_set, resolved, context)
            entry = context.put_encoding(
                fingerprint, encode_key, substrate, encoding, verified=False
            )
        if verify and not entry.verified:
            windows = context.expanded_windows(
                entry.substrate, [record.seed for record in entry.encoding.seeds]
            )
            violations = verify_encoding(
                entry.encoding, test_set, entry.substrate.equations, windows=windows
            )
            if violations:
                raise RuntimeError(
                    f"encoding verification failed for {len(violations)} "
                    f"embeddings; first: {violations[0]}"
                )
            entry.verified = True
        if recorder.enabled:
            span.set("cached", cached)
            span.set("num_seeds", entry.encoding.num_seeds)
    # Attribute the GF(2) solver work done inside this call (the solvers
    # themselves live per seed, out of reach of the context).
    for name, after_value in solver_stats_snapshot().items():
        work = after_value - solver_before[name]
        if work:
            context.stats.count(name, work)
    context.stats.add_timing("encode", time.perf_counter() - start)
    return StagedEncoding(
        test_set=test_set,
        config=config,
        substrate=entry.substrate,
        encoding=entry.encoding,
        verified=entry.verified,
        context=context,
    )


def reduce(
    encoded: StagedEncoding,
    config: Optional[CompressionConfig] = None,
    context: Optional[CompressionContext] = None,
) -> ReductionResult:
    """Stage 2: State Skip sequence reduction of one encoding.

    ``config`` supplies the reduction knobs ``(segment_size, speedup,
    alignment, force_first_segment_useful)`` and defaults to the config the
    encoding was produced with -- pass ``encoded.config.with_updates(...)``
    to sweep (S, k) points over one encoding.  The embedding map is built
    on the context-cached uint64-blocked window expansion, so repeated
    reductions never re-expand a seed (and share the expansion with
    verification, which consumes the derived integer form).
    """
    config = config or encoded.config
    context = context or encoded.context
    start = time.perf_counter()
    with get_recorder().span(
        "stage.reduce",
        circuit=encoded.test_set.name,
        segment_size=config.segment_size,
        speedup=config.speedup,
    ):
        reducer = SequenceReducer(
            encoded.substrate.equations,
            ReductionConfig(
                segment_size=config.segment_size,
                speedup=config.speedup,
                alignment=config.alignment,
                force_first_segment_useful=config.force_first_segment_useful,
            ),
        )
        windows_packed = context.packed_windows(
            encoded.substrate, [record.seed for record in encoded.encoding.seeds]
        )
        result = reducer.reduce(
            encoded.encoding, encoded.test_set, windows_packed=windows_packed
        )
    context.stats.add_timing("reduce", time.perf_counter() - start)
    return result


def hardware(
    encoded: StagedEncoding,
    reduction: ReductionResult,
    cost_model: Optional[GateCostModel] = None,
    context: Optional[CompressionContext] = None,
) -> HardwareReport:
    """Stage 3: gate-equivalent cost of the decompressor for one reduction."""
    context = context or encoded.context
    start = time.perf_counter()
    with get_recorder().span("stage.hardware", circuit=encoded.test_set.name):
        report = decompressor_cost(
            transition=encoded.substrate.lfsr.transition,
            speedup=reduction.config.speedup,
            phase_shifter=encoded.substrate.phase_shifter,
            chain_length=encoded.substrate.architecture.chain_length,
            segment_size=reduction.config.segment_size,
            segments_per_window=reduction.num_segments_per_window,
            useful_segments_per_seed=[s.useful_segments for s in reduction.schedules],
            model=cost_model,
        )
    context.stats.add_timing("hardware", time.perf_counter() - start)
    return report


def simulate(
    encoded: StagedEncoding,
    reduction: ReductionResult,
    context: Optional[CompressionContext] = None,
) -> SimulationOutcome:
    """Stage 4: clock-level decompressor replay (end-to-end delivery check).

    The simulation is deliberately *not* served from the window cache: it
    re-generates every vector through the State Skip datapath clock by
    clock, which is what makes it an independent check of the whole flow.
    Raises when any cube of the test set is left unapplied.
    """
    context = context or encoded.context
    start = time.perf_counter()
    with get_recorder().span("stage.simulate", circuit=encoded.test_set.name):
        outcome = simulate_decompression(
            encoded.encoding,
            reduction,
            encoded.substrate.lfsr.transition,
            encoded.substrate.phase_shifter,
            encoded.substrate.architecture,
            engine=encoded.config.engine,
        )
        uncovered = outcome.uncovered_cubes(encoded.test_set)
        if uncovered:
            raise RuntimeError(
                f"decompressor simulation left {len(uncovered)} cubes unapplied"
            )
    context.stats.add_timing("simulate", time.perf_counter() - start)
    return outcome


#: Stage-function aliases for call sites where the public names are shadowed
#: (``compress`` takes ``simulate``/``verify`` flags of the same name).
_encode_stage = encode
_reduce_stage = reduce
_hardware_stage = hardware
_simulate_stage = simulate


# ----------------------------------------------------------------------
# One-call façade
# ----------------------------------------------------------------------
def compress(
    test_set: TestSet,
    config: Optional[CompressionConfig] = None,
    verify: bool = True,
    simulate: bool = False,
    cost_model: Optional[GateCostModel] = None,
    context: Optional[CompressionContext] = None,
) -> CompressionReport:
    """Run the full flow on a test set (thin façade over the staged API).

    Parameters
    ----------
    test_set:
        The pre-computed test cubes of the IP core.
    config:
        Flow parameters; defaults to :class:`CompressionConfig` defaults
        (L=200, S=10, k=10 -- the paper's SoC setting).
    verify:
        Re-expand every seed and check each encoded cube against its window
        position (cheap, algebraic).
    simulate:
        Additionally replay the schedule through the clock-level decompressor
        simulation and check cube delivery end to end (slower; great for
        examples and acceptance tests).
    cost_model:
        Standard-cell GE weights for the hardware report.
    context:
        A shared :class:`~repro.context.CompressionContext`.  Reports are
        bit-identical with or without one; a warm context skips the
        substrate construction, the seed computation and the seed-window
        expansion for every (test set, encode-config) point it has seen.
        When omitted, an ephemeral context still shares the window
        expansion between verification and reduction within this call.
    """
    config = config or CompressionConfig()
    context = context or CompressionContext()
    encoded = _encode_stage(test_set, config, context=context, verify=verify)
    reduction = _reduce_stage(encoded, config, context=context)
    hardware = _hardware_stage(
        encoded, reduction, cost_model=cost_model, context=context
    )
    simulation = None
    if simulate:
        simulation = _simulate_stage(encoded, reduction, context=context)
    return CompressionReport(
        circuit=test_set.name,
        config=config,
        encoding=encoded.encoding,
        reduction=reduction,
        hardware=hardware,
        encoding_verified=verify,
        simulation=simulation,
    )


def compress_profile(
    profile: CircuitProfile,
    config: Optional[CompressionConfig] = None,
    scale: Optional[float] = None,
    seed: int = 1,
    **kwargs,
) -> CompressionReport:
    """Generate the calibrated test set of a profile and compress it."""
    test_set = generate_test_set(profile, seed=seed, scale=scale)
    config = config or CompressionConfig()
    if config.lfsr_size is None:
        config = config.with_updates(lfsr_size=profile.lfsr_size)
    return compress(test_set, config, **kwargs)


def _encode_with_retries(
    test_set: TestSet, config: CompressionConfig, context: CompressionContext
) -> "tuple[EncoderSubstrate, EncodingResult]":
    """Build the encoder, retrying with fresh phase shifters on hard conflicts.

    ``config.lfsr_size`` must already be resolved (non-``None``).  Every
    attempt's substrate comes from the context cache, so retries with a
    previously seen phase seed are free.
    """
    lfsr_size = config.lfsr_size
    last_error: Optional[EncodingError] = None
    attempts = config.max_phase_retries + 1
    for attempt in range(attempts):
        substrate = context.substrate(
            SubstrateKey(
                num_cells=test_set.num_cells,
                num_scan_chains=config.num_scan_chains,
                lfsr_size=lfsr_size,
                window_length=config.window_length,
                phase_taps=config.phase_taps,
                phase_seed=config.phase_seed + attempt,
            )
        )
        encoder = ReseedingEncoder(
            num_cells=test_set.num_cells,
            num_scan_chains=config.num_scan_chains,
            lfsr_size=lfsr_size,
            window_length=config.window_length,
            phase_taps=config.phase_taps,
            phase_seed=config.phase_seed + attempt,
            fill_seed=config.fill_seed,
            substrate=substrate,
        )
        try:
            return substrate, encoder.encode(test_set)
        except EncodingError as error:
            last_error = error
    if last_error is None:
        raise ValueError(
            f"no encoding attempt was made for {test_set.name!r}: "
            f"max_phase_retries={config.max_phase_retries} allows "
            f"{attempts} attempts"
        )
    raise EncodingError(
        f"all {attempts} phase-shifter attempts failed for "
        f"{test_set.name!r} (lfsr_size={lfsr_size}, "
        f"window_length={config.window_length}): {last_error}"
    ) from last_error
