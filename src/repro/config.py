"""Configuration of the full compression pipeline."""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Dict, Optional


@dataclass(frozen=True)
class CompressionConfig:
    """All knobs of the State-Skip-LFSR test-set-embedding flow.

    Attributes
    ----------
    window_length:
        Window size ``L``: the number of pseudo-random vectors each seed is
        expanded into (Table 1 sweeps 50..500; 1 reproduces classical
        reseeding).
    segment_size:
        Segment size ``S`` of the sequence-reduction method (Section 3.2).
    speedup:
        State Skip speedup factor ``k`` (Section 3.1; the paper uses k <= 24
        and 32 in the hardware study).
    num_scan_chains:
        Scan chains of the core under test (32 in all paper experiments).
    lfsr_size:
        LFSR size ``n``.  ``None`` sizes it automatically as ``s_max + 8``.
    phase_taps:
        XOR taps per phase-shifter output.
    phase_seed / fill_seed:
        RNG seeds of the phase-shifter construction and the pseudo-random
        fill of free seed variables (fixed for reproducibility).
    alignment:
        ``"exact"`` or ``"ideal"`` useless-segment clock accounting (see
        :class:`repro.skip.reduction.ReductionConfig`).
    force_first_segment_useful:
        Keep the first segment of every seed useful (the paper's architecture
        assumption).
    max_phase_retries:
        How many alternative phase shifters to try when a cube hits a
        structural linear dependency.
    engine:
        Simulation engine backend (``"reference"``, ``"packed"``,
        ``"events"``, ``"compiled"``) used wherever the pipeline simulates
        circuits or replays the decompressor.  ``None`` (the default)
        follows the process default (``REPRO_ENGINE`` or ``events``) and is
        omitted from serialisation and cache keys -- backends are
        bit-identical by contract, so an unpinned engine never changes a
        result.
    """

    window_length: int = 200
    segment_size: int = 10
    speedup: int = 10
    num_scan_chains: int = 32
    lfsr_size: Optional[int] = None
    phase_taps: int = 3
    phase_seed: int = 2008
    fill_seed: int = 2008
    alignment: str = "exact"
    force_first_segment_useful: bool = True
    max_phase_retries: int = 4
    engine: Optional[str] = None

    def __post_init__(self):
        if self.window_length < 1:
            raise ValueError("window_length must be positive")
        if not 1 <= self.segment_size <= self.window_length:
            raise ValueError("segment_size must be in [1, window_length]")
        if self.speedup < 1:
            raise ValueError("speedup must be at least 1")
        if self.num_scan_chains < 1:
            raise ValueError("num_scan_chains must be positive")
        if self.lfsr_size is not None and self.lfsr_size < 2:
            raise ValueError("lfsr_size must be at least 2")
        if self.phase_taps < 1:
            raise ValueError("phase_taps must be at least 1")
        if self.alignment not in ("exact", "ideal"):
            raise ValueError("alignment must be 'exact' or 'ideal'")
        if self.max_phase_retries < 0:
            raise ValueError("max_phase_retries must be non-negative")
        if self.engine is not None:
            # Deferred import: the registry lives under repro.circuits and
            # config must stay importable on its own.
            from repro.circuits.backends import get_backend

            get_backend(self.engine)  # raises listing the registered names

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def paper_soc(cls) -> "CompressionConfig":
        """The multi-core SoC setting of Section 4: L=200, S=10, k=10."""
        return cls(window_length=200, segment_size=10, speedup=10)

    @classmethod
    def fast(cls) -> "CompressionConfig":
        """A small-window setting for quick experiments and unit tests."""
        return cls(window_length=30, segment_size=5, speedup=6)

    def with_window(self, window_length: int) -> "CompressionConfig":
        """Copy with a different window length (segment size clipped)."""
        return replace(
            self,
            window_length=window_length,
            segment_size=min(self.segment_size, window_length),
        )

    def with_updates(self, **changes) -> "CompressionConfig":
        """Copy with arbitrary field changes (validated by the constructor)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Serialisation / content addressing
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """All knobs as a JSON-safe dictionary.

        ``engine=None`` (follow the process default) is omitted: backends
        are bit-identical, so only an explicitly pinned engine is worth
        recording -- and old stored records / cache keys stay valid.
        """
        data = asdict(self)
        if data.get("engine") is None:
            del data["engine"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CompressionConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are ignored so stored campaign records stay loadable
        when the config grows new fields.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def cache_key(self) -> str:
        """Stable content hash of the configuration.

        Computed over the canonical JSON of :meth:`to_dict`, so it is
        identical across processes and interpreter runs (unlike ``hash()``)
        and changes whenever any knob changes.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()[:16]

    #: Knobs consumed only by the State Skip reduction -- the encode stage
    #: (substrate construction + seed computation) is invariant under them,
    #: which is what lets campaign grid neighbours share one encoding.
    _REDUCTION_ONLY_FIELDS = (
        "segment_size",
        "speedup",
        "alignment",
        "force_first_segment_useful",
    )

    def encode_dict(self) -> Dict[str, object]:
        """The encode-relevant knobs only (reduction-only fields dropped).

        ``engine`` is dropped too: the encode stage is pure linear algebra
        over the substrate, and even where circuits are simulated the
        backends are bit-identical -- the engine can never change an
        encoding.
        """
        data = self.to_dict()
        for name in self._REDUCTION_ONLY_FIELDS:
            data.pop(name)
        data.pop("engine", None)
        return data

    def encode_cache_key(self) -> str:
        """Stable content hash of the encode-relevant knobs.

        Two configs with equal keys produce byte-identical encode-stage
        results on the same test set: the same substrate (LFSR, phase
        shifter, equation system) and the same seeds.  Used by
        :class:`~repro.context.CompressionContext` to cache encodings and by
        the campaign runner to group (S, k) grid neighbours onto one worker.
        ``lfsr_size=None`` (auto) is part of the key, so resolve it first
        when grouping across test sets.
        """
        canonical = json.dumps(
            self.encode_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()[:16]
