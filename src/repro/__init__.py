"""State Skip LFSR test-set-embedding library.

This package reproduces the system described in

    V. Tenentes, X. Kavousianos, E. Kalligeros,
    "State Skip LFSRs: Bridging the Gap between Test Data Compression and
    Test Set Embedding for IP Cores", DATE 2008.

The top-level entry point is :func:`repro.pipeline.compress`, which runs the
complete flow (window-based LFSR-reseeding encoding, State Skip test-sequence
reduction, decompressor construction and verification) on a test set and
returns a :class:`repro.pipeline.CompressionReport`.

Sub-packages
------------
``repro.gf2``
    GF(2) linear algebra: bit vectors, matrices, incremental solvers,
    polynomials.
``repro.lfsr``
    LFSRs, transition matrices, State Skip LFSRs, phase shifters.
``repro.scan``
    Scan-chain architecture of the core under test.
``repro.testdata``
    Test cubes, test sets, calibrated synthetic benchmark generators and
    published reference data.
``repro.circuits``
    Gate-level netlists, fault simulation and ATPG (produces genuine test
    cubes for circuits whose structure is available).
``repro.encoding``
    Window-based and classical LFSR-reseeding seed computation.
``repro.skip``
    The paper's test-sequence-reduction method (Section 3.2).
``repro.decompressor``
    The on-chip decompression architecture (Section 3.3) and its
    gate-equivalent cost model.
``repro.campaign``
    Campaign orchestration: declarative experiment grids executed on a
    multiprocessing worker pool against a persistent, content-addressed
    result store (resume for free).
"""

__version__ = "0.1.0"

__all__ = [
    "CampaignRunner",
    "CampaignSpec",
    "CompressionConfig",
    "CompressionContext",
    "CompressionReport",
    "ResultStore",
    "compress",
    "__version__",
]

_LAZY_EXPORTS = {
    "CompressionConfig": ("repro.config", "CompressionConfig"),
    "CompressionContext": ("repro.context", "CompressionContext"),
    "CompressionReport": ("repro.pipeline", "CompressionReport"),
    "compress": ("repro.pipeline", "compress"),
    "CampaignSpec": ("repro.campaign.spec", "CampaignSpec"),
    "CampaignRunner": ("repro.campaign.runner", "CampaignRunner"),
    "ResultStore": ("repro.campaign.store", "ResultStore"),
}


def __getattr__(name):
    """Lazily resolve the high-level pipeline exports.

    Keeps ``import repro.gf2`` (and the other substrates) importable without
    paying for the full pipeline import graph.
    """
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value
