"""Single stuck-at fault model and structural equivalence collapsing.

The fault universe is the classical one: every net of the circuit (primary
inputs and gate outputs) can be stuck at 0 or stuck at 1.  Faults on the
individual fan-out branches are folded onto their stem, which is the usual
simplification for stem-oriented fault simulators and keeps the fault count
at ``2 * #nets``.

Structural equivalence collapsing removes the textbook redundancies:

* the stuck-at faults on the output of a BUF/NOT are equivalent to (possibly
  inverted) faults on its input,
* a stuck-at-c fault on any input of an AND/OR-type gate (with c the
  controlling value) is equivalent to the corresponding fault on the gate
  output -- we keep the output representative.

Collapsing is optional (fault coverage is always reported against the
uncollapsed universe if desired) but cuts ATPG time roughly in half.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set

from repro.circuits.netlist import GateType, Netlist


@dataclass(frozen=True, order=True)
class StuckAtFault:
    """A single stuck-at fault on a named net."""

    net: str
    stuck_value: int

    def __post_init__(self):
        if self.stuck_value not in (0, 1):
            raise ValueError("stuck_value must be 0 or 1")

    def __str__(self) -> str:
        return f"{self.net}/sa{self.stuck_value}"


def all_faults(netlist: Netlist) -> List[StuckAtFault]:
    """The uncollapsed single stuck-at fault list (two faults per net)."""
    faults = []
    for net in netlist.nets():
        faults.append(StuckAtFault(net, 0))
        faults.append(StuckAtFault(net, 1))
    return faults


def collapse_faults(netlist: Netlist) -> List[StuckAtFault]:
    """Structurally collapsed fault list.

    The returned representatives are a dominance-free subset sufficient for
    test generation: detecting every representative detects every fault of
    the uncollapsed universe.
    """
    keep: Set[StuckAtFault] = set(all_faults(netlist))
    fanout = netlist.fanout()

    def single_fanout(net: str) -> bool:
        return len(fanout[net]) == 1

    for gate in netlist.gates():
        gate_type = gate.gate_type
        if gate_type in (GateType.BUF, GateType.NOT):
            # Output faults are equivalent to (possibly inverted) input faults.
            keep.discard(StuckAtFault(gate.output, 0))
            keep.discard(StuckAtFault(gate.output, 1))
        elif gate_type in (GateType.AND, GateType.NAND):
            # Input stuck-at-0 is equivalent to an output fault.
            for net in gate.inputs:
                if single_fanout(net):
                    keep.discard(StuckAtFault(net, 0))
        elif gate_type in (GateType.OR, GateType.NOR):
            # Input stuck-at-1 is equivalent to an output fault.
            for net in gate.inputs:
                if single_fanout(net):
                    keep.discard(StuckAtFault(net, 1))
        # XOR/XNOR inputs are not equivalence-collapsible.
    # Primary-input faults always stay (they are observable test requirements).
    for net in netlist.inputs:
        keep.add(StuckAtFault(net, 0))
        keep.add(StuckAtFault(net, 1))
    return sorted(keep)


def fault_coverage(detected: Sequence[StuckAtFault], universe: Sequence[StuckAtFault]) -> float:
    """Detected fraction of a fault universe, in percent."""
    if not universe:
        raise ValueError("fault universe is empty")
    detected_set = set(detected)
    return 100.0 * sum(1 for f in universe if f in detected_set) / len(universe)
