"""Deterministic test generation (a compact PODEM) producing test cubes.

The ATPG loop mirrors what Atalanta does for the paper's test sets:

1. take the next undetected fault from the collapsed fault list,
2. run PODEM to find a *partially specified* input assignment (a test cube)
   that activates the fault and propagates its effect to a primary output,
3. random-fill a copy of the cube, fault-simulate it and drop every fault it
   detects,
4. keep the cube (with its don't-cares intact) in the test set.

The resulting :class:`~repro.testdata.test_set.TestSet` is *uncompacted* (one
cube per targeted fault), has 100% coverage of the detectable collapsed
faults, and -- crucially for the reseeding experiments -- keeps the don't-care
bits that make LFSR encoding effective.

The PODEM implementation is the standard objective/backtrace/implication loop
over three-valued simulation, with a backtrack limit to bound the effort on
redundant faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.circuits.faults import StuckAtFault, collapse_faults
from repro.circuits.netlist import GateType, Netlist
from repro.circuits.simulator import X, simulate_ternary
from repro.testdata.cube import TestCube
from repro.testdata.test_set import TestSet

#: Controlling value of each gate type (None when it has none).
_CONTROLLING = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}


@dataclass
class AtpgResult:
    """Everything the ATPG run produced."""

    test_set: TestSet
    detected: List[StuckAtFault]
    redundant: List[StuckAtFault]
    aborted: List[StuckAtFault]
    total_faults: int

    @property
    def coverage_percent(self) -> float:
        if self.total_faults == 0:
            return 100.0
        return 100.0 * len(self.detected) / self.total_faults

    @property
    def effective_coverage_percent(self) -> float:
        """Coverage of the non-redundant faults (the paper's 100% figure)."""
        testable = self.total_faults - len(self.redundant)
        if testable == 0:
            return 100.0
        return 100.0 * len(self.detected) / testable


class PodemAtpg:
    """PODEM test generation for single stuck-at faults."""

    def __init__(self, netlist: Netlist, backtrack_limit: int = 200):
        self._netlist = netlist
        self._backtrack_limit = backtrack_limit
        self._fanout = netlist.fanout()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate_cube(self, fault: StuckAtFault) -> Optional[Dict[str, int]]:
        """A partial input assignment detecting ``fault``, or None.

        ``None`` means the fault is redundant or the backtrack limit was hit.
        """
        assignment: Dict[str, int] = {}
        self._backtracks = 0
        if self._podem(fault, assignment):
            return dict(assignment)
        return None

    def run(
        self,
        faults: Optional[Sequence[StuckAtFault]] = None,
        fill_seed: int = 1,
        fault_dropping: bool = True,
    ) -> AtpgResult:
        """Full ATPG with fault dropping; returns cubes plus statistics."""
        from repro.circuits.fault_sim import FaultSimulator

        universe = list(faults if faults is not None else collapse_faults(self._netlist))
        simulator = FaultSimulator(self._netlist, universe)
        rng = random.Random(fill_seed)
        cubes: List[TestCube] = []
        detected: List[StuckAtFault] = []
        redundant: List[StuckAtFault] = []
        aborted: List[StuckAtFault] = []

        for fault in universe:
            if fault_dropping and fault not in simulator.remaining_faults:
                continue
            assignment = self.generate_cube(fault)
            if assignment is None:
                if self._backtracks >= self._backtrack_limit:
                    aborted.append(fault)
                else:
                    redundant.append(fault)
                continue
            cube = self._assignment_to_cube(assignment)
            cubes.append(cube)
            # Random-fill the cube and drop everything it detects.
            filled = {
                net: assignment.get(net, rng.getrandbits(1))
                for net in self._netlist.inputs
            }
            result = simulator.simulate_patterns([filled])
            detected.extend(result.detected_faults())
            if fault not in result.detected:
                # The fill can mask the target in rare cases; force-count the
                # targeted fault as detected by its own (unfilled) cube.
                detected.append(fault)
        test_set = (
            TestSet(self._netlist.name, cubes)
            if cubes
            else TestSet(
                self._netlist.name,
                [TestCube.from_assignments(self._netlist.num_inputs, {0: 0})],
            )
        )
        return AtpgResult(
            test_set=test_set,
            detected=sorted(set(detected)),
            redundant=redundant,
            aborted=aborted,
            total_faults=len(universe),
        )

    # ------------------------------------------------------------------
    # PODEM internals
    # ------------------------------------------------------------------
    def _podem(self, fault: StuckAtFault, assignment: Dict[str, int]) -> bool:
        status = self._evaluate(fault, assignment)
        if status == "detected":
            return True
        if status == "impossible":
            return False
        objective = self._objective(fault, assignment)
        if objective is None:
            return False
        pi, value = self._backtrace(objective, assignment)
        for candidate in (value, 1 - value):
            assignment[pi] = candidate
            if self._podem(fault, assignment):
                return True
            self._backtracks += 1
            if self._backtracks >= self._backtrack_limit:
                del assignment[pi]
                return False
        del assignment[pi]
        return False

    def _evaluate(self, fault: StuckAtFault, assignment: Dict[str, int]) -> str:
        """Classify the current partial assignment for the target fault."""
        good = simulate_ternary(self._netlist, assignment)
        faulty = self._faulty_ternary(fault, assignment)
        # Fault activation check.
        activation = good[fault.net]
        if activation == fault.stuck_value:
            return "impossible"
        for output in self._netlist.outputs:
            g, f = good[output], faulty[output]
            if g is not X and f is not X and g != f:
                return "detected"
        # X-path check: some net with differing/possible-differing value must
        # still reach an output through X nets.
        if not self._x_path_exists(good, faulty):
            return "impossible"
        return "undetermined"

    def _faulty_ternary(
        self, fault: StuckAtFault, assignment: Dict[str, int]
    ) -> Dict[str, Optional[int]]:
        from repro.circuits.simulator import _eval_ternary

        values: Dict[str, Optional[int]] = {}
        for net in self._netlist.inputs:
            values[net] = assignment.get(net, X)
            if net == fault.net:
                values[net] = fault.stuck_value
        for gate in self._netlist.gates():
            value = _eval_ternary(gate, values)
            if gate.output == fault.net:
                value = fault.stuck_value
            values[gate.output] = value
        return values

    def _x_path_exists(
        self,
        good: Dict[str, Optional[int]],
        faulty: Dict[str, Optional[int]],
    ) -> bool:
        """True when a difference (or potential difference) can still reach a PO."""
        sources = [
            net
            for net in self._netlist.nets()
            if good[net] is not X and faulty[net] is not X and good[net] != faulty[net]
        ]
        if not sources:
            # The fault is not activated yet; propagation cannot be ruled out.
            return True
        reachable: Set[str] = set()
        stack = list(sources)
        while stack:
            net = stack.pop()
            if net in reachable:
                continue
            reachable.add(net)
            for successor in self._fanout[net]:
                if good[successor] is X or faulty[successor] is X or (
                    good[successor] != faulty[successor]
                ):
                    stack.append(successor)
        return any(net in reachable for net in self._netlist.outputs)

    def _objective(
        self, fault: StuckAtFault, assignment: Dict[str, int]
    ) -> Optional[Tuple[str, int]]:
        """Next (net, value) goal: activate the fault, then propagate it."""
        good = simulate_ternary(self._netlist, assignment)
        if good[fault.net] is X:
            return (fault.net, 1 - fault.stuck_value)
        faulty = self._faulty_ternary(fault, assignment)
        # D-frontier: gates whose output is X while some input carries the
        # fault difference.
        for gate in self._netlist.gates():
            if good[gate.output] is not X and faulty[gate.output] is not X:
                continue
            carries_difference = any(
                good[src] is not X
                and faulty[src] is not X
                and good[src] != faulty[src]
                for src in gate.inputs
            )
            if not carries_difference:
                continue
            control = _CONTROLLING.get(gate.gate_type)
            non_controlling = 1 - control if control is not None else 0
            for src in gate.inputs:
                if good[src] is X:
                    return (src, non_controlling)
        return None

    def _backtrace(
        self, objective: Tuple[str, int], assignment: Dict[str, int]
    ) -> Tuple[str, int]:
        """Map an objective back to an unassigned primary input."""
        net, value = objective
        good = simulate_ternary(self._netlist, assignment)
        while net not in self._netlist.inputs:
            gate = self._netlist.gate(net)
            if gate.gate_type.inverting:
                value = 1 - value
            # Choose an input with unknown value to continue the backtrace.
            next_net = None
            for src in gate.inputs:
                if good[src] is X:
                    next_net = src
                    break
            if next_net is None:
                next_net = gate.inputs[0]
            net = next_net
        return net, value

    def _assignment_to_cube(self, assignment: Dict[str, int]) -> TestCube:
        indexed = {
            self._netlist.input_index(net): value for net, value in assignment.items()
        }
        if not indexed:
            indexed = {0: 0}
        return TestCube.from_assignments(self._netlist.num_inputs, indexed)


def generate_test_set_for_netlist(
    netlist: Netlist, backtrack_limit: int = 200, fill_seed: int = 1
) -> AtpgResult:
    """Convenience wrapper: collapsed faults, PODEM, fault dropping."""
    return PodemAtpg(netlist, backtrack_limit=backtrack_limit).run(fill_seed=fill_seed)
