"""Deterministic test generation (a compact PODEM) producing test cubes.

The ATPG loop mirrors what Atalanta does for the paper's test sets:

1. take the next undetected fault from the collapsed fault list,
2. run PODEM to find a *partially specified* input assignment (a test cube)
   that activates the fault and propagates its effect to a primary output,
3. random-fill a copy of the cube, fault-simulate it and drop every fault it
   detects,
4. keep the cube (with its don't-cares intact) in the test set.

The resulting :class:`~repro.testdata.test_set.TestSet` is *uncompacted* (one
cube per targeted fault), has 100% coverage of the detectable collapsed
faults, and -- crucially for the reseeding experiments -- keeps the don't-care
bits that make LFSR encoding effective.

The PODEM implementation is the standard objective/backtrace/implication loop
over three-valued simulation, with a backtrack limit to bound the effort on
redundant faults.

Four engines drive the loop, selected through the backend registry
(:mod:`repro.circuits.backends`) via ``engine=``:

* ``engine="events"`` (the default) keeps one persistent packed
  good+faulty state per :class:`PodemAtpg`
  (:class:`~repro.circuits.ternary.TernaryEventEngine`): each targeted
  fault re-forces its overlay onto the live baseline and releases it when
  done (no per-fault rebuild), each decision assigns one primary input and
  re-evaluates only that input's fanout cone through per-level bucket
  queues, and each backtrack rewinds an undo log -- O(changed cone) per
  decision node instead of O(netlist);
* ``engine="packed"`` selects the **packed full-pass** engine, which
  evaluates the good and the faulty machine together in one
  2-bit-per-net pass of the two-word ternary core
  (:mod:`repro.circuits.ternary`), recomputed once per PODEM decision node
  and shared by the evaluation, the objective search, the backtrace and
  the X-path check;
* ``engine="compiled"`` runs the same full-pass decision loop, but each
  pass calls the netlist's generated straight-line ternary function
  (:mod:`repro.circuits.backends.compiled`) instead of the interpreted
  plan walk;
* ``engine="reference"`` selects the original dict-based engine
  (:func:`~repro.circuits.simulator.simulate_ternary_reference` semantics).

The old boolean flags (``use_packed=False`` -> reference,
``use_events=False`` -> packed) survive as deprecated shims.

All engines take identical decisions at every node, so the produced cubes,
the detected/redundant/aborted partitions and the coverage figures are
bit-identical (the golden-equivalence tests enforce this).  The drop
simulation of :meth:`PodemAtpg.run` is batched the same way: random fills
accumulate into one word-packed block that the fault simulator screens and
drops in a single pass (``fills="per-pattern"``, the reference and packed
backends' default, keeps the per-pattern reference -- again bit-identical).
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.circuits.backends import compiled_evaluator, get_backend, resolve_engine
from repro.circuits.faults import StuckAtFault, collapse_faults
from repro.circuits.netlist import GateType, Netlist
from repro.circuits.simulator import X, simulate_ternary_reference
from repro.circuits.ternary import (
    OP_AND,
    OP_OR,
    PackedPlan,
    TernaryEventEngine,
    eval_binary,
    eval_ternary,
    packed_plan,
)
from repro.telemetry import get_recorder
from repro.testdata.cube import TestCube
from repro.testdata.test_set import TestSet

#: Packed dual-machine patterns: bit 0 = good circuit, bit 1 = faulty.
_GOOD, _FAULTY, _BOTH = 0b01, 0b10, 0b11

#: Controlling value of each gate type (None when it has none).
_CONTROLLING = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}


@dataclass
class AtpgResult:
    """Everything the ATPG run produced."""

    test_set: TestSet
    detected: List[StuckAtFault]
    redundant: List[StuckAtFault]
    aborted: List[StuckAtFault]
    total_faults: int

    @property
    def coverage_percent(self) -> float:
        if self.total_faults == 0:
            return 100.0
        return 100.0 * len(self.detected) / self.total_faults

    @property
    def effective_coverage_percent(self) -> float:
        """Coverage of the non-redundant faults (the paper's 100% figure)."""
        testable = self.total_faults - len(self.redundant)
        if testable == 0:
            return 100.0
        return 100.0 * len(self.detected) / testable


class PodemAtpg:
    """PODEM test generation for single stuck-at faults.

    ``engine=`` selects the backend driving the decision loop (see the
    module docstring); every backend produces identical cubes for every
    fault.  ``use_packed``/``use_events`` are deprecated shims resolving
    to a backend name.
    """

    def __init__(
        self,
        netlist: Netlist,
        backtrack_limit: int = 200,
        use_packed: Optional[bool] = None,
        use_events: Optional[bool] = None,
        engine: Optional[str] = None,
    ):
        self._netlist = netlist
        self._backtrack_limit = backtrack_limit
        self._engine_name = resolve_engine(
            engine, use_packed=use_packed, use_events=use_events
        )
        self._backend = get_backend(self._engine_name)
        self._podem_mode = self._backend.podem_mode
        self._compiled = (
            compiled_evaluator(netlist) if self._podem_mode == "compiled" else None
        )
        self._fanout = netlist.fanout()
        self._plan: PackedPlan = packed_plan(netlist)
        # Gate row lookup by output index for the packed backtrace.
        self._row_by_output = {
            output: (inputs, inverting)
            for output, _op, inputs, inverting in self._plan.rows
        }
        # One event engine serves every targeted fault: after each fault the
        # undo log rewinds it to the empty-assignment checkpoint and the
        # next fault's overlay is re-forced (see _event_engine), so the two
        # state lists and the full baseline evaluation are built once per
        # PodemAtpg instead of once per fault.  The difference set and the
        # D-frontier bookkeeping below persist with it: ``_diff`` holds the
        # nets carrying the fault difference, ``_diff_in_count[row]`` counts
        # a row's distinct difference inputs, and ``_frontier_rows`` holds
        # the rows where that count is positive -- all maintained from the
        # same touched-net lists, and all provably empty/zero again once the
        # engine is rewound (the empty-assignment baseline has no known
        # net, hence no difference).
        self._engine: Optional[TernaryEventEngine] = None
        self._diff: Set[int] = set()
        self._diff_in_count: List[int] = [0] * len(self._plan.rows)
        self._frontier_rows: Set[int] = set()
        # Primary outputs currently in the difference set, maintained in
        # _sync_state so the detected check is one truthiness test instead
        # of a scan over every output per decision node.
        self._diff_outputs: Set[int] = set()
        self._is_output = bytearray(self._plan.num_nets)
        for index in self._plan.output_indices:
            self._is_output[index] = 1

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def engine(self) -> str:
        """Name of the backend driving the decision loop."""
        return self._engine_name

    def generate_cube(self, fault: StuckAtFault) -> Optional[Dict[str, int]]:
        """A partial input assignment detecting ``fault``, or None.

        ``None`` means the fault is redundant or the backtrack limit was hit.
        """
        assignment: Dict[str, int] = {}
        self._backtracks = 0
        self._decisions = 0
        # Per-fault engine telemetry (read by run() after the call); the
        # D-frontier histogram needs an extra scan per objective, so it is
        # collected only while a live recorder is installed.
        self._frontier_sizes = [] if get_recorder().enabled else None
        self._engine_events = 0
        self._engine_passes = 0
        self._engine_undo_depth = 0
        self._engine_reused = False
        mode = self._podem_mode
        if mode == "events":
            engine, token = self._event_engine(fault)
            events_before = engine.events_processed
            passes_before = engine.propagate_passes
            values, cares = engine.values, engine.cares
            # The engine was rewound to the empty-assignment baseline (no
            # known net, so no difference) before the overlay was re-forced;
            # syncing the nets the overlay touched rebuilds the difference
            # set and frontier without the old full-netlist scan.
            self._sync_state(values, cares, engine.changed_entries(token))
            try:
                found = self._podem_events(fault, assignment, engine)
            finally:
                self._sync_entries(engine.release_force(token))
            self._engine_events = engine.events_processed - events_before
            self._engine_passes = engine.propagate_passes - passes_before
            self._engine_undo_depth = engine.max_undo_depth
        elif mode == "reference":
            found = self._podem(fault, assignment)
        else:
            # "packed" and "compiled" share the full-pass decision loop;
            # _dual_state picks the evaluator.
            found = self._podem_packed(fault, assignment)
        if found:
            return dict(assignment)
        return None

    def run(
        self,
        faults: Optional[Sequence[StuckAtFault]] = None,
        fill_seed: int = 1,
        fault_dropping: bool = True,
        fills: Optional[str] = None,
        batch_fills: Optional[bool] = None,
    ) -> AtpgResult:
        """Full ATPG with fault dropping; returns cubes plus statistics.

        ``fills="batched"`` (the events/compiled backends' default) collects
        the random fills of pending cubes into one word-packed block and
        hands the whole block to the fault simulator at once, amortising the
        fault-free evaluation the same way campaign fault simulation does.
        Dropping stays exact: a fault whose turn comes up while fills are
        pending is first screened against the pending block (one cone
        evaluation over all pending patterns), so it is skipped exactly when
        the per-pattern reference (``fills="per-pattern"``, the reference
        and packed backends' default) would have dropped it -- cubes,
        statistics and coverage are bit-identical either way.
        ``batch_fills=`` is the deprecated boolean spelling of the same
        choice.
        """
        from repro.circuits.fault_sim import FaultSimulator

        if batch_fills is not None:
            replacement = "batched" if batch_fills else "per-pattern"
            warnings.warn(
                f"batch_fills={batch_fills!r} is deprecated; "
                f"use fills={replacement!r} instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if fills is None:
                fills = replacement
        if fills is None:
            fills = self._backend.fills
        elif fills not in ("batched", "per-pattern"):
            raise ValueError(
                f"fills must be 'batched' or 'per-pattern', got {fills!r}"
            )
        recorder = get_recorder()
        universe = list(faults if faults is not None else collapse_faults(self._netlist))
        simulator = FaultSimulator(
            self._netlist, universe, engine=self._engine_name
        )
        rng = random.Random(fill_seed)
        cubes: List[TestCube] = []
        detected: List[StuckAtFault] = []
        redundant: List[StuckAtFault] = []
        aborted: List[StuckAtFault] = []
        block = (
            _PendingFills(
                self._plan, simulator.word_width, evaluate=self._fill_evaluator()
            )
            if fills == "batched"
            else None
        )

        with recorder.span(
            "atpg.run", circuit=self._netlist.name, faults=len(universe)
        ) as span:
            for fault in universe:
                if fault_dropping and not simulator.is_remaining(fault):
                    continue
                if block is not None and fault_dropping and block.num_patterns:
                    word = simulator.detection_word(
                        block.good_words, block.num_patterns, fault
                    )
                    if word:
                        # A pending fill detects this fault: the per-pattern
                        # path would have dropped it when that fill was
                        # simulated, before this turn came up.
                        simulator.drop_fault(fault)
                        detected.append(fault)
                        continue
                assignment = self.generate_cube(fault)
                if recorder.enabled:
                    self._flush_fault_telemetry(recorder)
                if assignment is None:
                    if self._backtracks >= self._backtrack_limit:
                        aborted.append(fault)
                    else:
                        redundant.append(fault)
                    continue
                cube = self._assignment_to_cube(assignment)
                cubes.append(cube)
                # Random-fill the cube and drop everything it detects.
                filled = {
                    net: assignment.get(net, rng.getrandbits(1))
                    for net in self._netlist.inputs
                }
                if block is None:
                    result = simulator.simulate_patterns([filled])
                    detected.extend(result.detected_faults())
                    if fault not in result.detected:
                        # The fill can mask the target in rare cases; the
                        # target is still detected by its own (unfilled)
                        # cube.  Drop it too, so the simulator's coverage
                        # agrees with ours.
                        detected.append(fault)
                        simulator.drop_fault(fault)
                else:
                    # The targeted fault is resolved here either way -- by
                    # its own fill, or force-counted through its unfilled
                    # cube -- so only the *other* faults wait for the block
                    # simulation.
                    detected.append(fault)
                    simulator.drop_fault(fault)
                    block.append(filled)
                    if block.num_patterns >= block.capacity:
                        detected.extend(self._flush_fills(simulator, block))
            if block is not None:
                detected.extend(self._flush_fills(simulator, block))
            detected_faults = sorted(set(detected))
            assert detected_faults == simulator.detected_faults, (
                "ATPG bookkeeping diverged from the fault simulator: "
                f"{len(detected_faults)} vs {len(simulator.detected_faults)} detected"
            )
            if recorder.enabled:
                span.set("detected", len(detected_faults))
                span.set("redundant", len(redundant))
                span.set("aborted", len(aborted))
                span.set("cubes", len(cubes))
        test_set = (
            TestSet(self._netlist.name, cubes)
            if cubes
            else TestSet(
                self._netlist.name,
                [TestCube.from_assignments(self._netlist.num_inputs, {0: 0})],
            )
        )
        return AtpgResult(
            test_set=test_set,
            detected=detected_faults,
            redundant=redundant,
            aborted=aborted,
            total_faults=len(universe),
        )

    def _flush_fault_telemetry(self, recorder) -> None:
        """Push the per-fault counters from :meth:`generate_cube` out."""
        recorder.counter("atpg.faults_targeted")
        recorder.counter("atpg.decisions", self._decisions)
        recorder.counter("atpg.backtracks", self._backtracks)
        if self._engine_reused:
            recorder.counter("atpg.engine_reuses")
        if self._engine_events:
            recorder.counter("atpg.events_processed", self._engine_events)
        if self._engine_passes:
            recorder.counter("atpg.propagate_passes", self._engine_passes)
            recorder.observe(
                "atpg.events_per_pass", self._engine_events // self._engine_passes
            )
        if self._engine_undo_depth:
            recorder.observe("atpg.undo_depth", self._engine_undo_depth)
        if self._frontier_sizes:
            for size in self._frontier_sizes:
                recorder.observe("atpg.d_frontier", size)

    def _fill_evaluator(self) -> Optional[Callable[[List[int]], None]]:
        """Width-1 fault-free evaluator for pending fills (None = interpreted)."""
        if self._compiled is None:
            return None
        binary_full = self._compiled.binary_full()
        return lambda values: binary_full(values, 1)

    def _flush_fills(
        self, simulator, block: "_PendingFills"
    ) -> List[StuckAtFault]:
        """Simulate and drop the pending fill block; returns its detections."""
        if not block.num_patterns:
            return []
        result = simulator.detect_block(block.good_words, block.num_patterns)
        block.reset()
        return result.detected_faults()

    # ------------------------------------------------------------------
    # PODEM internals -- reference (dict-based) engine
    # ------------------------------------------------------------------
    def _podem(self, fault: StuckAtFault, assignment: Dict[str, int]) -> bool:
        status = self._evaluate(fault, assignment)
        if status == "detected":
            return True
        if status == "impossible":
            return False
        objective = self._objective(fault, assignment)
        if objective is None:
            return False
        pi, value = self._backtrace(objective, assignment)
        for candidate in (value, 1 - value):
            assignment[pi] = candidate
            self._decisions += 1
            if self._podem(fault, assignment):
                return True
            self._backtracks += 1
            if self._backtracks >= self._backtrack_limit:
                del assignment[pi]
                return False
        del assignment[pi]
        return False

    def _evaluate(self, fault: StuckAtFault, assignment: Dict[str, int]) -> str:
        """Classify the current partial assignment for the target fault."""
        good = simulate_ternary_reference(self._netlist, assignment)
        faulty = self._faulty_ternary(fault, assignment)
        # Fault activation check.
        activation = good[fault.net]
        if activation == fault.stuck_value:
            return "impossible"
        for output in self._netlist.outputs:
            g, f = good[output], faulty[output]
            if g is not X and f is not X and g != f:
                return "detected"
        # X-path check: some net with differing/possible-differing value must
        # still reach an output through X nets.
        if not self._x_path_exists(good, faulty):
            return "impossible"
        return "undetermined"

    def _faulty_ternary(
        self, fault: StuckAtFault, assignment: Dict[str, int]
    ) -> Dict[str, Optional[int]]:
        from repro.circuits.simulator import _eval_ternary

        values: Dict[str, Optional[int]] = {}
        for net in self._netlist.inputs:
            values[net] = assignment.get(net, X)
            if net == fault.net:
                values[net] = fault.stuck_value
        for gate in self._netlist.gates():
            value = _eval_ternary(gate, values)
            if gate.output == fault.net:
                value = fault.stuck_value
            values[gate.output] = value
        return values

    def _x_path_exists(
        self,
        good: Dict[str, Optional[int]],
        faulty: Dict[str, Optional[int]],
    ) -> bool:
        """True when a difference (or potential difference) can still reach a PO."""
        sources = [
            net
            for net in self._netlist.nets()
            if good[net] is not X and faulty[net] is not X and good[net] != faulty[net]
        ]
        if not sources:
            # The fault is not activated yet; propagation cannot be ruled out.
            return True
        reachable: Set[str] = set()
        stack = list(sources)
        while stack:
            net = stack.pop()
            if net in reachable:
                continue
            reachable.add(net)
            for successor in self._fanout[net]:
                if good[successor] is X or faulty[successor] is X or (
                    good[successor] != faulty[successor]
                ):
                    stack.append(successor)
        return any(net in reachable for net in self._netlist.outputs)

    def _objective(
        self, fault: StuckAtFault, assignment: Dict[str, int]
    ) -> Optional[Tuple[str, int]]:
        """Next (net, value) goal: activate the fault, then propagate it."""
        good = simulate_ternary_reference(self._netlist, assignment)
        if good[fault.net] is X:
            return (fault.net, 1 - fault.stuck_value)
        faulty = self._faulty_ternary(fault, assignment)
        # D-frontier: gates whose output is X while some input carries the
        # fault difference.
        for gate in self._netlist.gates():
            if good[gate.output] is not X and faulty[gate.output] is not X:
                continue
            carries_difference = any(
                good[src] is not X
                and faulty[src] is not X
                and good[src] != faulty[src]
                for src in gate.inputs
            )
            if not carries_difference:
                continue
            control = _CONTROLLING.get(gate.gate_type)
            non_controlling = 1 - control if control is not None else 0
            for src in gate.inputs:
                if good[src] is X:
                    return (src, non_controlling)
        return None

    def _backtrace(
        self, objective: Tuple[str, int], assignment: Dict[str, int]
    ) -> Tuple[str, int]:
        """Map an objective back to an unassigned primary input."""
        net, value = objective
        good = simulate_ternary_reference(self._netlist, assignment)
        while net not in self._netlist.inputs:
            gate = self._netlist.gate(net)
            if gate.gate_type.inverting:
                value = 1 - value
            # Choose an input with unknown value to continue the backtrace.
            next_net = None
            for src in gate.inputs:
                if good[src] is X:
                    next_net = src
                    break
            if next_net is None:
                next_net = gate.inputs[0]
            net = next_net
        return net, value

    # ------------------------------------------------------------------
    # PODEM internals -- packed dual-machine engine
    # ------------------------------------------------------------------
    def _podem_packed(self, fault: StuckAtFault, assignment: Dict[str, int]) -> bool:
        """The same decision tree as :meth:`_podem`, on packed state.

        One packed good+faulty evaluation per decision node feeds the
        status check, the objective search and the backtrace -- the
        reference engine re-simulated for each of those.
        """
        values, cares = self._dual_state(fault, assignment)
        status = self._evaluate_packed(fault, values, cares)
        if status == "detected":
            return True
        if status == "impossible":
            return False
        objective = self._objective_packed(fault, values, cares)
        if objective is None:
            return False
        pi, value = self._backtrace_packed(objective, cares)
        for candidate in (value, 1 - value):
            assignment[pi] = candidate
            self._decisions += 1
            if self._podem_packed(fault, assignment):
                return True
            self._backtracks += 1
            if self._backtracks >= self._backtrack_limit:
                del assignment[pi]
                return False
        del assignment[pi]
        return False

    def _dual_state(
        self, fault: StuckAtFault, assignment: Dict[str, int]
    ) -> Tuple[List[int], List[int]]:
        """Packed 2-bit state of the good (bit 0) and faulty (bit 1) machine.

        The compiled backend substitutes the netlist's generated ternary
        full pass for the interpreted plan walk; the emitted algebra is the
        same, so the decision loop above sees bit-identical state.
        """
        plan = self._plan
        values = [0] * plan.num_nets
        cares = [0] * plan.num_nets
        nets = plan.nets
        for i in range(plan.num_inputs):
            bit = assignment.get(nets[i])
            if bit is not None:
                cares[i] = _BOTH
                if bit:
                    values[i] = _BOTH
        fault_index = plan.index[fault.net]
        stuck = _FAULTY if fault.stuck_value else 0
        compiled = self._compiled
        if fault_index < plan.num_inputs:
            # Input-site fault: force before evaluation (inputs have no row).
            cares[fault_index] |= _FAULTY
            values[fault_index] = (values[fault_index] & _GOOD) | stuck
            if compiled is not None:
                compiled.ternary_full()(values, cares, _BOTH)
            else:
                eval_ternary(plan, values, cares, _BOTH)
        elif compiled is not None:
            compiled.ternary_full()(
                values, cares, _BOTH, fault_index, _FAULTY, stuck
            )
        else:
            eval_ternary(
                plan,
                values,
                cares,
                _BOTH,
                force_index=fault_index,
                force_mask=_FAULTY,
                force_value=stuck,
            )
        return values, cares

    def _evaluate_packed(
        self, fault: StuckAtFault, values: List[int], cares: List[int]
    ) -> str:
        """Classify the current packed state for the target fault."""
        plan = self._plan
        fault_index = plan.index[fault.net]
        # Fault activation check (on the good machine).
        if cares[fault_index] & _GOOD and (values[fault_index] & _GOOD) == (
            fault.stuck_value & _GOOD
        ):
            return "impossible"
        for output in plan.output_indices:
            if cares[output] & _BOTH == _BOTH and (
                values[output] ^ (values[output] >> 1)
            ) & 1:
                return "detected"
        if not self._x_path_exists_packed(values, cares):
            return "impossible"
        return "undetermined"

    def _x_path_exists_packed(self, values: List[int], cares: List[int]) -> bool:
        """True when a difference (or potential one) can still reach a PO."""
        plan = self._plan
        sources = [
            net
            for net in range(plan.num_nets)
            if cares[net] & _BOTH == _BOTH and (values[net] ^ (values[net] >> 1)) & 1
        ]
        if not sources:
            # The fault is not activated yet; propagation cannot be ruled out.
            return True
        fanout = plan.fanout
        reachable: Set[int] = set()
        stack = sources
        while stack:
            net = stack.pop()
            if net in reachable:
                continue
            reachable.add(net)
            for successor in fanout[net]:
                if cares[successor] & _BOTH != _BOTH or (
                    values[successor] ^ (values[successor] >> 1)
                ) & 1:
                    stack.append(successor)
        return any(net in reachable for net in plan.output_indices)

    def _objective_packed(
        self, fault: StuckAtFault, values: List[int], cares: List[int]
    ) -> Optional[Tuple[int, int]]:
        """Next (net index, value) goal: activate the fault, then propagate."""
        plan = self._plan
        fault_index = plan.index[fault.net]
        if not cares[fault_index] & _GOOD:
            return (fault_index, 1 - fault.stuck_value)
        # D-frontier: gates whose output is X on either machine while some
        # input carries the fault difference.
        for output, op, inputs, _inverting in plan.rows:
            if cares[output] & _BOTH == _BOTH:
                continue
            carries_difference = any(
                cares[src] & _BOTH == _BOTH
                and (values[src] ^ (values[src] >> 1)) & 1
                for src in inputs
            )
            if not carries_difference:
                continue
            if op == OP_AND:
                non_controlling = 1
            elif op == OP_OR:
                non_controlling = 0
            else:
                non_controlling = 0
            for src in inputs:
                if not cares[src] & _GOOD:
                    return (src, non_controlling)
        return None

    def _backtrace_packed(
        self, objective: Tuple[int, int], cares: List[int]
    ) -> Tuple[str, int]:
        """Map an objective back to an unassigned primary input (by name)."""
        net, value = objective
        num_inputs = self._plan.num_inputs
        while net >= num_inputs:
            inputs, inverting = self._row_by_output[net]
            if inverting:
                value = 1 - value
            # Choose an input with unknown good value to continue the trace.
            next_net = None
            for src in inputs:
                if not cares[src] & _GOOD:
                    next_net = src
                    break
            if next_net is None:
                next_net = inputs[0]
            net = next_net
        return self._plan.nets[net], value

    # ------------------------------------------------------------------
    # PODEM internals -- event-driven engine (packed + incremental)
    # ------------------------------------------------------------------
    def _event_engine(self, fault: StuckAtFault) -> Tuple[TernaryEventEngine, int]:
        """The persistent dual-machine engine, re-forced for ``fault``.

        The engine is built once per :class:`PodemAtpg` (at the
        empty-assignment baseline, no overlay) and reused for every
        targeted fault: each call installs the fault's overlay with
        :meth:`~TernaryEventEngine.reforce` and returns the undo token
        that :meth:`generate_cube` hands back to
        :meth:`~TernaryEventEngine.release_force` when the fault is done.
        """
        plan = self._plan
        engine = self._engine
        if engine is None:
            engine = self._engine = TernaryEventEngine(plan, _BOTH)
        else:
            self._engine_reused = True
        # The undo log is empty here (every fault releases back to the
        # baseline), so the per-fault watermark restarts from zero.
        engine.max_undo_depth = 0
        token = engine.reforce(
            plan.index[fault.net],
            _FAULTY,
            _FAULTY if fault.stuck_value else 0,
        )
        return engine, token

    def _podem_events(
        self,
        fault: StuckAtFault,
        assignment: Dict[str, int],
        engine: TernaryEventEngine,
    ) -> bool:
        """The same decision tree as :meth:`_podem_packed`, incrementally.

        The packed engine re-simulated the whole netlist once per decision
        node; here the engine state persists across the recursion, every
        input assignment updates only that input's fanout cone through the
        per-level bucket queues, and backtracking rewinds the undo log --
        O(changed cone) per decision instead of O(netlist).  ``_diff`` (the
        nets currently carrying the fault difference) and ``_frontier_rows``
        (the rows reading at least one of them) are kept in sync from the
        nets each update touched, so the X-path check reads the set and the
        objective search reads a maintained D-frontier instead of rescanning
        every net or plan row.  The status check, objective search and
        backtrace read the same two-word state, so all three engines take
        identical decisions node for node.
        """
        values, cares = engine.values, engine.cares
        status = self._evaluate_events(fault, values, cares, self._diff)
        if status == "detected":
            return True
        if status == "impossible":
            return False
        objective = self._objective_events(fault, values, cares)
        if objective is None:
            return False
        pi, value = self._backtrace_packed(objective, cares)
        pi_index = self._plan.index[pi]
        for candidate in (value, 1 - value):
            assignment[pi] = candidate
            self._decisions += 1
            token = engine.assign(pi_index, candidate)
            self._sync_state(values, cares, engine.changed_entries(token))
            if self._podem_events(fault, assignment, engine):
                return True
            self._sync_entries(engine.rewind(token))
            self._backtracks += 1
            if self._backtracks >= self._backtrack_limit:
                del assignment[pi]
                return False
        del assignment[pi]
        return False

    def _sync_state(
        self,
        values: List[int],
        cares: List[int],
        touched: List[Tuple[int, int, int]],
    ) -> None:
        """Re-derive difference membership for the nets an update touched.

        ``touched`` is the undo-log slice of the update (only its net
        indices are read; the live words come from the state lists).  A net
        entering or leaving the difference set bumps the distinct-
        difference-input count of each plan row reading it (reader_rows
        positions are distinct per net), and the row joins or leaves the
        maintained D-frontier when that count crosses zero -- so frontier
        upkeep costs nothing on the (overwhelmingly common) updates that
        do not toggle difference membership.
        """
        diff = self._diff
        counts = self._diff_in_count
        frontier = self._frontier_rows
        reader_rows = self._plan.reader_rows
        is_output = self._is_output
        diff_outputs = self._diff_outputs
        for entry in touched:
            index = entry[0]
            if cares[index] & _BOTH == _BOTH and (
                values[index] ^ (values[index] >> 1)
            ) & 1:
                if index not in diff:
                    diff.add(index)
                    if is_output[index]:
                        diff_outputs.add(index)
                    for row in reader_rows[index]:
                        count = counts[row] + 1
                        counts[row] = count
                        if count == 1:
                            frontier.add(row)
            elif index in diff:
                diff.discard(index)
                if is_output[index]:
                    diff_outputs.discard(index)
                for row in reader_rows[index]:
                    count = counts[row] - 1
                    counts[row] = count
                    if not count:
                        frontier.discard(row)

    def _sync_entries(self, entries: List[Tuple[int, int, int]]) -> None:
        """:meth:`_sync_state` over a rewound undo-log slice.

        The restored words are read straight off the entries -- iterated in
        reverse so, when an index was overwritten several times since the
        rewind token, its earliest entry (the one actually left in the
        state, see :meth:`TernaryEventEngine.rewind`) is processed last and
        decides the final membership.
        """
        diff = self._diff
        counts = self._diff_in_count
        frontier = self._frontier_rows
        reader_rows = self._plan.reader_rows
        is_output = self._is_output
        diff_outputs = self._diff_outputs
        for index, value, care in reversed(entries):
            if care & _BOTH == _BOTH and (value ^ (value >> 1)) & 1:
                if index not in diff:
                    diff.add(index)
                    if is_output[index]:
                        diff_outputs.add(index)
                    for row in reader_rows[index]:
                        count = counts[row] + 1
                        counts[row] = count
                        if count == 1:
                            frontier.add(row)
            elif index in diff:
                diff.discard(index)
                if is_output[index]:
                    diff_outputs.discard(index)
                for row in reader_rows[index]:
                    count = counts[row] - 1
                    counts[row] = count
                    if not count:
                        frontier.discard(row)

    # NOTE: the three *_events helpers below deliberately *restate* their
    # _*_packed counterparts (with set lookups replacing the recomputed
    # difference predicate) instead of sharing code with them.  The
    # full-pass methods are the frozen reference this engine is golden-
    # tested against -- the same pattern as simulate_ternary_reference and
    # build_embedding_map_reference -- and a shared helper would make the
    # bit-identity tests tautological.
    def _evaluate_events(
        self,
        fault: StuckAtFault,
        values: List[int],
        cares: List[int],
        diff: Set[int],
    ) -> str:
        """:meth:`_evaluate_packed` with the maintained difference set."""
        plan = self._plan
        fault_index = plan.index[fault.net]
        if cares[fault_index] & _GOOD and (values[fault_index] & _GOOD) == (
            fault.stuck_value & _GOOD
        ):
            return "impossible"
        if self._diff_outputs:
            # Maintained alongside ``diff``: nonempty iff some primary
            # output carries the difference -- the per-output scan this
            # replaces returned "detected" under exactly that condition.
            return "detected"
        if not self._x_path_exists_events(values, cares, diff):
            return "impossible"
        return "undetermined"

    def _x_path_exists_events(
        self, values: List[int], cares: List[int], diff: Set[int]
    ) -> bool:
        """:meth:`_x_path_exists_packed` seeded from the difference set.

        The walk returns as soon as it reaches a primary output: a net
        is in the full walk's reachable set iff the walk would pop it
        eventually, so the early exit answers exactly the final
        ``any(output reachable)`` of the full-pass reference.
        """
        if not diff:
            # The fault is not activated yet; propagation cannot be ruled out.
            return True
        plan = self._plan
        fanout = plan.fanout
        is_output = self._is_output
        reachable: Set[int] = set()
        stack = list(diff)
        while stack:
            net = stack.pop()
            if net in reachable:
                continue
            if is_output[net]:
                return True
            reachable.add(net)
            for successor in fanout[net]:
                if cares[successor] & _BOTH != _BOTH or successor in diff:
                    stack.append(successor)
        return False

    def _objective_events(
        self,
        fault: StuckAtFault,
        values: List[int],
        cares: List[int],
    ) -> Optional[Tuple[int, int]]:
        """:meth:`_objective_packed` read off the maintained D-frontier.

        ``_frontier_rows`` holds exactly the rows with a difference-carrying
        input, so walking it in ascending plan order and skipping rows whose
        output is already known on both machines visits the same candidate
        gates, in the same order, as the full plan scan it replaced --
        the returned objective is bit-identical.
        """
        plan = self._plan
        fault_index = plan.index[fault.net]
        if not cares[fault_index] & _GOOD:
            return (fault_index, 1 - fault.stuck_value)
        rows = plan.rows
        frontier = sorted(self._frontier_rows)
        if self._frontier_sizes is not None:
            # Recorder installed: histogram the D-frontier size (candidate
            # rows whose output is still unknown).  The search loop below
            # early-returns at the first frontier gate, so the complete
            # count needs this extra (trace-only) scan.
            self._frontier_sizes.append(
                sum(
                    1
                    for position in frontier
                    if cares[rows[position][0]] & _BOTH != _BOTH
                )
            )
        for position in frontier:
            output, op, inputs, _inverting = rows[position]
            if cares[output] & _BOTH == _BOTH:
                continue
            non_controlling = 1 if op == OP_AND else 0
            for src in inputs:
                if not cares[src] & _GOOD:
                    return (src, non_controlling)
        return None

    def _assignment_to_cube(self, assignment: Dict[str, int]) -> TestCube:
        indexed = {
            self._netlist.input_index(net): value for net, value in assignment.items()
        }
        if not indexed:
            indexed = {0: 0}
        return TestCube.from_assignments(self._netlist.num_inputs, indexed)


class _PendingFills:
    """A word-packed block of random-filled patterns awaiting drop simulation.

    Each appended fill is evaluated fault-free at 1-bit width (the same
    per-pattern cost the unbatched path pays) and OR-merged into the
    block's packed good state -- binary evaluation is bit-sliced, so the
    merged words equal one wide evaluation of all pending patterns.  The
    fault simulator then screens and drops against the whole block at
    once.
    """

    __slots__ = ("plan", "capacity", "patterns", "good_words", "_evaluate")

    def __init__(
        self,
        plan: PackedPlan,
        capacity: int,
        evaluate: Optional[Callable[[List[int]], None]] = None,
    ):
        self.plan = plan
        self.capacity = capacity
        # Width-1 in-place evaluator override (the compiled backend's
        # generated full pass); None keeps the interpreted core.
        self._evaluate = evaluate
        self.reset()

    def reset(self) -> None:
        self.patterns: List[Dict[str, int]] = []
        self.good_words: Dict[str, int] = {net: 0 for net in self.plan.nets}

    @property
    def num_patterns(self) -> int:
        return len(self.patterns)

    def append(self, filled: Dict[str, int]) -> None:
        plan = self.plan
        values = [0] * plan.num_nets
        nets = plan.nets
        for i in range(plan.num_inputs):
            values[i] = filled[nets[i]]
        if self._evaluate is not None:
            self._evaluate(values)
        else:
            eval_binary(plan, values, 1)
        position = len(self.patterns)
        good = self.good_words
        for net, value in zip(nets, values):
            if value:
                good[net] |= 1 << position
        self.patterns.append(filled)


def generate_test_set_for_netlist(
    netlist: Netlist,
    backtrack_limit: int = 200,
    fill_seed: int = 1,
    use_packed: Optional[bool] = None,
    use_events: Optional[bool] = None,
    batch_fills: Optional[bool] = None,
    engine: Optional[str] = None,
    fills: Optional[str] = None,
) -> AtpgResult:
    """Convenience wrapper: collapsed faults, PODEM, fault dropping.

    ``engine=``/``fills=`` select the backend and the fill handling;
    the boolean flags are deprecated shims (one warning per flag passed).
    """
    return PodemAtpg(
        netlist,
        backtrack_limit=backtrack_limit,
        engine=resolve_engine(engine, use_packed=use_packed, use_events=use_events),
    ).run(fill_seed=fill_seed, fills=fills, batch_fills=batch_fills)
