"""Parallel-pattern single-fault propagation fault simulation.

The simulator evaluates the fault-free circuit once per pattern block (up to
``word_width`` patterns packed into each net's integer -- Python ints have
arbitrary width, so the default block is 256 patterns wide), then, fault by
fault, re-evaluates only with the fault injected and compares the primary
outputs.  A fault is detected under pattern ``p`` when any output differs in
bit ``p``.  Fault dropping removes detected faults from subsequent blocks,
which is what makes the ATPG loop (generate a cube, random-fill it, simulate,
drop) cheap.

Per-fault work is bounded three ways: the shared fault-free block evaluation
is memoized and reused by every fault, a fault whose site already carries the
stuck value under every pattern of the block is skipped outright (it cannot
be activated), and only the gates in the fault's fanout cone are re-evaluated
-- event-driven, so propagation stops as soon as the faulty values converge
back to the good ones.

The per-fault strategy is an engine-backend choice
(:mod:`repro.circuits.backends`): ``engine="events"`` (the default) runs the
fanout-cone propagation above, ``engine="compiled"`` evaluates each fault
through the netlist's generated straight-line diff function,
``engine="packed"`` / ``engine="reference"`` restore the original dense
full-circuit re-evaluation per fault.  All backends report identical
detections (the golden-equivalence tests and the ``faultsim-compiled`` fuzz
check rely on this); ``use_cones=`` survives as a deprecated shim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.circuits.backends import get_backend, resolve_engine
from repro.circuits.faults import StuckAtFault, collapse_faults
from repro.circuits.netlist import Netlist
from repro.circuits.simulator import evaluation_plan, pack_patterns, simulate_parallel
from repro.circuits.ternary import (
    OP_AND as _OP_AND,
    OP_OR as _OP_OR,
    OP_XOR as _OP_XOR,
    PlanRow,
)
from repro.telemetry import get_recorder


@dataclass
class FaultSimResult:
    """Outcome of simulating one pattern block."""

    detected: Dict[StuckAtFault, int] = field(default_factory=dict)

    def detected_faults(self) -> List[StuckAtFault]:
        return sorted(self.detected)

    def detecting_pattern(self, fault: StuckAtFault) -> Optional[int]:
        """Index (within the block) of the first pattern detecting ``fault``."""
        word = self.detected.get(fault)
        if word is None or word == 0:
            return None
        return (word & -word).bit_length() - 1


class FaultSimulator:
    """Stateful fault simulator with fault dropping."""

    def __init__(
        self,
        netlist: Netlist,
        faults: Optional[Sequence[StuckAtFault]] = None,
        word_width: int = 256,
        use_cones: Optional[bool] = None,
        engine: Optional[str] = None,
    ):
        if word_width < 1:
            raise ValueError("word_width must be positive")
        self._netlist = netlist
        self._word_width = word_width
        self._engine_name = resolve_engine(engine, use_cones=use_cones)
        self._backend = get_backend(self._engine_name)
        self._remaining: Set[StuckAtFault] = set(
            faults if faults is not None else collapse_faults(netlist)
        )
        self._detected: Set[StuckAtFault] = set()
        self._initial_count = len(self._remaining)
        # Cone-evaluation state, all built lazily on the first cone query so
        # the dense and compiled configurations pay nothing for it.
        self._output_set: Optional[frozenset] = None
        self._fanout: Optional[Dict[str, List[str]]] = None
        self._cones: Dict[str, List[PlanRow]] = {}
        self._plan_index: Optional[Dict[str, Tuple[int, PlanRow]]] = None
        # Activation-screen telemetry: plain int increments in the hot path,
        # flushed to the recorder as deltas once per block.
        self._screen_calls = 0
        self._screen_hits = 0
        self._screen_flushed_calls = 0
        self._screen_flushed_hits = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def netlist(self) -> Netlist:
        return self._netlist

    @property
    def word_width(self) -> int:
        return self._word_width

    @property
    def engine(self) -> str:
        """Name of the backend driving per-fault propagation."""
        return self._engine_name

    @property
    def remaining_faults(self) -> List[StuckAtFault]:
        return sorted(self._remaining)

    @property
    def detected_faults(self) -> List[StuckAtFault]:
        return sorted(self._detected)

    def is_remaining(self, fault: StuckAtFault) -> bool:
        """Set-backed membership test (``remaining_faults`` sorts a copy)."""
        return fault in self._remaining

    def drop_fault(self, fault: StuckAtFault) -> None:
        """Move one fault from remaining to detected (a forced drop).

        The ATPG loop uses this when a targeted fault is counted as
        detected through its own unfilled cube (the random fill masked it):
        without the drop, the simulator's coverage would disagree with the
        returned :class:`~repro.circuits.atpg.AtpgResult`.
        """
        if fault in self._remaining:
            self._remaining.discard(fault)
            self._detected.add(fault)

    @property
    def coverage_percent(self) -> float:
        if self._initial_count == 0:
            return 100.0
        return 100.0 * len(self._detected) / self._initial_count

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate_patterns(
        self, patterns: Sequence[Dict[str, int]], drop: bool = True
    ) -> FaultSimResult:
        """Simulate fully specified patterns against the remaining faults."""
        result = FaultSimResult()
        for start in range(0, len(patterns), self._word_width):
            block = patterns[start : start + self._word_width]
            block_result = self._simulate_block(block)
            for fault, word in block_result.items():
                result.detected[fault] = result.detected.get(fault, 0) | (
                    word << start
                )
            if drop:
                self._detected.update(block_result)
                self._remaining.difference_update(block_result)
        return result

    def simulate_vectors(
        self, vectors: Iterable[int], drop: bool = True
    ) -> FaultSimResult:
        """Simulate packed test vectors (bit ``i`` of the int = input ``i``)."""
        patterns = []
        for vector in vectors:
            pattern = {
                net: (vector >> index) & 1
                for index, net in enumerate(self._netlist.inputs)
            }
            patterns.append(pattern)
        return self.simulate_patterns(patterns, drop=drop)

    def detect_block(
        self, good: Dict[str, int], num_patterns: int, drop: bool = True
    ) -> FaultSimResult:
        """Detect remaining faults against a precomputed fault-free block.

        ``good`` maps every net (primary inputs included) to its packed
        fault-free word over ``num_patterns`` patterns -- exactly what the
        batched ATPG fill block accumulates one pattern at a time.  Skipping
        the redundant re-evaluation of the fault-free circuit is what makes
        handing a whole fill block over in one call worthwhile.
        """
        result = FaultSimResult(detected=self._detect_block(good, num_patterns))
        if drop:
            self._detected.update(result.detected)
            self._remaining.difference_update(result.detected)
        self._flush_block_telemetry(num_patterns, len(result.detected))
        return result

    def detection_word(
        self, good: Dict[str, int], num_patterns: int, fault: StuckAtFault
    ) -> int:
        """Detection word of one fault against a precomputed fault-free block.

        A pure query: nothing is dropped.  The batched ATPG loop screens
        each upcoming fault against the pending fills with one such call
        (one fanout-cone evaluation over all pending patterns, instead of
        one per fill).
        """
        mask = (1 << num_patterns) - 1
        return self._backend.block_detector(self, good, mask)(fault)

    def _simulate_block(
        self, block: Sequence[Dict[str, int]]
    ) -> Dict[StuckAtFault, int]:
        num_patterns = len(block)
        if num_patterns == 0:
            return {}
        words = pack_patterns(self._netlist, block)
        # The fault-free evaluation is computed once and shared by every
        # fault of the block (each fault only overlays its fanout cone).
        good = simulate_parallel(
            self._netlist, words, num_patterns, engine=self._engine_name
        )
        detected = self._detect_block(good, num_patterns)
        self._flush_block_telemetry(num_patterns, len(detected))
        return detected

    def _flush_block_telemetry(self, num_patterns: int, dropped: int) -> None:
        """Per-block counter flush (no-op unless a recorder is installed)."""
        recorder = get_recorder()
        if not recorder.enabled:
            return
        recorder.counter("faultsim.blocks")
        recorder.counter("faultsim.patterns", num_patterns)
        recorder.observe("faultsim.dropped_per_block", dropped)
        calls = self._screen_calls - self._screen_flushed_calls
        if calls:
            # Hit/miss pair (not hits/calls) so the registry's ``*_hits`` /
            # ``*_misses`` pairing derives the activation-screen rate.
            hits = self._screen_hits - self._screen_flushed_hits
            if hits:
                recorder.counter("faultsim.screen_hits", hits)
            if calls - hits:
                recorder.counter("faultsim.screen_misses", calls - hits)
            self._screen_flushed_calls = self._screen_calls
            self._screen_flushed_hits = self._screen_hits

    def _detect_block(
        self, good: Dict[str, int], num_patterns: int
    ) -> Dict[StuckAtFault, int]:
        mask = (1 << num_patterns) - 1
        detected: Dict[StuckAtFault, int] = {}
        # One detector per block: the backend amortises any per-block
        # preparation (e.g. flattening ``good`` into plan order for the
        # compiled diff function) over every fault screened below.
        detect = self._backend.block_detector(self, good, mask)
        for fault in list(self._remaining):
            diff = detect(fault)
            if diff:
                detected[fault] = diff
        return detected

    def _dense_diff(
        self, good: Dict[str, int], mask: int, fault: StuckAtFault
    ) -> int:
        """Output difference word via dense full-circuit re-evaluation.

        The original per-fault strategy, kept as the ``reference`` /
        ``packed`` backends' detector (and as the baseline the compiled
        diff function is benchmarked against).
        """
        num_patterns = mask.bit_length()
        faulty = self._simulate_with_fault(good, num_patterns, fault)
        diff = 0
        for net in self._netlist.outputs:
            diff |= (good[net] ^ faulty[net]) & mask
            if diff == mask:
                break
        return diff

    def _cone_plan(self, net: str) -> List[PlanRow]:
        """Evaluation-ordered plan rows of every gate in ``net``'s fanout."""
        cached = self._cones.get(net)
        if cached is not None:
            return cached
        if self._fanout is None:
            self._fanout = self._netlist.fanout()
        if self._plan_index is None:
            self._plan_index = {
                row[0]: (position, row)
                for position, row in enumerate(evaluation_plan(self._netlist))
            }
        reached: Set[str] = set()
        stack = list(self._fanout[net])
        while stack:
            output = stack.pop()
            if output in reached:
                continue
            reached.add(output)
            stack.extend(self._fanout[output])
        indexed = sorted(self._plan_index[output] for output in reached)
        cached = [row for _, row in indexed]
        self._cones[net] = cached
        return cached

    def _cone_diff(self, good: Dict[str, int], mask: int, fault: StuckAtFault) -> int:
        """Output difference word of one fault, via its fanout cone only."""
        stuck_word = mask if fault.stuck_value else 0
        self._screen_calls += 1
        if good[fault.net] == stuck_word:
            # The site never deviates from the stuck value in this block, so
            # the fault cannot be activated by any of its patterns.
            self._screen_hits += 1
            return 0
        changed: Dict[str, int] = {fault.net: stuck_word}
        changed_get = changed.get
        for output, op, inputs, inverting in self._cone_plan(fault.net):
            dirty = False
            for net in inputs:
                if net in changed:
                    dirty = True
                    break
            if not dirty:
                continue
            if op == _OP_AND:
                result = mask
                for net in inputs:
                    value = changed_get(net)
                    result &= good[net] if value is None else value
            elif op == _OP_OR:
                result = 0
                for net in inputs:
                    value = changed_get(net)
                    result |= good[net] if value is None else value
            elif op == _OP_XOR:
                result = 0
                for net in inputs:
                    value = changed_get(net)
                    result ^= good[net] if value is None else value
            else:
                value = changed_get(inputs[0])
                result = good[inputs[0]] if value is None else value
            if inverting:
                result = ~result & mask
            if result != good[output]:
                changed[output] = result
        diff = 0
        output_set = self._output_set
        if output_set is None:
            output_set = self._output_set = frozenset(self._netlist.outputs)
        for net, value in changed.items():
            if net in output_set:
                diff |= value ^ good[net]
        return diff & mask

    def _simulate_with_fault(
        self, words: Dict[str, int], num_patterns: int, fault: StuckAtFault
    ) -> Dict[str, int]:
        """Dense faulty-circuit evaluation via the shared packed overlay.

        The stuck-at injection is the same overlay PODEM's faulty machine
        uses (:func:`repro.circuits.ternary.eval_binary` forcing): input
        sites are forced before the plan runs, gate sites right after their
        row evaluates.
        """
        from repro.circuits.ternary import eval_binary, packed_plan

        mask = (1 << num_patterns) - 1
        stuck_word = mask if fault.stuck_value else 0
        plan = packed_plan(self._netlist)
        values = [0] * plan.num_nets
        nets = plan.nets
        for i in range(plan.num_inputs):
            values[i] = words[nets[i]] & mask
        fault_index = plan.index[fault.net]
        if fault_index < plan.num_inputs:
            values[fault_index] = stuck_word
            eval_binary(plan, values, mask)
        else:
            eval_binary(
                plan, values, mask, force_index=fault_index, force_word=stuck_word
            )
        return dict(zip(nets, values))
