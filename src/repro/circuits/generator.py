"""Reproducible random combinational-circuit generation.

The built-in circuits are small; the generator produces arbitrarily sized
random netlists so the ATPG-to-embedding flow can be exercised at scales
closer to the paper's circuits without shipping the original benchmarks.
Circuits are generated as layered DAGs: every gate draws its inputs from
earlier nets, with a locality bias so that realistic reconvergent fan-out
appears instead of a uniform random graph.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.circuits.netlist import Gate, GateType, Netlist

#: Gate types the generator draws from (weighted towards NAND/NOR, as in
#: typical mapped logic).
_GATE_CHOICES: Sequence[GateType] = (
    GateType.NAND,
    GateType.NAND,
    GateType.NOR,
    GateType.AND,
    GateType.OR,
    GateType.XOR,
    GateType.NOT,
    GateType.BUF,
)


def random_netlist(
    name: str,
    num_inputs: int,
    num_gates: int,
    num_outputs: Optional[int] = None,
    max_fanin: int = 3,
    seed: int = 1,
) -> Netlist:
    """Generate a random combinational netlist.

    Parameters
    ----------
    num_inputs:
        Primary-input count (also the test-cube width of the circuit).
    num_gates:
        Number of gates to create.
    num_outputs:
        Primary-output count; defaults to roughly one output per eight gates
        (at least one), always including the structurally last nets so no
        logic is dangling.
    max_fanin:
        Maximum gate fan-in (2..max_fanin) for the multi-input gate types.
    seed:
        RNG seed; the same arguments always produce the same circuit.
    """
    if num_inputs < 2:
        raise ValueError("num_inputs must be at least 2")
    if num_gates < 1:
        raise ValueError("num_gates must be at least 1")
    if max_fanin < 2:
        raise ValueError("max_fanin must be at least 2")
    rng = random.Random(seed)
    inputs = [f"pi{i}" for i in range(num_inputs)]
    nets: List[str] = list(inputs)
    gates: List[Gate] = []
    for index in range(num_gates):
        output = f"g{index}"
        gate_type = rng.choice(_GATE_CHOICES)
        if gate_type in (GateType.NOT, GateType.BUF):
            fanin = 1
        else:
            fanin = rng.randint(2, max_fanin)
        # Locality bias: prefer recent nets, fall back to anywhere.
        pool_size = min(len(nets), max(8, len(nets) // 2))
        recent = nets[-pool_size:]
        chosen: List[str] = []
        while len(chosen) < fanin:
            source = rng.choice(recent if rng.random() < 0.7 else nets)
            if source not in chosen:
                chosen.append(source)
            elif len(set(nets)) < fanin:
                break
        gates.append(Gate(output=output, gate_type=gate_type, inputs=tuple(chosen)))
        nets.append(output)

    if num_outputs is None:
        num_outputs = max(1, num_gates // 8)
    num_outputs = min(num_outputs, num_gates)
    # Outputs: the requested number of the structurally last gates, plus every
    # gate nothing else reads.  Making all fan-out-free gates observable means
    # every gate lies on a path to a primary output (no dangling logic), which
    # is what a synthesised circuit looks like and what keeps the fault
    # universe testable.
    read_nets = {source for gate in gates for source in gate.inputs}
    gate_outputs = [gate.output for gate in gates]
    outputs = list(dict.fromkeys(gate_outputs[-num_outputs:]))
    for net in gate_outputs:
        if net not in read_nets and net not in outputs:
            outputs.append(net)
    return Netlist(name=name, inputs=inputs, outputs=outputs, gates=gates)
